"""Extension E2: nightly refits versus incremental online maintenance.

The paper's models are "dynamically maintained and updated"; this bench
quantifies what the cheap incremental regime costs relative to nightly
rebuilds.
"""

from repro.experiments import run_experiment


def test_extension_online(benchmark, report):
    result = run_experiment("ablation-online")
    report(result)

    rows = {(row["model"], row["regime"]): row for row in result.rows}

    for model in ("pb", "standard"):
        nightly = rows[(model, "nightly")]
        incremental = rows[(model, "incremental")]
        # The incremental regime performs far fewer refits...
        assert incremental["refits"] < nightly["refits"]
        assert incremental["incremental_updates"] > 0
        # ...at a bounded hit-ratio cost.
        assert incremental["hit_ratio"] > nightly["hit_ratio"] - 0.05

    benchmark.pedantic(
        lambda: run_experiment("ablation-online"), rounds=1, iterations=1
    )
