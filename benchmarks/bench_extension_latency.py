"""Extension E6: per-request latency percentiles.

The paper reports mean latency reduction; the tail is what users feel.
Robust shapes: every model's median latency is at or below the
caching-only shadow's, and prefetching never *worsens* the p95.
"""

from repro.experiments import run_experiment


def test_extension_latency_distribution(benchmark, report):
    result = run_experiment("latency-distribution")
    report(result)

    for row in result.rows:
        # Prefetching never hurts the percentiles vs caching alone.
        assert row["p50_s"] <= row["shadow_p50_s"] + 1e-9, row["model"]
        assert row["p95_s"] <= row["shadow_p95_s"] * 1.05, row["model"]
        # Reductions are sane fractions.
        assert -0.1 <= row["mean_reduction"] <= 1.0
        assert -0.1 <= row["p95_reduction"] <= 1.0

    benchmark.pedantic(
        lambda: run_experiment("latency-distribution"), rounds=1, iterations=1
    )
