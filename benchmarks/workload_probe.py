"""Child-process probe for the streaming-workload benchmarks.

Run as::

    python benchmarks/workload_probe.py generate <workload> <events>
    python benchmarks/workload_probe.py write    <workload> <events> <path>

``generate`` consumes the stream and discards it (pure generator
throughput); ``write`` streams it into a columnar ``.rpt`` through the
chunked bridge (the ``repro generate --workload`` path).  Either way the
process prints one JSON line with ``seconds``, ``events_per_s`` and
``hwm_kb`` (VmHWM — peak RSS).

One child process per measurement is what makes the flat-RAM comparison
honest: the 10⁷-event and 10⁵-event runs each get a fresh heap, so the
parent's ratio compares real high-water marks, not allocator reuse.
"""

from __future__ import annotations

import json
import sys
import time

from memory_probe import rss_kb, trim_heap


def main(argv: "list[str]") -> int:
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    mode, name, events = argv[0], argv[1], int(argv[2])

    from repro.workloads import create_workload, stream_to_columnar

    workload = create_workload(name, seed=11)
    start = time.perf_counter()
    if mode == "generate":
        emitted = sum(1 for _ in workload.events(events))
    elif mode == "write":
        emitted = stream_to_columnar(workload, argv[3], events=events)
    else:
        print(f"unknown probe mode {mode!r}", file=sys.stderr)
        return 2
    seconds = time.perf_counter() - start
    trim_heap()
    print(
        json.dumps(
            {
                "mode": mode,
                "workload": name,
                "events": emitted,
                "seconds": round(seconds, 4),
                "events_per_s": round(emitted / max(seconds, 1e-9), 1),
                "hwm_kb": rss_kb("VmHWM"),
            }
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
