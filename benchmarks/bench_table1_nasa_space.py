"""Table 1: model space in stored nodes, NASA-like trace, 1-7 train days.

Paper shape: the standard model's node count grows dramatically with the
training window; LRS-PPM is far smaller but keeps growing quickly; the
popularity-based model is the smallest and grows the slowest, so the
LRS/PB ratio widens with every added day.
"""

from repro.experiments import get_lab, run_experiment


def test_table1_nasa_space(benchmark, report):
    result = run_experiment("table1-nasa-space")
    report(result)

    rows = {row["train_days"]: row for row in result.rows}
    last = max(rows)

    # Ordering at the full window: standard >> lrs > pb.
    assert rows[last]["standard"] > 5 * rows[last]["lrs"]
    assert rows[last]["lrs"] > rows[last]["pb"]

    # The lrs/pb ratio widens as days accumulate (paper: 1.7x -> 6.9x).
    assert rows[last]["lrs_over_pb"] > rows[2]["lrs_over_pb"]

    # PB grows much more slowly than the standard model.
    pb_growth = rows[last]["pb"] / rows[1]["pb"]
    std_growth = rows[last]["standard"] / rows[1]["standard"]
    assert pb_growth < std_growth

    # Kernel: fitting the PB-PPM tree on the full 7-day window.
    lab = get_lab("nasa-like", 8)
    sessions = lab.split(7).train_sessions
    popularity = lab.popularity(7)

    def fit_pb():
        from repro.core.pb import PopularityBasedPPM

        return PopularityBasedPPM(popularity).fit(sessions).node_count

    benchmark.pedantic(fit_pb, rounds=3, iterations=1)
