"""Figure 5: prefetching between Web servers and proxies (Section 5).

Paper shape: with 1-32 clients sharing a proxy, the LRS model's total
hit-ratio curve is the lowest and PB-PPM with the larger (10 KB)
prefetch-size threshold the highest; hit ratios grow and traffic
increments fall as the client group grows; the standard model's traffic
increment stays the highest.
"""

from conftest import mean_by_model

from repro.experiments import get_lab, run_experiment


def test_fig5_proxy(benchmark, report):
    result = run_experiment("fig5-proxy")
    report(result)

    hits = mean_by_model(result, "hit_ratio", x_column="clients", min_x=8)
    # The 10 KB threshold recovers most of what the unconstrained models
    # achieve and beats the 4 KB variant; the two PB thresholds bracket
    # the trade-off the paper demonstrates.
    assert hits["pb-10KB"] >= hits["pb-4KB"]
    assert hits["pb-10KB"] >= max(hits.values()) - 0.05

    # Hit ratio grows with the client count for every model (sharing).
    series = result.series("clients", "hit_ratio", label="model")
    for model, points in series.items():
        points = sorted(points)
        assert points[-1][1] > points[0][1], f"{model} does not grow"

    # Traffic: the standard model's increment is the highest, the 4 KB
    # popularity-based variant's the lowest (the paper's Figure 5 right),
    # and increments fall as the client group grows.
    traffic = mean_by_model(
        result, "traffic_increment", x_column="clients", min_x=8
    )
    assert traffic["standard"] == max(traffic.values())
    assert traffic["pb-4KB"] == min(traffic.values())
    traffic_series = result.series("clients", "traffic_increment", label="model")
    for model, points in traffic_series.items():
        points = sorted(points)
        assert points[-1][1] <= points[0][1] + 0.05, f"{model} traffic grows"

    # Kernel: one 16-client proxy replay.
    lab = get_lab("nasa-like", 6)
    clients = tuple(lab.browser_clients()[:16])

    def proxy_replay():
        from repro.sim.engine import PrefetchSimulator

        simulator = PrefetchSimulator(
            lab.model("pb", 5),
            lab.url_sizes,
            lab.latency(5),
            lab.config_for("pb"),
            popularity=lab.popularity(5),
        )
        return simulator.run_proxy(
            lab.split(5).test_requests, clients=clients
        ).hits

    benchmark.pedantic(proxy_replay, rounds=3, iterations=1)
