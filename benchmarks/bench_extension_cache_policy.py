"""Extension E1: the prefetching comparison under four cache policies.

The paper fixes LRU; if the popularity-based design is robust, the model
ranking should not depend on the replacement policy.
"""

from conftest import mean_by_model

from repro.experiments import run_experiment


def test_extension_cache_policy(benchmark, report):
    result = run_experiment("ablation-cache-policy")
    report(result)

    # Within every policy, PB at least matches LRS-PPM on hit ratio.
    by_policy: dict[str, dict[str, float]] = {}
    for row in result.rows:
        by_policy.setdefault(row["policy"], {})[row["model"]] = row["hit_ratio"]
    for policy, hits in by_policy.items():
        assert hits["pb"] >= hits["lrs"] - 0.01, policy

    # Prefetching adds hits over caching alone under every policy.
    for row in result.rows:
        assert row["hit_ratio"] >= row["shadow_hit_ratio"]

    benchmark.pedantic(
        lambda: run_experiment("ablation-cache-policy"), rounds=1, iterations=1
    )
