"""Headline comparison across generator seeds: mean ± std.

Single-seed hit ratios carry ±1-point workload noise; the claims in
EXPERIMENTS.md rest on this aggregate.  Robust shapes asserted here:
PB-PPM beats LRS-PPM and the practical 3-PPM on mean hit ratio across
seeds, and the standard model's traffic increment stays the highest.
"""

from repro.experiments.multiseed import run_multiseed


def test_multiseed_headline(benchmark, report):
    result = run_multiseed(
        "fig3-nasa", seeds=(7, 11, 23), max_train_days=5
    )
    report(result)

    # Mean over seeds, late training days (3+), per model.
    sums: dict[str, list[float]] = {}
    traffic: dict[str, list[float]] = {}
    for row in result.rows:
        if row["train_days"] < 3:
            continue
        sums.setdefault(row["model"], []).append(row["hit_ratio_mean"])
        traffic.setdefault(row["model"], []).append(
            row["traffic_increment_mean"]
        )
    means = {model: sum(v) / len(v) for model, v in sums.items()}
    traffic_means = {model: sum(v) / len(v) for model, v in traffic.items()}

    assert means["pb"] > means["lrs"]
    assert means["pb"] > means["standard3"]
    assert means["pb"] > means["standard"] - 0.01
    assert traffic_means["standard"] == max(traffic_means.values())

    # Seed noise is bounded: per-point std below 4 points.
    for row in result.rows:
        assert row["hit_ratio_std"] < 0.04, row

    benchmark.pedantic(
        lambda: run_multiseed("fig3-nasa", seeds=(7,), max_train_days=2),
        rounds=1,
        iterations=1,
    )
