"""Compare the current trace-bench JSON against the committed baseline.

Usage::

    python benchmarks/check_trace_regression.py \
        [--current benchmarks/results/BENCH_trace.json] \
        [--baseline benchmarks/baselines/BENCH_trace.json] \
        [--tolerance 0.2]

Only *ratio* metrics gate — absolute seconds and kilobytes shift with the
host, the ratios are what the columnar format guarantees.  Keys containing
``speedup`` are lower-bounded (``current >= baseline * (1 - tolerance)``);
keys containing ``rss_ratio`` are *upper*-bounded
(``current <= baseline * (1 + tolerance)``), because there a smaller
number is better.  Any violation exits 1 and lists the offenders.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "BENCH_trace.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_trace.json"


def ratio_metrics(doc, prefix: str = "") -> dict[str, float]:
    """Flatten the nested JSON to ``section.key -> value`` ratio entries."""
    found: dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            found.update(ratio_metrics(value, path))
        elif isinstance(value, (int, float)) and (
            "speedup" in key or "rss_ratio" in key
        ):
            found[path] = float(value)
    return found


def _bounds(name: str, base: float, tolerance: float) -> tuple[float, bool]:
    """(threshold, higher_is_better) for one metric."""
    if "rss_ratio" in name:
        return base * (1.0 + tolerance), False
    return base * (1.0 - tolerance), True


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.2)
    args = parser.parse_args(argv)

    for label, path in (("current", args.current), ("baseline", args.baseline)):
        if not path.exists():
            print(f"error: {label} results not found: {path}")
            return 1
    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())

    if current.get("target_events") != baseline.get("target_events"):
        print(
            f"warning: size mismatch (current {current.get('target_events')} "
            f"events, baseline {baseline.get('target_events')}) — ratios are "
            "still comparable but fixed overheads differ"
        )

    base_metrics = ratio_metrics(baseline)
    cur_metrics = ratio_metrics(current)
    violations = []
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cur = cur_metrics.get(name)
        if cur is None:
            violations.append(f"{name}: missing from current results")
            continue
        threshold, higher_is_better = _bounds(name, base, args.tolerance)
        ok = cur >= threshold if higher_is_better else cur <= threshold
        status = "ok" if ok else "REGRESSED"
        if not ok:
            side = "<" if higher_is_better else ">"
            violations.append(
                f"{name}: {cur:.3f} {side} threshold {threshold:.3f} "
                f"(baseline {base:.3f})"
            )
        print(f"{name}: current {cur:.3f} baseline {base:.3f} [{status}]")
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        print(
            f"{name}: current {cur_metrics[name]:.3f} "
            "(no baseline — informational)"
        )

    if violations:
        print(
            f"\n{len(violations)} trace metric(s) regressed beyond "
            f"{args.tolerance:.0%} tolerance:"
        )
        for line in violations:
            print(f"  - {line}")
        return 1
    print(f"\nall {len(base_metrics)} trace ratio metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
