"""Table 2: model space in stored nodes, UCB-like trace, 1-5 train days.

Paper shape: same ordering as Table 1 with an even wider LRS/PB gap
(10x to several dozen times) because PB-PPM additionally applies the
absolute count-1 pruning pass on this trace.
"""

from repro.experiments import get_lab, run_experiment


def test_table2_ucb_space(benchmark, report):
    result = run_experiment("table2-ucb-space")
    report(result)

    rows = {row["train_days"]: row for row in result.rows}
    last = max(rows)

    assert rows[last]["standard"] > 10 * rows[last]["lrs"]
    assert rows[last]["lrs"] > 1.5 * rows[last]["pb"]
    assert rows[last]["lrs_over_pb"] >= rows[1]["lrs_over_pb"]

    # Kernel: fitting the LRS tree (the level-wise mining pass) at 5 days.
    lab = get_lab("ucb-like", 6)
    sessions = lab.split(5).train_sessions

    def fit_lrs():
        from repro.core.lrs import LRSPPM

        return LRSPPM().fit(sessions).node_count

    benchmark.pedantic(fit_lrs, rounds=3, iterations=1)
