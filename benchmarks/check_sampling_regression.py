"""Compare the current sampling-bench JSON against the committed baseline.

Usage::

    python benchmarks/check_sampling_regression.py \
        [--current benchmarks/results/BENCH_sampling.json] \
        [--baseline benchmarks/baselines/BENCH_sampling.json] \
        [--rate-tolerance 0.5] [--error-slack 0.01]

Three kinds of gate, each with the bound that matches its meaning:

* ``speedup`` — lower-bounded at the *rate* tolerance (loose, default
  0.5): wall-clock ratios move with the host, the gate only catches a
  sampled path that stopped being cheap;
* ``*bound`` / ``*error`` — upper-bounded *additively*
  (``|current| <= |baseline| + slack``): error statistics are
  deterministic for a fixed (seed, events) configuration, so any real
  growth means the sampler or the error model changed behaviour —
  but a multiplicative gate would be meaningless around zero;
* ``picked_rate`` — exact equality: the rate the auto-picker selects
  for the ±1pp budget is part of the subsystem's published contract.

Any violation exits 1 and lists the offenders.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "BENCH_sampling.json"
DEFAULT_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "BENCH_sampling.json"
)


def gated_metrics(doc, prefix: str = "") -> dict[str, float]:
    """Flatten the nested JSON to ``section.key -> value`` gated entries."""
    found: dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            found.update(gated_metrics(value, path))
        elif isinstance(value, (int, float)) and (
            "speedup" in key
            or "bound" in key
            or "error" in key
            or key == "picked_rate"
        ):
            found[path] = float(value)
    return found


def _check(
    name: str,
    base: float,
    cur: float,
    rate_tolerance: float,
    error_slack: float,
) -> "str | None":
    """One gate; returns a violation line or None.

    The kind of gate is decided by the *leaf* key, not the full path —
    ``speedup.hit_ratio_error`` is an error metric that happens to live
    in the speedup section.
    """
    leaf = name.rsplit(".", 1)[-1]
    if leaf == "picked_rate":
        if cur != base:
            return f"{name}: picked {cur:g}, baseline picked {base:g}"
        return None
    if "speedup" in leaf:
        threshold = base * (1.0 - rate_tolerance)
        if cur < threshold:
            return (
                f"{name}: {cur:.3f} < threshold {threshold:.3f} "
                f"(baseline {base:.3f})"
            )
        return None
    # bound / error: additive growth cap on the magnitude.
    threshold = abs(base) + error_slack
    if abs(cur) > threshold:
        return (
            f"{name}: |{cur:.4f}| > threshold {threshold:.4f} "
            f"(baseline {base:.4f})"
        )
    return None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--rate-tolerance", type=float, default=0.5)
    parser.add_argument("--error-slack", type=float, default=0.01)
    args = parser.parse_args(argv)

    for label, path in (("current", args.current), ("baseline", args.baseline)):
        if not path.exists():
            print(f"error: {label} results not found: {path}")
            return 1
    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())

    for key in ("target_events", "fidelity_events"):
        if current.get(key) != baseline.get(key):
            print(
                f"warning: size mismatch ({key}: current {current.get(key)}, "
                f"baseline {baseline.get(key)}) — error statistics are only "
                "comparable at identical event counts"
            )

    base_metrics = gated_metrics(baseline)
    cur_metrics = gated_metrics(current)
    violations = []
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cur = cur_metrics.get(name)
        if cur is None:
            violations.append(f"{name}: missing from current results")
            continue
        violation = _check(
            name, base, cur, args.rate_tolerance, args.error_slack
        )
        status = "ok" if violation is None else "REGRESSED"
        if violation is not None:
            violations.append(violation)
        print(f"{name}: current {cur:.4f} baseline {base:.4f} [{status}]")
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        print(
            f"{name}: current {cur_metrics[name]:.4f} "
            "(no baseline — informational)"
        )

    if violations:
        print(f"\n{len(violations)} sampling metric(s) regressed:")
        for line in violations:
            print(f"  - {line}")
        return 1
    print(f"\nall {len(base_metrics)} sampling metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
