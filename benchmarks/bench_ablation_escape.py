"""Ablation A4: longest-match-only (the paper) vs compression-PPM escape.

The paper's models predict from the longest matching context only; the
escape variant falls back to shorter contexts when nothing clears the
threshold.  Expected shape: escape adds prefetch volume (more traffic)
and some hits for the baselines — quantifying how much of the standard
model's weakness is the no-escape policy.
"""

from repro.experiments import run_experiment


def test_ablation_escape(benchmark, report):
    result = run_experiment("ablation-escape")
    report(result)

    def row(model, escape):
        for candidate in result.rows:
            if candidate["model"] == model and candidate["escape"] is escape:
                return candidate
        raise AssertionError("missing row")

    for model in ("standard", "lrs"):
        plain = row(model, False)
        escaped = row(model, True)
        # Escape can only widen the set of issued predictions.
        assert escaped["traffic_increment"] >= plain["traffic_increment"] - 0.01
        assert escaped["hit_ratio"] >= plain["hit_ratio"] - 0.005

    benchmark.pedantic(
        lambda: run_experiment("ablation-escape"), rounds=1, iterations=1
    )
