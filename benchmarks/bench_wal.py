"""Write-ahead journal benchmarks: serving overhead, append rate, recovery.

Measures the costs the durability tentpole is allowed to charge:

* **serving overhead** — the same seeded loadgen replay against a spawned
  server with the journal off and on (default ``interval`` fsync
  policy).  The acceptance bar from the ISSUE: journaling costs **at
  most 10%** of loadgen throughput (``overhead_ratio >= 0.9``);
* **append throughput** — raw ``ReportJournal.append_report`` rate per
  fsync policy (``off`` / ``interval`` / ``batch``), the floor under any
  serving path;
* **recovery rate** — records/s of a cold :func:`read_journal` scan plus
  session grouping over a multi-segment journal, the number that bounds
  restart time after a crash.

``REPRO_WAL_BENCH_EVENTS`` bounds the loadgen replays (default 20,000
page views; CI smoke uses 4,000).  Results merge into
``benchmarks/results/BENCH_wal.json`` and are gated against
``benchmarks/baselines/BENCH_wal.json`` by ``check_wal_regression.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_wal.json"

TARGET_EVENTS = int(os.environ.get("REPRO_WAL_BENCH_EVENTS", 20_000))
#: Direct-append sample size (fixed: append cost is per-record).
APPEND_RECORDS = 50_000
#: Recovery-scan journal size.
RECOVERY_RECORDS = 100_000


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into BENCH_wal.json (tests are independent)."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    doc = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    doc["target_events"] = TARGET_EVENTS
    doc[section] = payload
    BENCH_JSON.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _loadgen(wal_dir: str | None) -> dict:
    from repro.serve.loadgen import run_loadgen

    # One nasa-like day is ~3.5k replay events; six days give the 20k
    # the default target asks for (``max_events`` caps smoke runs).
    return run_loadgen(
        spawn=True,
        profile="nasa-like",
        days=6,
        train_days=1,
        seed=7,
        scale=1.0,
        connections=4,
        mode="combined",
        max_events=TARGET_EVENTS,
        wal_dir=wal_dir,
    )


def _best_of(runs: int, wal_dir: str | None) -> dict:
    """Best throughput of ``runs`` replays: the ratio compares costs,
    so each side gets its least-interfered-with measurement."""
    best = None
    for _ in range(runs):
        report = _loadgen(wal_dir)
        assert report["failed_requests"] == 0
        if best is None or report["requests_per_s"] > best["requests_per_s"]:
            best = report
    return best


def test_serving_overhead_with_journal(tmp_path):
    """Journaling every report before ack must cost <= 10% throughput."""
    off = _best_of(2, None)
    on = _best_of(2, str(tmp_path / "wal"))
    ratio = on["requests_per_s"] / off["requests_per_s"]
    payload = {
        "events": on["requests_total"],
        "requests_per_s_wal_off": off["requests_per_s"],
        "requests_per_s_wal_on": on["requests_per_s"],
        "overhead_ratio": round(ratio, 3),
        "latency_p99_ms_wal_off": off["latency_ms"]["p99"],
        "latency_p99_ms_wal_on": on["latency_ms"]["p99"],
    }
    _update_bench_json("serving_overhead", payload)
    print(
        f"loadgen {off['requests_per_s']:,.0f} req/s journal-off vs "
        f"{on['requests_per_s']:,.0f} req/s journal-on = "
        f"{ratio:.3f}x retained"
    )
    # The ISSUE's acceptance bar, with a little slack at smoke scale
    # where fixed startup costs amplify run-to-run noise.
    assert ratio >= (0.9 if TARGET_EVENTS >= 20_000 else 0.8)


def test_append_throughput_per_policy(tmp_path):
    """Raw journal append rate for each fsync policy."""
    from repro.serve.wal import ReportJournal

    payload = {}
    for policy in ("off", "interval", "batch"):
        count = APPEND_RECORDS if policy != "batch" else APPEND_RECORDS // 25
        journal = ReportJournal(
            str(tmp_path / f"wal-{policy}"), fsync=policy
        )
        started = time.perf_counter()
        for index in range(count):
            journal.append_report(
                f"c{index % 512}", f"/page/{index % 4096}", float(index)
            )
        elapsed = time.perf_counter() - started
        journal.close()
        payload[policy] = {
            "records": count,
            "records_per_s": round(count / elapsed, 1),
            "fsyncs": journal.fsync_total,
            "segments": journal.active_seq,
        }
        print(
            f"append[{policy}]: {count / elapsed:,.0f} records/s "
            f"({journal.fsync_total} fsyncs)"
        )
    _update_bench_json("append", payload)
    assert all(entry["records_per_s"] > 0 for entry in payload.values())
    # batch fsyncs every ack; it cannot be faster than no syncing at all.
    assert payload["batch"]["fsyncs"] == payload["batch"]["records"]
    assert payload["off"]["fsyncs"] <= 1


def test_recovery_scan_rate(tmp_path):
    """Cold-boot journal replay rate over a multi-segment journal."""
    from repro.serve.wal import ReportJournal, read_journal, recovery_sessions

    journal = ReportJournal(
        str(tmp_path / "wal"), fsync="off", segment_max_bytes=4 * 1024 * 1024
    )
    for index in range(RECOVERY_RECORDS):
        journal.append_report(
            f"c{index % 1024}", f"/page/{index % 4096}", float(index)
        )
    journal.close()
    started = time.perf_counter()
    recovery = read_journal(journal.directory)
    sessions = recovery_sessions(recovery)
    elapsed = time.perf_counter() - started
    payload = {
        "records": recovery.records_replayed,
        "segments": recovery.segments_scanned,
        "bytes_scanned": recovery.bytes_scanned,
        "sessions_recovered": len(sessions),
        "records_per_s": round(recovery.records_replayed / elapsed, 1),
        "recovery_s": round(elapsed, 4),
    }
    _update_bench_json("recovery", payload)
    print(
        f"recovered {recovery.records_replayed} records from "
        f"{recovery.segments_scanned} segments in {elapsed:.2f}s "
        f"({recovery.records_replayed / elapsed:,.0f} records/s)"
    )
    assert recovery.records_replayed == RECOVERY_RECORDS
    assert recovery.truncated_tails == 0
    assert recovery.corrupt_frames == 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-v", "-s"]))
