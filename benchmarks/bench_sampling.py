"""Sampled-evaluation benchmarks: fidelity bounds and the r=10% speedup.

Measures the tentpole claims of the ``repro.sampling`` subsystem:

* **fidelity** — the seeded fidelity harness at its default workload:
  per-rate hit-ratio error bounds (with bootstrap CIs) and the
  auto-picked rate for a ±1pp hit-ratio budget.  The picker must find
  *some* qualifying rate — that is the ``repro fidelity --budget 1pp``
  acceptance bar;
* **speedup** — one full and one r=10% sampled evaluation of a big
  stationary trace, each in a fresh child process
  (``sampling_probe.py``).  The sampled evaluation must be ≥ 5× faster
  at the full 2M-event acceptance size (≥ 2.5× at smoke sizes, where
  fixed interpreter cost pads both sides), and its hit-ratio error must
  stay inside the fidelity section's own quoted bound.

``REPRO_SAMPLING_BENCH_EVENTS`` bounds the speedup trace (default
2,000,000 — the full acceptance run; CI uses 150,000).  Results merge
into ``benchmarks/results/BENCH_sampling.json`` and are gated against
``benchmarks/baselines/BENCH_sampling.json`` by
``check_sampling_regression.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_sampling.json"
PROBE = REPO_ROOT / "benchmarks" / "sampling_probe.py"

#: Full-run speedup trace size; the 5x acceptance gate applies at >= this.
FULL_EVENTS = 2_000_000
TARGET_EVENTS = int(os.environ.get("REPRO_SAMPLING_BENCH_EVENTS", FULL_EVENTS))
SPEEDUP_RATE = 0.1

#: Fidelity-section size: bounded so five seeds x five arms stay fast,
#: but big enough that the r=0.5 bound comfortably clears 1pp.
FIDELITY_EVENTS = min(TARGET_EVENTS, 60_000)
FIDELITY_SEEDS = (0, 1, 2, 3, 4)
FIDELITY_RATES = (0.05, 0.1, 0.2, 0.5)
BUDGET = 0.01  # "1pp"

#: Fallback hit-ratio error cap when the fidelity section has not run.
FALLBACK_ERROR_CAP = 0.05


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into BENCH_sampling.json (tests are independent)."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    doc = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    doc["target_events"] = TARGET_EVENTS
    doc["fidelity_events"] = FIDELITY_EVENTS
    doc[section] = payload
    BENCH_JSON.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _probe(events: int, rate: "float | None") -> dict:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    out = subprocess.run(
        [
            sys.executable,
            str(PROBE),
            str(events),
            "full" if rate is None else str(rate),
        ],
        capture_output=True,
        text=True,
        check=True,
        env=env,
        cwd=str(REPO_ROOT / "benchmarks"),
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_fidelity_bounds_and_picked_rate():
    """The harness's error bounds, and the rate it picks for ±1pp."""
    from repro.sampling import format_fidelity_report, pick_rate, run_fidelity

    report = run_fidelity(
        events=FIDELITY_EVENTS, seeds=FIDELITY_SEEDS, rates=FIDELITY_RATES
    )
    picked = pick_rate(report, metric="hit_ratio", budget=BUDGET)
    payload = {"picked_rate": picked["picked"], "budget": BUDGET, "rates": {}}
    for rate in FIDELITY_RATES:
        node = report["rates"][f"{rate:g}"]
        if node["errors"] is None:
            continue
        stats = node["errors"]["hit_ratio"]
        payload["rates"][f"{rate:g}"] = {
            "hit_ratio_bound": round(stats["bound"], 5),
            "hit_ratio_mean_error": round(stats["mean"], 5),
            "speedup": round(node["speedup"], 2),
        }
    _update_bench_json("fidelity", payload)
    print(format_fidelity_report(report, picked=picked))
    # The acceptance bar: some supported rate meets a ±1pp hit-ratio
    # budget on the seeded suite (empirically r=0.5; the picker decides).
    assert picked["picked"] is not None
    # Bounds must tighten as the rate rises: more clients, less variance.
    bounds = [
        payload["rates"][f"{rate:g}"]["hit_ratio_bound"]
        for rate in FIDELITY_RATES
        if f"{rate:g}" in payload["rates"]
    ]
    assert bounds[-1] == min(bounds)


def test_sampled_eval_speedup():
    """One r=10% evaluation vs one full evaluation of the same stream."""
    full = _probe(TARGET_EVENTS, None)
    sampled = _probe(TARGET_EVENTS, SPEEDUP_RATE)
    speedup = full["eval_seconds"] / max(sampled["eval_seconds"], 1e-9)
    error = sampled["hit_ratio"] - full["hit_ratio"]
    payload = {
        "events": TARGET_EVENTS,
        "rate": SPEEDUP_RATE,
        "kept_events": sampled["kept_events"],
        "full_eval_seconds": full["eval_seconds"],
        "sampled_eval_seconds": sampled["eval_seconds"],
        "speedup": round(speedup, 2),
        "full_hit_ratio": round(full["hit_ratio"], 4),
        "sampled_hit_ratio": round(sampled["hit_ratio"], 4),
        "hit_ratio_error": round(error, 4),
        "full_hwm_kb": full["hwm_kb"],
        "sampled_hwm_kb": sampled["hwm_kb"],
    }
    _update_bench_json("speedup", payload)
    print(
        f"full eval {full['eval_seconds']:.2f}s vs sampled "
        f"{sampled['eval_seconds']:.2f}s at r={SPEEDUP_RATE} = "
        f"{speedup:.1f}x; hit-ratio error {error:+.4f}"
    )
    # The sampled trace kept roughly rate * events of the stream.
    assert 0.02 * TARGET_EVENTS <= sampled["kept_events"] <= (
        0.3 * TARGET_EVENTS
    )
    if TARGET_EVENTS >= FULL_EVENTS:
        # The PR's acceptance bar: a tenth the clients, >= 5x the speed.
        assert speedup >= 5.0
    else:
        assert speedup >= 2.5
    # The estimate must sit inside the fidelity section's quoted bound
    # (or a hard cap when that section has not run in this invocation).
    cap = FALLBACK_ERROR_CAP
    if BENCH_JSON.exists():
        doc = json.loads(BENCH_JSON.read_text())
        quoted = (
            doc.get("fidelity", {})
            .get("rates", {})
            .get(f"{SPEEDUP_RATE:g}", {})
            .get("hit_ratio_bound")
        )
        if quoted is not None:
            cap = max(quoted, 0.005)  # bounds shrink with trace size
    assert abs(error) <= cap


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-v", "-s"]))
