"""Compiled prediction-table speedups: the prediction plane A/B bench.

Times the same work twice — ``params.COMPILED_PREDICT`` off (the
per-request compact-trie walk) versus on (the precompiled CSR row
slices) — and records the ratios in
``benchmarks/results/BENCH_predict.json``:

* ``batch_predict`` — the prediction step in isolation: repeated
  ``predict_cursor`` calls over a fleet of cursors parked at the end of
  every test session, so nothing but "matched states -> prediction list"
  is on the clock.  This is the operation the table turns into a row
  slice and the headline ratio.
* ``cursor_replay`` — the full incremental loop (advance + predict per
  click) over the same sessions; advances become ``searchsorted`` probes
  so the ratio stays large even with the bookkeeping included.
* ``loadgen`` — end-to-end single-worker serving throughput under the
  HTTP load generator, with the serving fast lane
  (``params.SERVE_FAST_DISPATCH``) flipped together with the table: both
  off reproduces the pre-table server byte for byte, both on is the
  shipped configuration.  Best-of-N per state, alternated so host noise
  hits both sides alike.

Totals are asserted identical between the two states before any ratio is
trusted.  In-test floors are CI-safe; the committed artifact records the
real numbers and ``check_predict_regression.py`` gates the ratios
against ``benchmarks/baselines/BENCH_predict.json``.
"""

import json
import os
import pathlib
import time

from repro import params
from repro.experiments import get_lab
from repro.experiments.lab import bench_scale
from repro.serve.loadgen import run_loadgen

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_predict.json"

#: Loadgen rounds per flag state (override: REPRO_PREDICT_BENCH_ROUNDS).
LOADGEN_ROUNDS = int(os.environ.get("REPRO_PREDICT_BENCH_ROUNDS", "3"))


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into BENCH_predict.json (tests are independent)."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    doc = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    doc["scale"] = bench_scale()
    doc[section] = payload
    BENCH_JSON.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _best_of(fn, rounds: int = 7):
    """(best wall-clock seconds, last result) over ``rounds`` runs."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best, result


def _ab(fn):
    """Run ``fn`` with the table off then on; returns both timings.

    Each state gets one untimed warmup pass first, so the compiled
    side's one-off table compilation (a build-time cost in production:
    the supervisor compiles once per publish) never pollutes the
    steady-state timing.
    """
    previous = params.COMPILED_PREDICT
    try:
        params.COMPILED_PREDICT = False
        fn()
        off_seconds, off_total = _best_of(fn)
        params.COMPILED_PREDICT = True
        fn()
        on_seconds, on_total = _best_of(fn)
    finally:
        params.COMPILED_PREDICT = previous
    assert on_total == off_total, (
        f"compiled path diverged: {on_total} != {off_total}"
    )
    return off_seconds, on_seconds, on_total


def test_batch_predict_speedup():
    """The prediction step alone: row slice vs per-request trie walk."""
    lab = get_lab("nasa-like", 6)
    model = lab.model("pb", 5)
    cursors = []
    for session in lab.split(5).test_sessions:
        cursor = model.prediction_cursor(5)
        for url in session.urls:
            cursor.advance(url)
        cursors.append(cursor)

    def sweep():
        return sum(
            len(model.predict_cursor(cursor, mark_used=False))
            for cursor in cursors
        )

    off_seconds, on_seconds, total = _ab(sweep)
    speedup = off_seconds / on_seconds
    _update_bench_json(
        "batch_predict",
        {
            "cursors": len(cursors),
            "predictions": total,
            "uncompiled_seconds": round(off_seconds, 4),
            "compiled_seconds": round(on_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"batch predict: uncompiled {off_seconds:.4f}s "
        f"compiled {on_seconds:.4f}s speedup {speedup:.2f}x"
    )
    # In-test floor is shared-runner tolerant; the committed artifact
    # records the quiet-machine number (>= 3x) and the regression gate
    # compares against the committed baseline.
    assert speedup >= (2.0 if bench_scale() >= 1.0 else 1.3)


def test_cursor_replay_speedup():
    """Advance + predict per click, whole test corpus, both states."""
    lab = get_lab("nasa-like", 6)
    model = lab.model("pb", 5)
    streams = [s.urls for s in lab.split(5).test_sessions]

    def replay():
        total = 0
        cursor = model.prediction_cursor(5)
        for urls in streams:
            cursor.reset()
            for url in urls:
                cursor.advance(url)
                total += len(model.predict_cursor(cursor, mark_used=False))
        return total

    off_seconds, on_seconds, total = _ab(replay)
    speedup = off_seconds / on_seconds
    _update_bench_json(
        "cursor_replay",
        {
            "clicks": sum(len(urls) for urls in streams),
            "predictions": total,
            "uncompiled_seconds": round(off_seconds, 4),
            "compiled_seconds": round(on_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"cursor replay: uncompiled {off_seconds:.4f}s "
        f"compiled {on_seconds:.4f}s speedup {speedup:.2f}x"
    )
    assert speedup >= (1.8 if bench_scale() >= 1.0 else 1.2)


def _loadgen_once() -> dict:
    return run_loadgen(
        spawn=True,
        profile="nasa-like",
        days=2,
        train_days=1,
        seed=13,
        scale=0.4,
        connections=8,
        mode="combined",
    )


def test_loadgen_predictions_speedup():
    """End-to-end serving throughput, pre-table server vs shipped config.

    The loadgen config is intentionally independent of
    ``REPRO_BENCH_SCALE`` so the committed baseline is comparable across
    jobs.  Alternating rounds, best-of-N per state: host noise on a
    shared runner hits both sides alike and the best observation is the
    least-perturbed one.
    """
    previous = (params.COMPILED_PREDICT, params.SERVE_FAST_DISPATCH)
    off_runs: list[float] = []
    on_runs: list[float] = []
    try:
        for _ in range(LOADGEN_ROUNDS):
            params.COMPILED_PREDICT = False
            params.SERVE_FAST_DISPATCH = False
            report = _loadgen_once()
            assert report["failed_requests"] == 0
            off_runs.append(report["predictions_per_s"])

            params.COMPILED_PREDICT = True
            params.SERVE_FAST_DISPATCH = True
            report = _loadgen_once()
            assert report["failed_requests"] == 0
            on_runs.append(report["predictions_per_s"])
    finally:
        params.COMPILED_PREDICT, params.SERVE_FAST_DISPATCH = previous

    speedup = max(on_runs) / max(off_runs)
    _update_bench_json(
        "loadgen",
        {
            "rounds": LOADGEN_ROUNDS,
            "uncompiled_predictions_per_s": [round(v, 1) for v in off_runs],
            "compiled_predictions_per_s": [round(v, 1) for v in on_runs],
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"loadgen: uncompiled best {max(off_runs):.0f}/s "
        f"compiled best {max(on_runs):.0f}/s speedup {speedup:.2f}x"
    )
    # CI-safe floor — the committed baseline carries the real ratio and
    # the regression gate compares against that.
    assert speedup >= 1.05
