"""Compare the current workload-bench JSON against the committed baseline.

Usage::

    python benchmarks/check_workload_regression.py \
        [--current benchmarks/results/BENCH_workloads.json] \
        [--baseline benchmarks/baselines/BENCH_workloads.json] \
        [--tolerance 0.2] [--rate-tolerance 0.5]

Three kinds of metric gate, each with the bound that matches its meaning:

* ``rss_flatness`` — *upper*-bounded (``current <= baseline * (1 + tol)``):
  the flat-RAM guarantee, and the most host-independent number here;
* ``hit_ratio_*`` — lower-bounded at the standard tolerance: model quality
  per scenario is deterministic for a fixed (seed, events), so a drop
  means the generators or models changed behaviour;
* ``*events_per_s`` — lower-bounded at the *rate* tolerance (looser,
  default 0.5): throughput moves with the host, the gate only catches
  collapses.

``serve_*`` and ``node_count_*`` entries are informational.  Any
violation exits 1 and lists the offenders.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "BENCH_workloads.json"
DEFAULT_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "BENCH_workloads.json"
)


def gated_metrics(doc, prefix: str = "") -> dict[str, float]:
    """Flatten the nested JSON to ``section.key -> value`` gated entries."""
    found: dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            found.update(gated_metrics(value, path))
        elif isinstance(value, (int, float)) and (
            "rss_flatness" in key
            or "hit_ratio" in key
            or "events_per_s" in key
        ):
            found[path] = float(value)
    return found


def _bounds(
    name: str, base: float, tolerance: float, rate_tolerance: float
) -> tuple[float, bool]:
    """(threshold, higher_is_better) for one metric."""
    if "rss_flatness" in name:
        return base * (1.0 + tolerance), False
    if "events_per_s" in name:
        return base * (1.0 - rate_tolerance), True
    return base * (1.0 - tolerance), True


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument("--rate-tolerance", type=float, default=0.5)
    args = parser.parse_args(argv)

    for label, path in (("current", args.current), ("baseline", args.baseline)):
        if not path.exists():
            print(f"error: {label} results not found: {path}")
            return 1
    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())

    for key in ("target_events", "grid_events"):
        if current.get(key) != baseline.get(key):
            print(
                f"warning: size mismatch ({key}: current {current.get(key)}, "
                f"baseline {baseline.get(key)}) — hit ratios are only "
                "comparable at identical event counts"
            )

    base_metrics = gated_metrics(baseline)
    cur_metrics = gated_metrics(current)
    violations = []
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cur = cur_metrics.get(name)
        if cur is None:
            violations.append(f"{name}: missing from current results")
            continue
        threshold, higher_is_better = _bounds(
            name, base, args.tolerance, args.rate_tolerance
        )
        ok = cur >= threshold if higher_is_better else cur <= threshold
        status = "ok" if ok else "REGRESSED"
        if not ok:
            side = "<" if higher_is_better else ">"
            violations.append(
                f"{name}: {cur:.3f} {side} threshold {threshold:.3f} "
                f"(baseline {base:.3f})"
            )
        print(f"{name}: current {cur:.3f} baseline {base:.3f} [{status}]")
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        print(
            f"{name}: current {cur_metrics[name]:.3f} "
            "(no baseline — informational)"
        )

    if violations:
        print(f"\n{len(violations)} workload metric(s) regressed:")
        for line in violations:
            print(f"  - {line}")
        return 1
    print(f"\nall {len(base_metrics)} workload metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
