"""Figure 4 (panels 3-4): node growth and traffic increase, UCB-like.

Paper shape: the space reduction of PB-PPM over LRS-PPM reaches 10x to
dozens of times; the standard model's traffic increase is the highest
(up to ~21 % in the paper).
"""

from conftest import mean_by_model

from repro.experiments import get_lab, run_experiment


def test_fig4_ucb(benchmark, report):
    result = run_experiment("fig4-ucb")
    report(result)

    series = result.series("train_days", "node_count", label="model")
    lrs = dict(series["lrs"])
    pb = dict(series["pb"])
    last = max(lrs)
    assert lrs[last] > 1.5 * pb[last]

    traffic = mean_by_model(result, "traffic_increment")
    assert traffic["standard"] == max(traffic.values())

    # Kernel: a full test-day replay of the PB model (the simulation
    # engine itself).
    lab = get_lab("ucb-like", 6)

    def replay():
        # Bypass the lab's run cache: construct a fresh simulator.
        from repro.sim.engine import PrefetchSimulator

        simulator = PrefetchSimulator(
            lab.model("pb", 5),
            lab.url_sizes,
            lab.latency(5),
            lab.config_for("pb"),
            popularity=lab.popularity(5),
        )
        return simulator.run(
            lab.split(5).test_requests, client_kinds=lab.client_kinds
        ).hits

    benchmark.pedantic(replay, rounds=3, iterations=1)
