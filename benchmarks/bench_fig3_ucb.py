"""Figure 3 (panels 3-4): hit ratio and latency reduction, UCB-like trace.

Paper shape: on the irregular UCB-CS trace the standard model's hit ratio
is slightly above the popularity-based model's (~2 points), with LRS-PPM
at the bottom; PB-PPM remains the most cost-effective given its space.
"""

from conftest import mean_by_model

from repro.experiments import get_lab, run_experiment


def test_fig3_ucb(benchmark, report):
    result = run_experiment("fig3-ucb")
    report(result)

    hits = mean_by_model(result, "hit_ratio")
    # The unlimited standard model leads on the irregular trace...
    assert hits["standard"] >= hits["pb"] - 0.005
    # ...but by a modest margin (the paper reports ~2 points).
    assert hits["standard"] - hits["pb"] < 0.06
    # PB-PPM at least matches LRS.
    assert hits["pb"] >= hits["lrs"] - 0.01

    # Space cost of that standard-model margin is enormous.
    lab = get_lab("ucb-like", 6)
    assert (
        lab.model("standard", 5).node_count
        > 10 * lab.model("pb", 5).node_count
    )

    # Kernel: standard-PPM prediction throughput on UCB contexts.
    model = lab.model("standard", 5)
    contexts = [s.urls[: min(len(s.urls), 4)] for s in lab.split(5).test_sessions[:300]]
    benchmark(
        lambda: sum(
            len(model.predict(c, mark_used=False)) for c in contexts
        )
    )
