"""Ablation A3: PB-PPM's two space-optimisation passes (paper Section 3.4).

Expected shape: the relative-probability cut and the absolute count-1 cut
each shrink the tree substantially while the hit ratio moves only
marginally — the trade the paper claims for its optimisations.
"""

from repro.experiments import run_experiment


def test_ablation_pruning(benchmark, report):
    result = run_experiment("ablation-pruning")
    report(result)

    def row(cutoff, absolute):
        for candidate in result.rows:
            if (
                candidate["relative_cutoff"] == cutoff
                and candidate["absolute_pass"] == absolute
            ):
                return candidate
        raise AssertionError("missing row")

    unpruned = row(0.0, False)
    paper = row(0.10, False)
    both = row(0.10, True)

    # Node counts shrink monotonically as passes are added.
    assert unpruned["node_count"] > paper["node_count"] > both["node_count"]
    # Removed-node accounting is consistent.
    assert paper["removed_relative"] > 0
    assert both["removed_absolute"] > 0
    # The 10% cut costs almost nothing in hit ratio.
    assert paper["hit_ratio"] > unpruned["hit_ratio"] - 0.03

    benchmark.pedantic(
        lambda: run_experiment("ablation-pruning"), rounds=1, iterations=1
    )
