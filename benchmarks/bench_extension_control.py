"""Extension E4: the uniform-popularity negative control.

If PB-PPM still beat the baselines on a workload *without* popularity
skew, the reproduction would be winning for the wrong reasons.  This
bench asserts the advantage disappears together with the regularities.
"""

from repro.experiments import run_experiment


def test_extension_control_uniform(benchmark, report):
    result = run_experiment("control-uniform")
    report(result)

    rows = {row["model"]: row for row in result.rows}

    # Regularity 1 must fail on the control workload.
    assert "Regularity 1 holds: False" in result.notes

    # PB's hit-ratio edge over the standard models disappears.
    assert rows["pb"]["hit_ratio"] <= rows["standard"]["hit_ratio"] + 0.005

    # PB's space advantage shrinks dramatically (on NASA-like it is
    # 20-30x over the unlimited standard model; here a small multiple).
    ratio = rows["standard"]["node_count"] / rows["pb"]["node_count"]
    assert ratio < 8

    benchmark.pedantic(
        lambda: run_experiment("control-uniform"), rounds=1, iterations=1
    )
