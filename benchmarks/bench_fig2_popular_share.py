"""Figure 2 (left): share of popular documents among prefetch hits.

Paper shape: every model's prefetch hits are mostly popular documents
(>= 60 %), with the popularity-based model at the top (70-75 %) and the
fixed-height standard model the lowest.
"""

from conftest import mean_by_model

from repro.experiments import get_lab, run_experiment


def test_fig2_popular_share(benchmark, report):
    result = run_experiment("fig2-popular-share")
    report(result)

    means = mean_by_model(result, "popular_share")
    # Majority of prefetch hits land on popular documents for every model.
    for model, share in means.items():
        assert share > 0.5, f"{model} popular share {share:.2f} too low"
    # The popularity-based model prefetches the most popular mix.
    assert means["pb"] >= means["standard3"] - 0.02

    # Kernel: computing the popular share needs per-hit grade lookups; time
    # the grade query path on the fitted table.
    lab = get_lab("nasa-like", 8)
    popularity = lab.popularity(5)
    urls = list(lab.trace.urls)

    def grade_all():
        return sum(popularity.grade(url) for url in urls)

    benchmark(grade_all)
