"""End-to-end trace-plane benchmark: parser-fed objects vs columnar mmap.

Measures the tentpole claim of the columnar trace format: preparing a
multi-million-event trace for replay — parse/load, successful-GET filter,
deterministic sort, embedded-object fold, sessionisation, popularity
counting, day split and replay-batch construction — runs ≥10x faster from
a memory-mapped ``.rpt`` file than from the CLF parser feeding the object
pipeline, at flat (≤1.2x) peak RSS.  Both pipelines run in child
processes (``trace_plane_probe.py``) that report wall-clock, VmHWM and a
set of checksums the test asserts equal, so the speedup is only measured
over provably identical work.

``REPRO_TRACE_BENCH_EVENTS`` bounds the trace size (default 2,000,000
events — the full acceptance run); CI smoke runs set it low and assert a
looser floor.  Results merge into ``benchmarks/results/BENCH_trace.json``
and are gated against ``benchmarks/baselines/BENCH_trace.json`` by
``check_trace_regression.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.synth.generator import TraceGenerator
from repro.trace.columnar import convert_clf_to_columnar, convert_columnar_to_clf

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_trace.json"
PROBE = REPO_ROOT / "benchmarks" / "trace_plane_probe.py"

#: Full-run trace size; the acceptance gate applies at >= this many events.
FULL_EVENTS = 2_000_000
TARGET_EVENTS = int(os.environ.get("REPRO_TRACE_BENCH_EVENTS", FULL_EVENTS))
#: nasa-like yields ~8.9k events per scale-day at bench sizes (measured,
#: seed-stable); 8_800 overshoots slightly so the full run clears FULL_EVENTS.
EVENTS_PER_SCALE_DAY = 8_800
DAYS = 4

CHECKSUM_KEYS = (
    "records",
    "requests",
    "sessions",
    "session_l2",
    "popularity",
    "size_total",
    "train_sessions",
    "test_requests",
    "test_ts_floor",
)


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into BENCH_trace.json (tests are independent)."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    doc = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    doc["target_events"] = TARGET_EVENTS
    doc[section] = payload
    BENCH_JSON.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _probe(mode: str, path: pathlib.Path) -> dict:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    out = subprocess.run(
        [sys.executable, str(PROBE), mode, str(path)],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One synthetic trace at the target size, in both on-disk forms."""
    root = tmp_path_factory.mktemp("tracebench")
    generated = root / "generated.rpt"
    rpt = root / "trace.rpt"
    log = root / "trace.log"
    scale = max(0.02, TARGET_EVENTS / (EVENTS_PER_SCALE_DAY * DAYS))
    start = time.perf_counter()
    events = TraceGenerator("nasa-like", seed=17, scale=scale).generate_to_columnar(
        DAYS, str(generated)
    )
    generate_seconds = time.perf_counter() - start
    start = time.perf_counter()
    convert_columnar_to_clf(str(generated), str(log))
    clf_seconds = time.perf_counter() - start
    # Re-derive the benchmarked .rpt *from the CLF file*: CLF carries
    # 1-second timestamps, so this is the only way both probes replay the
    # byte-identical record stream (and it is the real conversion workflow).
    convert_clf_to_columnar(str(log), str(rpt))
    generated.unlink()
    return {
        "rpt": rpt,
        "log": log,
        "events": events,
        "generate_seconds": generate_seconds,
        "clf_seconds": clf_seconds,
    }


def test_trace_replay_speedup_and_flat_memory(corpus):
    reference = _probe("object", corpus["log"])
    columnar = _probe("columnar", corpus["rpt"])
    for key in CHECKSUM_KEYS:
        assert reference[key] == columnar[key], (
            f"{key}: object={reference[key]!r} columnar={columnar[key]!r} — "
            "the pipelines did different work; the timing is meaningless"
        )
    speedup = reference["seconds"] / columnar["seconds"]
    rss_ratio = columnar["hwm_kb"] / reference["hwm_kb"]
    payload = {
        "events": corpus["events"],
        "requests": reference["requests"],
        "sessions": reference["sessions"],
        "object_seconds": reference["seconds"],
        "columnar_seconds": columnar["seconds"],
        "object_hwm_kb": reference["hwm_kb"],
        "columnar_hwm_kb": columnar["hwm_kb"],
        "speedup": round(speedup, 2),
        "rss_ratio": round(rss_ratio, 3),
        "file_bytes": {
            "clf": corpus["log"].stat().st_size,
            "columnar": corpus["rpt"].stat().st_size,
        },
        "generate_seconds": round(corpus["generate_seconds"], 2),
        "clf_convert_seconds": round(corpus["clf_seconds"], 2),
    }
    _update_bench_json("replay", payload)
    print(
        f"replay prep over {corpus['events']} events: object "
        f"{reference['seconds']:.2f}s / columnar {columnar['seconds']:.2f}s "
        f"= {speedup:.1f}x at {rss_ratio:.2f}x peak RSS "
        f"({reference['hwm_kb']}KB -> {columnar['hwm_kb']}KB)"
    )
    if corpus["events"] >= FULL_EVENTS:
        # The PR's acceptance bar on the full-size trace.
        assert speedup >= 10.0
        assert rss_ratio <= 1.2
    else:
        # Smoke scale: fixed interpreter overhead (~40MB baseline RSS in
        # both children) compresses both ratios, so assert looser floors.
        assert speedup >= 2.0
        assert rss_ratio <= 2.0


def test_streaming_writer_throughput(corpus):
    """Informational: synth-to-columnar write rate and CLF expansion."""
    events = corpus["events"]
    payload = {
        "events": events,
        "write_events_per_second": round(
            events / corpus["generate_seconds"], 1
        ),
        "clf_bytes_per_event": round(
            corpus["log"].stat().st_size / events, 1
        ),
        "columnar_bytes_per_event": round(
            corpus["rpt"].stat().st_size / events, 1
        ),
    }
    _update_bench_json("write", payload)
    print(
        f"streamed {events} events at "
        f"{payload['write_events_per_second']:.0f}/s; "
        f"{payload['columnar_bytes_per_event']}B/event columnar vs "
        f"{payload['clf_bytes_per_event']}B/event CLF"
    )
    assert payload["write_events_per_second"] > 0
