"""Figure 4 (panels 1-2): node growth and traffic increase, NASA-like.

Paper shape: LRS-PPM's node count grows roughly in proportion to the
training days while PB-PPM's grows much more slowly; the standard model
has the highest traffic increase (~2x the other two).
"""

from conftest import mean_by_model

from repro.experiments import get_lab, run_experiment


def test_fig4_nasa(benchmark, report):
    result = run_experiment("fig4-nasa")
    report(result)

    series = result.series("train_days", "node_count", label="model")
    lrs = dict(series["lrs"])
    pb = dict(series["pb"])
    last = max(lrs)
    # LRS grows faster than PB over the window.
    assert lrs[last] / lrs[1] > pb[last] / pb[1]

    traffic = mean_by_model(result, "traffic_increment")
    # Standard has the highest traffic increase, by a wide margin.
    assert traffic["standard"] > traffic["pb"] * 1.5
    assert traffic["standard"] > traffic["lrs"] * 1.5

    # Kernel: node counting over the biggest tree (the space metric).
    lab = get_lab("nasa-like", 8)
    model = lab.model("standard", 7)
    benchmark(lambda: model.node_count)
