"""Child-process memory probe for the compact-kernel benchmarks.

Run as ``python benchmarks/memory_probe.py <model> <node|compact>``; the
process builds the requested model representation on the lab's training
sessions and prints one JSON line of memory readings:

* ``retained_kb`` — VmRSS growth across the build (model storage as the
  OS bills it), measured without tracemalloc so the tracer's own
  bookkeeping cannot distort it;
* ``hwm_delta_kb`` — VmHWM (peak RSS) growth across the build;
* ``traced_peak_kb`` / ``traced_retained_kb`` — tracemalloc readings of
  a second, instrumented build: deterministic allocator-level numbers
  that stay meaningful at smoke scales where RSS granularity drowns the
  signal.

A child process per representation keeps the measurements independent:
nothing of the node build's heap can be recycled into the compact
build's, or vice versa.
"""

from __future__ import annotations

import ctypes
import gc
import json
import sys
import tracemalloc


def trim_heap() -> None:
    """Hand freed arena pages back to the OS so VmRSS reflects live data."""
    gc.collect()
    try:
        ctypes.CDLL("libc.so.6").malloc_trim(0)
    except OSError:  # pragma: no cover - non-glibc platforms
        pass


def rss_kb(field: str = "VmRSS") -> int:
    with open("/proc/self/status", encoding="ascii") as status:
        for line in status:
            if line.startswith(field + ":"):
                return int(line.split()[1])
    return 0


def build(model_name: str, compact: bool, sessions, popularity):
    if model_name == "standard":
        from repro.core.standard import StandardPPM

        return StandardPPM(compact=compact).fit(sessions)
    if model_name == "pb":
        from repro.core.pb import PopularityBasedPPM

        return PopularityBasedPPM(popularity, compact=compact).fit(sessions)
    raise SystemExit(f"unknown model: {model_name}")


def main(model_name: str, mode: str) -> None:
    from repro.experiments.lab import get_lab

    compact = mode == "compact"
    lab = get_lab("nasa-like", 6)
    sessions = lab.split(5).train_sessions
    for session in sessions:  # warm the url cache outside the measurement
        _ = session.urls
    popularity = lab.popularity(5) if model_name == "pb" else None

    trim_heap()
    before = rss_kb()
    hwm_before = rss_kb("VmHWM")
    model = build(model_name, compact, sessions, popularity)
    trim_heap()
    retained = rss_kb() - before
    hwm_delta = rss_kb("VmHWM") - hwm_before
    node_count = model.node_count
    del model
    trim_heap()

    tracemalloc.start()
    model = build(model_name, compact, sessions, popularity)
    gc.collect()
    traced_retained, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del model

    print(
        json.dumps(
            {
                "model": model_name,
                "mode": mode,
                "node_count": node_count,
                "retained_kb": retained,
                "hwm_delta_kb": hwm_delta,
                "traced_peak_kb": traced_peak // 1024,
                "traced_retained_kb": traced_retained // 1024,
            }
        )
    )


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2])
