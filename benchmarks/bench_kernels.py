"""Micro-benchmarks of the library's hot kernels.

Not a paper artefact: these time the computational building blocks so
performance regressions in the substrate are caught — trace generation,
session extraction, the three model fits, prediction, and the LRU cache.
"""

import numpy as np

from repro.experiments import get_lab
from repro.sim.cache import LRUCache
from repro.synth.generator import TraceGenerator
from repro.synth.zipf import ZipfSampler
from repro.trace.sessions import sessionize


def test_kernel_trace_generation(benchmark):
    def generate():
        return len(TraceGenerator("nasa-like", seed=1, scale=0.25).generate_records(1))

    benchmark.pedantic(generate, rounds=3, iterations=1)


def test_kernel_sessionize(benchmark):
    lab = get_lab("nasa-like", 6)
    requests = lab.trace.requests
    benchmark.pedantic(lambda: len(sessionize(requests)), rounds=3, iterations=1)


def test_kernel_standard_fit(benchmark):
    lab = get_lab("nasa-like", 6)
    sessions = lab.split(5).train_sessions

    def fit():
        from repro.core.standard import StandardPPM

        return StandardPPM().fit(sessions).node_count

    benchmark.pedantic(fit, rounds=3, iterations=1)


def test_kernel_lrs_fit(benchmark):
    lab = get_lab("nasa-like", 6)
    sessions = lab.split(5).train_sessions

    def fit():
        from repro.core.lrs import LRSPPM

        return LRSPPM().fit(sessions).node_count

    benchmark.pedantic(fit, rounds=3, iterations=1)


def test_kernel_pb_fit(benchmark):
    lab = get_lab("nasa-like", 6)
    sessions = lab.split(5).train_sessions
    popularity = lab.popularity(5)

    def fit():
        from repro.core.pb import PopularityBasedPPM

        return PopularityBasedPPM(popularity).fit(sessions).node_count

    benchmark.pedantic(fit, rounds=3, iterations=1)


def test_kernel_prediction(benchmark):
    lab = get_lab("nasa-like", 6)
    model = lab.model("pb", 5)
    contexts = [
        s.urls[: min(len(s.urls), 5)] for s in lab.split(5).test_sessions
    ]
    benchmark(
        lambda: sum(
            len(model.predict(c, mark_used=False)) for c in contexts
        )
    )


def test_kernel_lru_cache(benchmark):
    rng = np.random.default_rng(0)
    urls = [f"/u{i}" for i in range(500)]
    picks = rng.integers(0, 500, size=5000)
    sizes = rng.integers(100, 50_000, size=5000)

    def churn():
        cache = LRUCache(1_000_000)
        hits = 0
        for pick, size in zip(picks, sizes):
            url = urls[pick]
            if cache.access(url):
                hits += 1
            else:
                cache.store(url, int(size))
        return hits

    benchmark(churn)


def test_kernel_zipf_sampling(benchmark):
    sampler = ZipfSampler(10_000, 1.2, np.random.default_rng(0))
    benchmark(lambda: int(sampler.sample_many(100_000).sum()))
