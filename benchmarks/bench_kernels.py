"""Micro-benchmarks of the library's hot kernels.

Not a paper artefact: these time the computational building blocks so
performance regressions in the substrate are caught — trace generation,
session extraction, the three model fits, prediction, and the LRU cache.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import numpy as np

from repro.experiments import get_lab
from repro.experiments.lab import bench_scale
from repro.sim.cache import LRUCache
from repro.synth.generator import TraceGenerator
from repro.synth.zipf import ZipfSampler
from repro.trace.sessions import sessionize

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_kernels.json"


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into BENCH_kernels.json (tests are independent)."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    doc = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    doc["scale"] = bench_scale()
    doc[section] = payload
    BENCH_JSON.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _best_of(fn, rounds: int = 3):
    """(best wall-clock seconds, last result) over ``rounds`` runs."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best, result


def test_kernel_trace_generation(benchmark):
    def generate():
        return len(TraceGenerator("nasa-like", seed=1, scale=0.25).generate_records(1))

    benchmark.pedantic(generate, rounds=3, iterations=1)


def test_kernel_sessionize(benchmark):
    lab = get_lab("nasa-like", 6)
    requests = lab.trace.requests
    benchmark.pedantic(lambda: len(sessionize(requests)), rounds=3, iterations=1)


def test_kernel_standard_fit(benchmark):
    lab = get_lab("nasa-like", 6)
    sessions = lab.split(5).train_sessions

    def fit():
        from repro.core.standard import StandardPPM

        return StandardPPM().fit(sessions).node_count

    benchmark.pedantic(fit, rounds=3, iterations=1)


def test_kernel_lrs_fit(benchmark):
    lab = get_lab("nasa-like", 6)
    sessions = lab.split(5).train_sessions

    def fit():
        from repro.core.lrs import LRSPPM

        return LRSPPM().fit(sessions).node_count

    benchmark.pedantic(fit, rounds=3, iterations=1)


def test_kernel_pb_fit(benchmark):
    lab = get_lab("nasa-like", 6)
    sessions = lab.split(5).train_sessions
    popularity = lab.popularity(5)

    def fit():
        from repro.core.pb import PopularityBasedPPM

        return PopularityBasedPPM(popularity).fit(sessions).node_count

    benchmark.pedantic(fit, rounds=3, iterations=1)


def test_kernel_prediction(benchmark):
    lab = get_lab("nasa-like", 6)
    model = lab.model("pb", 5)
    contexts = [
        s.urls[: min(len(s.urls), 5)] for s in lab.split(5).test_sessions
    ]
    benchmark(
        lambda: sum(
            len(model.predict(c, mark_used=False)) for c in contexts
        )
    )


def test_kernel_lru_cache(benchmark):
    rng = np.random.default_rng(0)
    urls = [f"/u{i}" for i in range(500)]
    picks = rng.integers(0, 500, size=5000)
    sizes = rng.integers(100, 50_000, size=5000)

    def churn():
        cache = LRUCache(1_000_000)
        hits = 0
        for pick, size in zip(picks, sizes):
            url = urls[pick]
            if cache.access(url):
                hits += 1
            else:
                cache.store(url, int(size))
        return hits

    benchmark(churn)


def test_kernel_zipf_sampling(benchmark):
    sampler = ZipfSampler(10_000, 1.2, np.random.default_rng(0))
    benchmark(lambda: int(sampler.sample_many(100_000).sum()))


def _model_factory(name: str, compact: bool, popularity):
    if name == "standard":
        from repro.core.standard import StandardPPM

        return lambda: StandardPPM(compact=compact)
    if name == "lrs":
        from repro.core.lrs import LRSPPM

        return lambda: LRSPPM(compact=compact)
    if name == "pb":
        from repro.core.pb import PopularityBasedPPM

        return lambda: PopularityBasedPPM(popularity, compact=compact)
    from repro.core.extras import FirstOrderMarkov

    return lambda: FirstOrderMarkov(compact=compact)


def test_kernel_compact_build_speedup():
    """Compact-kernel model builds vs the TrieNode builds, per model.

    The acceptance bar for the kernel is >= 2x aggregate build throughput
    at NASA scale; reduced scales (REPRO_BENCH_SCALE < 1) shrink the
    corpus until fixed per-build overhead dominates, so CI smoke runs
    only assert a looser floor.
    """
    lab = get_lab("nasa-like", 6)
    sessions = lab.split(5).train_sessions
    popularity = lab.popularity(5)
    payload = {}
    node_total = compact_total = 0.0
    for name in ("standard", "lrs", "pb", "markov1"):
        times = {}
        for mode in ("node", "compact"):
            factory = _model_factory(name, mode == "compact", popularity)
            times[mode], model = _best_of(lambda: factory().fit(sessions))
            entry = payload.setdefault(name, {})
            entry[f"{mode}_seconds"] = round(times[mode], 4)
            entry[f"{mode}_nodes"] = model.node_count
        node_total += times["node"]
        compact_total += times["compact"]
        payload[name]["speedup"] = round(times["node"] / times["compact"], 2)
        print(
            f"{name}: node {times['node']:.4f}s compact "
            f"{times['compact']:.4f}s speedup {payload[name]['speedup']}x"
        )
    aggregate = node_total / compact_total
    payload["aggregate_speedup"] = round(aggregate, 2)
    _update_bench_json("build", payload)
    print(f"aggregate speedup {aggregate:.2f}x")
    if bench_scale() >= 1.0:
        assert aggregate >= 2.0
        assert payload["standard"]["speedup"] >= 2.0
        assert payload["lrs"]["speedup"] >= 2.0
    else:
        assert aggregate >= 1.2
    for name in ("standard", "lrs", "pb", "markov1"):
        assert payload[name]["node_nodes"] == payload[name]["compact_nodes"]


def test_kernel_incremental_prediction():
    """PredictionCursor vs per-click batch predict on the PB model."""
    lab = get_lab("nasa-like", 6)
    model = lab.model("pb", 5)
    streams = [s.urls for s in lab.split(5).test_sessions]
    max_context = 5

    def batch():
        total = 0
        for urls in streams:
            context: list[str] = []
            for url in urls:
                context.append(url)
                del context[:-max_context]
                total += len(model.predict(context, mark_used=False))
        return total

    def incremental():
        total = 0
        cursor = model.prediction_cursor(max_context)
        for urls in streams:
            cursor.reset()
            for url in urls:
                cursor.advance(url)
                total += len(model.predict_cursor(cursor, mark_used=False))
        return total

    batch_seconds, batch_total = _best_of(batch)
    incr_seconds, incr_total = _best_of(incremental)
    assert incr_total == batch_total
    speedup = batch_seconds / incr_seconds
    _update_bench_json(
        "incremental_prediction",
        {
            "batch_seconds": round(batch_seconds, 4),
            "incremental_seconds": round(incr_seconds, 4),
            "predictions": batch_total,
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"batch {batch_seconds:.4f}s incremental {incr_seconds:.4f}s "
        f"speedup {speedup:.2f}x over {batch_total} predictions"
    )
    # The cursor must never regress the batch path; the win grows with
    # context length, so at bench scales it is a modest margin.
    assert speedup >= 0.85


def test_kernel_memory_footprint():
    """Retained model memory, compact vs TrieNode, via child processes.

    tracemalloc numbers are the assertion basis everywhere (deterministic
    allocator-level accounting); RSS deltas are only trustworthy at full
    scale, where the model dwarfs page-granularity noise.

    The >=40% floor applies to standard PPM, the storage-heavy model the
    paper measures space against.  PB-PPM's pruned trie is small by
    design, so the kernel's fixed overheads (symbol table, child map)
    weigh proportionally more — it gets a looser floor.
    """
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    payload = {}
    floors = {"standard": 0.40, "pb": 0.20}
    for name in ("standard", "pb"):
        readings = {}
        for mode in ("node", "compact"):
            out = subprocess.run(
                [sys.executable, str(REPO_ROOT / "benchmarks" / "memory_probe.py"), name, mode],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            readings[mode] = json.loads(out.stdout.strip().splitlines()[-1])
        assert readings["node"]["node_count"] == readings["compact"]["node_count"]
        traced_node = readings["node"]["traced_retained_kb"]
        traced_compact = readings["compact"]["traced_retained_kb"]
        traced_reduction = 1.0 - traced_compact / traced_node
        rss_node = readings["node"]["retained_kb"]
        rss_compact = readings["compact"]["retained_kb"]
        payload[name] = {
            "node": readings["node"],
            "compact": readings["compact"],
            "traced_retained_reduction": round(traced_reduction, 3),
        }
        if bench_scale() >= 1.0 and rss_node > 0:
            payload[name]["rss_retained_reduction"] = round(
                1.0 - rss_compact / rss_node, 3
            )
        print(
            f"{name}: traced retained {traced_node}KB -> {traced_compact}KB "
            f"({traced_reduction:.1%} less), RSS {rss_node}KB -> {rss_compact}KB"
        )
        assert traced_reduction >= floors[name]
        if bench_scale() >= 1.0:
            assert 1.0 - rss_compact / rss_node >= floors[name]
    _update_bench_json("memory", payload)
