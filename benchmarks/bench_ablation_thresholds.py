"""Ablation A1: the prediction-probability threshold (paper fixes 0.25).

Expected shape: lowering the threshold trades traffic for hits; raising
it starves prefetching.  The 0.25 operating point sits on the knee.
"""

from repro.experiments import run_experiment


def test_ablation_thresholds(benchmark, report):
    result = run_experiment("ablation-thresholds")
    report(result)

    pb_rows = {
        row["threshold"]: row for row in result.rows if row["model"] == "pb"
    }
    thresholds = sorted(pb_rows)
    # Prefetch traffic decreases monotonically as the threshold rises.
    traffic = [pb_rows[t]["traffic_increment"] for t in thresholds]
    assert all(a >= b - 0.02 for a, b in zip(traffic, traffic[1:]))
    # Hits never increase when the threshold rises.
    hits = [pb_rows[t]["hit_ratio"] for t in thresholds]
    assert all(a >= b - 0.01 for a, b in zip(hits, hits[1:]))
    # Accuracy of issued prefetches improves with the threshold.
    accuracy = [pb_rows[t]["prefetch_accuracy"] for t in thresholds]
    assert accuracy[-1] >= accuracy[0] - 0.05

    benchmark.pedantic(
        lambda: run_experiment("ablation-thresholds"), rounds=1, iterations=1
    )
