"""Compare the current predict-bench JSON against the committed baseline.

Usage::

    python benchmarks/check_predict_regression.py \
        [--current benchmarks/results/BENCH_predict.json] \
        [--baseline benchmarks/baselines/BENCH_predict.json] \
        [--tolerance 0.2]

Only *ratio* metrics gate — keys containing ``speedup`` — because
absolute seconds and throughputs shift with the host, while the
compiled-table ratios are what the PR guarantees.  A metric regresses
when ``current < baseline * (1 - tolerance)``; any regression exits 1
and lists the offenders.  Raw numbers are printed for context but never
gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "BENCH_predict.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_predict.json"


def ratio_metrics(doc, prefix: str = "") -> dict[str, float]:
    """Flatten the nested JSON to ``section.key -> value`` ratio entries."""
    found: dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            found.update(ratio_metrics(value, path))
        elif isinstance(value, (int, float)) and "speedup" in key:
            found[path] = float(value)
    return found


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.2)
    args = parser.parse_args(argv)

    for label, path in (("current", args.current), ("baseline", args.baseline)):
        if not path.exists():
            print(f"error: {label} results not found: {path}")
            return 1
    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())

    if current.get("scale") != baseline.get("scale"):
        print(
            f"warning: scale mismatch (current {current.get('scale')}, "
            f"baseline {baseline.get('scale')}) — ratios are still "
            "comparable but fixed overheads differ"
        )

    base_metrics = ratio_metrics(baseline)
    cur_metrics = ratio_metrics(current)
    floor_factor = 1.0 - args.tolerance
    regressions = []
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cur = cur_metrics.get(name)
        if cur is None:
            regressions.append(f"{name}: missing from current results")
            continue
        floor = base * floor_factor
        status = "ok"
        if cur < floor:
            status = "REGRESSED"
            regressions.append(
                f"{name}: {cur:.3f} < floor {floor:.3f} (baseline {base:.3f})"
            )
        print(
            f"{name}: current {cur:.3f} baseline {base:.3f} "
            f"floor {floor:.3f} [{status}]"
        )

    if regressions:
        print("\nregressions detected:")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print("\nno prediction-plane regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
