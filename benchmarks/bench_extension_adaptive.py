"""Extension E5: traffic-budgeted adaptive prefetching.

Automates the Section-5 trade-off: the controller should (a) keep the
achieved traffic increment near each budget and (b) convert looser
budgets into more hits.
"""

from repro.experiments import run_experiment


def test_extension_adaptive(benchmark, report):
    result = run_experiment("ablation-adaptive")
    report(result)

    rows = sorted(result.rows, key=lambda r: r["budget"])

    # Achieved traffic tracks the budget: never wildly above it...
    for row in rows:
        assert row["achieved_traffic"] <= row["budget"] * 2 + 0.02, row
    # ...and increases with the budget.
    achieved = [row["achieved_traffic"] for row in rows]
    assert achieved == sorted(achieved) or max(
        a - b for a, b in zip(achieved, achieved[1:])
    ) < 0.02

    # Looser budgets buy hits.
    assert rows[-1]["hit_ratio"] >= rows[0]["hit_ratio"] - 0.005

    # Tight budgets force the threshold up.
    assert rows[0]["final_threshold"] >= rows[-1]["final_threshold"]

    benchmark.pedantic(
        lambda: run_experiment("ablation-adaptive"), rounds=1, iterations=1
    )
