"""Figure 3 (panels 1-2): hit ratio and latency reduction, NASA-like trace.

Paper shape: the popularity-based model achieves the highest hit ratios
and latency reductions of the three models on the NASA trace.  In this
reproduction PB-PPM decisively beats the practical baselines (3-PPM and
LRS-PPM) and statistically ties the unlimited-height standard model —
whose tree is 20-80x larger and whose traffic is ~2x higher (see
EXPERIMENTS.md for the honest paper-vs-measured discussion).
"""

from conftest import mean_by_model

from repro.experiments import get_lab, run_experiment


def test_fig3_nasa(benchmark, report):
    result = run_experiment("fig3-nasa")
    report(result)

    hits = mean_by_model(result, "hit_ratio")
    latency = mean_by_model(result, "latency_reduction")

    # PB-PPM beats both practical baselines on hit ratio...
    assert hits["pb"] > hits["lrs"]
    assert hits["pb"] > hits["standard3"]
    # ...and stays within noise of the unlimited-height upper bound.
    assert hits["pb"] > hits["standard"] - 0.01
    # Latency reductions are positive for everyone (prefetching helps).
    for model, value in latency.items():
        assert value > 0.0, f"{model} latency reduction {value}"

    # Every model beats caching alone.
    shadows = mean_by_model(result, "shadow_hit_ratio")
    for model in hits:
        assert hits[model] > shadows[model]

    # Kernel: PB-PPM prediction throughput on real test contexts.
    lab = get_lab("nasa-like", 8)
    model = lab.model("pb", 5)
    contexts = [s.urls[: min(len(s.urls), 4)] for s in lab.split(5).test_sessions[:300]]

    def predict_all():
        return sum(
            len(model.predict(context, mark_used=False)) for context in contexts
        )

    benchmark(predict_all)
