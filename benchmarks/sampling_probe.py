"""Child-process probe for the sampling benchmarks.

Run as::

    python benchmarks/sampling_probe.py <events> <rate-or-"full"> [seed]

Streams a stationary workload to a temporary columnar ``.rpt`` —
client-hash sampled at ``rate`` unless the second argument is the
literal ``full`` — then times one complete evaluation of it: load,
time-quantile split, popularity/latency derivation, PB-PPM fit and a
single-worker replay.  Prints one JSON line with the generation and
evaluation timings, the replayed metrics and the process peak RSS
(VmHWM).

The evaluation is timed separately from generation because generation
cost is rate-independent (the sampler filters a stream it still has to
read); the speedup the benchmark gates is the *evaluation* speedup, the
part that scales with the kept trace.  One fresh process per
measurement keeps both the timing and the high-water mark honest.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

from memory_probe import rss_kb


def main(argv: "list[str]") -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    events = int(argv[0])
    rate = None if argv[1] == "full" else float(argv[1])
    seed = int(argv[2]) if len(argv) > 2 else 11

    from repro.sampling import ClientSampler
    from repro.sampling.fidelity import _evaluate
    from repro.trace.dataset import Trace
    from repro.workloads import create_workload, stream_to_columnar

    sampler = None if rate is None else ClientSampler(rate)
    workload = create_workload("stationary", seed=seed)
    handle, path = tempfile.mkstemp(suffix=".rpt")
    os.close(handle)
    try:
        start = time.perf_counter()
        kept = stream_to_columnar(workload, path, events=events, sample=sampler)
        generate_seconds = time.perf_counter() - start

        start = time.perf_counter()
        trace = Trace.from_columnar_file(path)
        result, info = _evaluate(
            trace, model="pb", train_fraction=0.7, workers=1
        )
        eval_seconds = time.perf_counter() - start
    finally:
        os.unlink(path)

    print(
        json.dumps(
            {
                "events": events,
                "rate": rate,
                "kept_events": kept,
                "clients": info["clients"],
                "generate_seconds": round(generate_seconds, 4),
                "eval_seconds": round(eval_seconds, 4),
                "hit_ratio": result.hit_ratio,
                "latency_reduction": result.latency_reduction,
                "node_count": result.node_count,
                "hwm_kb": rss_kb("VmHWM"),
            }
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
