"""Scaling study: fit cost, model size, and parallel replay speedup.

Not a paper artefact; this bench characterises the substrate so the
library's own scalability claims are measured, mirroring the paper's
argument that PB-PPM's storage "increases slightly as the number of days
for URLs increases" while the baselines grow much faster.  It also
measures the sharded replay engine (``repro.parallel``) against the
serial engine on the largest workload and re-checks its bit-equality
contract outside the unit-test fixtures.
"""

import dataclasses
import os
import time

from repro.core.lrs import LRSPPM
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.core.standard import StandardPPM
from repro.experiments.lab import bench_scale
from repro.parallel import ParallelPrefetchSimulator
from repro.sim.config import SimulationConfig
from repro.sim.engine import PrefetchSimulator
from repro.sim.metrics import SimulationResult
from repro.synth.generator import generate_trace

SCALES = (0.25, 0.5, 1.0)


def _fit_all(scale: float) -> dict[str, tuple[int, float]]:
    trace = generate_trace("nasa-like", days=3, seed=7, scale=scale)
    split = trace.split(train_days=2)
    popularity = PopularityTable.from_requests(split.train_requests)
    out: dict[str, tuple[int, float]] = {}
    for name, factory in (
        ("standard", StandardPPM),
        ("lrs", LRSPPM),
        ("pb", lambda: PopularityBasedPPM(popularity)),
    ):
        started = time.perf_counter()
        model = factory().fit(split.train_sessions)
        out[name] = (model.node_count, time.perf_counter() - started)
    out["sessions"] = (len(split.train_sessions), 0.0)
    return out


def test_scaling_with_trace_volume(benchmark, report):
    from repro.experiments.result import ExperimentResult

    result = ExperimentResult(
        experiment_id="scaling",
        title="Scaling — fit cost and model size vs workload scale",
        columns=["scale", "sessions", "model", "nodes", "fit_seconds"],
        notes=(
            "PB-PPM's node count must grow sublinearly relative to the "
            "standard model's as the workload scales."
        ),
    )
    measured: dict[float, dict] = {}
    for scale in SCALES:
        stats = _fit_all(scale)
        measured[scale] = stats
        for model in ("standard", "lrs", "pb"):
            nodes, seconds = stats[model]
            result.add_row(
                scale=scale,
                sessions=stats["sessions"][0],
                model=model,
                nodes=nodes,
                fit_seconds=seconds,
            )
    report(result)

    # PB's size grows more slowly with volume than the standard model's.
    pb_growth = measured[1.0]["pb"][0] / measured[0.25]["pb"][0]
    std_growth = measured[1.0]["standard"][0] / measured[0.25]["standard"][0]
    assert pb_growth < std_growth

    # Fits stay fast enough to rebuild nightly at any measured scale.
    assert all(
        stats[model][1] < 30.0
        for stats in measured.values()
        for model in ("standard", "lrs", "pb")
    )

    benchmark.pedantic(lambda: _fit_all(0.5), rounds=2, iterations=1)


WORKER_COUNTS = (1, 2, 4)


def _replay(simulator_cls, model, setup, workers: int):
    trace, split, popularity, latency = setup
    config = SimulationConfig.for_model("pb", workers=workers)
    simulator = simulator_cls(
        model,
        trace.url_size_table(),
        latency,
        config,
        popularity=popularity,
    )
    started = time.perf_counter()
    result = simulator.run(
        split.test_requests, client_kinds=trace.classify_clients()
    )
    return result, time.perf_counter() - started


def test_parallel_replay_speedup(benchmark, report):
    """Serial-vs-sharded replay on the largest workload of this bench.

    Records the speedup curve and re-asserts the engine contract: the
    sharded result is *bit-identical* to the serial one at every worker
    count.  The >=2x speedup floor at 4 workers only applies on machines
    that actually have >=4 cores and at full bench scale — single-core
    CI smoke runs still verify equality, just not wall-clock gains.
    """
    from repro.experiments.result import ExperimentResult

    scale = max(SCALES) * bench_scale()
    trace = generate_trace("nasa-like", days=3, seed=7, scale=scale)
    split = trace.split(train_days=2)
    popularity = PopularityTable.from_requests(split.train_requests)
    from repro.sim.latency import LatencyModel

    latency = LatencyModel.fit_requests(split.train_requests)
    model = PopularityBasedPPM(popularity).fit(split.train_sessions)
    setup = (trace, split, popularity, latency)

    serial_result, serial_seconds = _replay(
        PrefetchSimulator, model, setup, workers=1
    )

    result = ExperimentResult(
        experiment_id="scaling-parallel",
        title="Scaling — sharded replay speedup vs worker count",
        columns=["engine", "workers", "seconds", "speedup", "identical"],
        notes=(
            "Sharded client-mode replay must be bit-identical to serial; "
            "speedup is wall-clock serial_seconds / parallel_seconds."
        ),
    )
    result.add_row(
        engine="serial",
        workers=1,
        seconds=serial_seconds,
        speedup=1.0,
        identical=True,
    )

    speedups: dict[int, float] = {}
    for workers in WORKER_COUNTS:
        parallel_result, seconds = _replay(
            ParallelPrefetchSimulator, model, setup, workers=workers
        )
        identical = all(
            getattr(serial_result, field.name)
            == getattr(parallel_result, field.name)
            for field in dataclasses.fields(SimulationResult)
            if field.name != "labels"
        )
        assert identical, f"workers={workers} diverged from serial replay"
        speedups[workers] = serial_seconds / seconds
        result.add_row(
            engine="sharded",
            workers=workers,
            seconds=seconds,
            speedup=speedups[workers],
            identical=identical,
        )
    report(result)

    # The wall-clock floor is only meaningful with real cores to use and
    # a workload big enough to amortise process start-up.
    if (os.cpu_count() or 1) >= 4 and bench_scale() >= 1.0:
        assert speedups[4] >= 2.0, (
            f"expected >=2x at 4 workers, got {speedups[4]:.2f}x"
        )

    benchmark.pedantic(
        lambda: _replay(ParallelPrefetchSimulator, model, setup, workers=2),
        rounds=2,
        iterations=1,
    )
