"""Scaling study: how fit cost and model size grow with trace volume.

Not a paper artefact; this bench characterises the substrate so the
library's own scalability claims are measured, mirroring the paper's
argument that PB-PPM's storage "increases slightly as the number of days
for URLs increases" while the baselines grow much faster.
"""

import time

from repro.core.lrs import LRSPPM
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.core.standard import StandardPPM
from repro.synth.generator import generate_trace

SCALES = (0.25, 0.5, 1.0)


def _fit_all(scale: float) -> dict[str, tuple[int, float]]:
    trace = generate_trace("nasa-like", days=3, seed=7, scale=scale)
    split = trace.split(train_days=2)
    popularity = PopularityTable.from_requests(split.train_requests)
    out: dict[str, tuple[int, float]] = {}
    for name, factory in (
        ("standard", StandardPPM),
        ("lrs", LRSPPM),
        ("pb", lambda: PopularityBasedPPM(popularity)),
    ):
        started = time.perf_counter()
        model = factory().fit(split.train_sessions)
        out[name] = (model.node_count, time.perf_counter() - started)
    out["sessions"] = (len(split.train_sessions), 0.0)
    return out


def test_scaling_with_trace_volume(benchmark, report):
    from repro.experiments.result import ExperimentResult

    result = ExperimentResult(
        experiment_id="scaling",
        title="Scaling — fit cost and model size vs workload scale",
        columns=["scale", "sessions", "model", "nodes", "fit_seconds"],
        notes=(
            "PB-PPM's node count must grow sublinearly relative to the "
            "standard model's as the workload scales."
        ),
    )
    measured: dict[float, dict] = {}
    for scale in SCALES:
        stats = _fit_all(scale)
        measured[scale] = stats
        for model in ("standard", "lrs", "pb"):
            nodes, seconds = stats[model]
            result.add_row(
                scale=scale,
                sessions=stats["sessions"][0],
                model=model,
                nodes=nodes,
                fit_seconds=seconds,
            )
    report(result)

    # PB's size grows more slowly with volume than the standard model's.
    pb_growth = measured[1.0]["pb"][0] / measured[0.25]["pb"][0]
    std_growth = measured[1.0]["standard"][0] / measured[0.25]["standard"][0]
    assert pb_growth < std_growth

    # Fits stay fast enough to rebuild nightly at any measured scale.
    assert all(
        stats[model][1] < 30.0
        for stats in measured.values()
        for model in ("standard", "lrs", "pb")
    )

    benchmark.pedantic(lambda: _fit_all(0.5), rounds=2, iterations=1)
