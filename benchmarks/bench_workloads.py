"""Streaming-workload benchmarks: flat RAM, generator rate, scenario grid.

Measures the tentpole claims of the ``repro.workloads`` subsystem:

* **flat-RAM streaming** — a 10⁷-event flash-crowd workload streams to a
  columnar ``.rpt`` with peak RSS ≤ 1.5× that of a 10⁵-event run.  Both
  runs happen in child processes (``workload_probe.py``) so each gets a
  fresh heap and an honest VmHWM;
* **generation rate** — events/s of every registered scenario, consumed
  and discarded (pure generator throughput);
* **scenario grid** — the default scenario × model grid at a bounded
  per-scenario event count, recording per-scenario model quality
  (hit ratio / traffic increment) and live serving metrics.

``REPRO_WORKLOAD_BENCH_EVENTS`` bounds the big streaming run (default
10,000,000 — the full acceptance run); ``REPRO_WORKLOAD_GRID_EVENTS``
bounds the grid (default 150,000 events per scenario).  Results merge
into ``benchmarks/results/BENCH_workloads.json`` and are gated against
``benchmarks/baselines/BENCH_workloads.json`` by
``check_workload_regression.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_workloads.json"
PROBE = REPO_ROOT / "benchmarks" / "workload_probe.py"

#: Full-run streaming size; the 1.5x acceptance gate applies at >= this.
FULL_EVENTS = 10_000_000
TARGET_EVENTS = int(
    os.environ.get("REPRO_WORKLOAD_BENCH_EVENTS", FULL_EVENTS)
)
#: The small run the big one's peak RSS is compared against.
SMALL_EVENTS = max(10_000, TARGET_EVENTS // 100)
GRID_EVENTS = int(os.environ.get("REPRO_WORKLOAD_GRID_EVENTS", 150_000))
#: Generator-rate sample size (fixed: rates are per-event, not per-run).
RATE_EVENTS = min(TARGET_EVENTS, 100_000)


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into BENCH_workloads.json (tests are independent)."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    doc = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    doc["target_events"] = TARGET_EVENTS
    doc["grid_events"] = GRID_EVENTS
    doc[section] = payload
    BENCH_JSON.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _probe(mode: str, workload: str, events: int, *extra: str) -> dict:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    out = subprocess.run(
        [sys.executable, str(PROBE), mode, workload, str(events), *extra],
        capture_output=True,
        text=True,
        check=True,
        env=env,
        cwd=str(REPO_ROOT / "benchmarks"),
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_flat_rss_streaming_to_rpt(tmp_path):
    """Peak RSS of a .rpt stream must not grow with the event count."""
    small = _probe(
        "write", "flashcrowd", SMALL_EVENTS, str(tmp_path / "small.rpt")
    )
    big = _probe(
        "write", "flashcrowd", TARGET_EVENTS, str(tmp_path / "big.rpt")
    )
    flatness = big["hwm_kb"] / small["hwm_kb"]
    payload = {
        "small_events": small["events"],
        "big_events": big["events"],
        "small_hwm_kb": small["hwm_kb"],
        "big_hwm_kb": big["hwm_kb"],
        "rss_flatness": round(flatness, 3),
        "write_events_per_s": big["events_per_s"],
        "big_file_bytes": (tmp_path / "big.rpt").stat().st_size,
    }
    _update_bench_json("streaming", payload)
    print(
        f"streamed {big['events']} events at {big['events_per_s']:.0f}/s; "
        f"peak RSS {big['hwm_kb']}KB vs {small['hwm_kb']}KB at "
        f"{small['events']} events = {flatness:.2f}x"
    )
    if TARGET_EVENTS >= FULL_EVENTS:
        # The PR's acceptance bar: 100x the events, <= 1.5x the memory.
        assert flatness <= 1.5
    else:
        # Smoke scale: fixed interpreter overhead dominates both runs, so
        # the ratio is even flatter — keep a guard rail all the same.
        assert flatness <= 1.8


def test_generation_rate_per_scenario():
    """Pure iterator throughput of every registered scenario."""
    from repro.workloads import available_workloads

    payload = {}
    for name in available_workloads():
        result = _probe("generate", name, RATE_EVENTS)
        payload[name] = {
            "events": result["events"],
            "events_per_s": result["events_per_s"],
            "hwm_kb": result["hwm_kb"],
        }
        print(f"{name}: {result['events_per_s']:,.0f} events/s")
    _update_bench_json("generation", payload)
    assert all(entry["events_per_s"] > 0 for entry in payload.values())


def test_scenario_grid_quality_and_serving():
    """The default grid, bounded, with live serving metrics per scenario."""
    from repro.workloads import run_grid

    tree = run_grid(
        {
            "models": ["pb", "standard"],
            "serve": {
                "events": 400,
                "train_events": 1_500,
                "connections": 2,
                "workers": 1,
            },
        },
        events=GRID_EVENTS,
    )
    payload = {}
    for label, node in tree["scenarios"].items():
        entry = {
            "gen_events_per_s": round(
                node["generation"]["events_per_s"], 1
            ),
            "clients": node["generation"]["clients"],
            "urls": node["generation"]["urls"],
        }
        for cell, metrics in node["models"].items():
            entry[f"hit_ratio_{cell}"] = round(metrics["hit_ratio"], 4)
            entry[f"traffic_increment_{cell}"] = round(
                metrics["traffic_increment"], 4
            )
            entry[f"node_count_{cell}"] = metrics["node_count"]
        serving = node["serving"]
        entry["serve_requests_per_s"] = serving["requests_per_s"]
        entry["serve_failed"] = serving["failed"]
        entry["serve_latency_p99_ms"] = serving["latency_p99_ms"]
        payload[label] = entry
        print(
            f"{label}: pb hit {entry['hit_ratio_pb']:.3f}, "
            f"standard hit {entry['hit_ratio_standard']:.3f}, "
            f"served {serving['requests_per_s']:.0f} req/s"
        )
    _update_bench_json("grid", payload)
    assert len(payload) >= 5, "the default grid must cover 5 scenarios"
    assert all(entry["serve_failed"] == 0 for entry in payload.values())
    # The scenarios must actually stress the models differently: the
    # adversarial crawler scan has to hurt PB-PPM's popularity-pruned trie
    # relative to the stationary control.
    assert (
        payload["crawler"]["hit_ratio_pb"]
        < payload["stationary"]["hit_ratio_pb"]
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-v", "-s"]))
