"""Figure 2 (right): path-utilisation rates for predictions.

Paper shape: the 3-PPM and LRS trees are mostly dead weight (utilisation
falling with training days, below 20 % / around 40 % at 7 days); the
popularity-based tree is used far more densely.
"""

from conftest import mean_by_model

from repro.experiments import get_lab, run_experiment


def test_fig2_utilization(benchmark, report):
    result = run_experiment("fig2-utilization")
    report(result)

    means = mean_by_model(result, "path_utilization")
    # PB-PPM's tree is used the most densely of the three.
    assert means["pb"] > means["standard3"]
    assert means["pb"] > means["lrs"] * 0.9

    # Utilisation of the big models *falls* as training days grow.
    series = result.series("train_days", "path_utilization", label="model")
    first = dict(series["standard3"])[1]
    last = dict(series["standard3"])[max(x for x, _ in series["standard3"])]
    assert last <= first

    # Kernel: path enumeration over the 5-day standard tree.
    from repro.core.stats import path_utilization

    lab = get_lab("nasa-like", 8)
    roots = lab.model("standard3", 5).roots
    benchmark(lambda: path_utilization(roots))
