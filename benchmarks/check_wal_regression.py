"""Compare the current WAL-bench JSON against the committed baseline.

Usage::

    python benchmarks/check_wal_regression.py \
        [--current benchmarks/results/BENCH_wal.json] \
        [--baseline benchmarks/baselines/BENCH_wal.json] \
        [--tolerance 0.05] [--rate-tolerance 0.5]

Two kinds of metric gate:

* ``overhead_ratio`` — the fraction of loadgen throughput retained with
  the journal on; the PR's acceptance bar.  Lower-bounded at the tight
  tolerance (default 0.05): it is a *ratio of two runs on the same
  host*, so host speed cancels and only a real cost increase moves it;
* ``*records_per_s`` / ``*requests_per_s`` — absolute rates,
  lower-bounded at the loose *rate* tolerance (default 0.5): they move
  with the host, the gate only catches collapses.

``latency_*``, ``fsyncs`` and size entries are informational.  Any
violation exits 1 and lists the offenders.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "BENCH_wal.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_wal.json"


def gated_metrics(doc, prefix: str = "") -> dict[str, float]:
    """Flatten the nested JSON to ``section.key -> value`` gated entries."""
    found: dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            found.update(gated_metrics(value, path))
        elif isinstance(value, (int, float)) and (
            "overhead_ratio" in key
            or "records_per_s" in key
            or "requests_per_s" in key
        ):
            found[path] = float(value)
    return found


def _threshold(
    name: str, base: float, tolerance: float, rate_tolerance: float
) -> float:
    if "overhead_ratio" in name:
        return base * (1.0 - tolerance)
    return base * (1.0 - rate_tolerance)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.05)
    parser.add_argument("--rate-tolerance", type=float, default=0.5)
    args = parser.parse_args(argv)

    for label, path in (("current", args.current), ("baseline", args.baseline)):
        if not path.exists():
            print(f"error: {label} results not found: {path}")
            return 1
    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())

    if current.get("target_events") != baseline.get("target_events"):
        print(
            f"warning: size mismatch (target_events: current "
            f"{current.get('target_events')}, baseline "
            f"{baseline.get('target_events')}) — the overhead ratio is "
            "noisier at smaller scales"
        )

    base_metrics = gated_metrics(baseline)
    cur_metrics = gated_metrics(current)
    violations = []
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cur = cur_metrics.get(name)
        if cur is None:
            violations.append(f"{name}: missing from current results")
            continue
        threshold = _threshold(name, base, args.tolerance, args.rate_tolerance)
        ok = cur >= threshold
        status = "ok" if ok else "REGRESSED"
        if not ok:
            violations.append(
                f"{name}: {cur:.3f} < threshold {threshold:.3f} "
                f"(baseline {base:.3f})"
            )
        print(f"{name}: current {cur:.3f} baseline {base:.3f} [{status}]")
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        print(
            f"{name}: current {cur_metrics[name]:.3f} "
            "(no baseline — informational)"
        )

    if violations:
        print(f"\n{len(violations)} WAL metric(s) regressed:")
        for line in violations:
            print(f"  - {line}")
        return 1
    print(f"\nall {len(base_metrics)} WAL metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
