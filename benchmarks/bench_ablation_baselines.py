"""Ablation A5: related-work baselines from the paper's Section 6.

First-order Markov (Padmanabhan & Mogul) and Top-10 push (Markatos &
Chronaki) against the paper's three models.  Expected shape: PB-PPM beats
both related-work baselines on hit ratio; Top-10 is the smallest model
but context-blind.
"""

from repro.experiments import run_experiment


def test_ablation_baselines(benchmark, report):
    result = run_experiment("ablation-baselines")
    report(result)

    rows = {row["model"]: row for row in result.rows}

    assert rows["pb"]["hit_ratio"] >= rows["markov1"]["hit_ratio"] - 0.005
    assert rows["pb"]["hit_ratio"] > rows["top10"]["hit_ratio"]
    # Top-10 stores just its push set.
    assert rows["top10"]["node_count"] <= 10
    # Order-1 Markov is bigger than PB but smaller than unlimited standard.
    assert rows["markov1"]["node_count"] < rows["standard"]["node_count"]

    benchmark.pedantic(
        lambda: run_experiment("ablation-baselines"), rounds=1, iterations=1
    )
