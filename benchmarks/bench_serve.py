"""Serving throughput: the online prediction server under trace replay.

Boots an in-process :class:`~repro.serve.server.PrefetchServer` trained on
the head of a synthetic NASA-like trace and replays the tail through the
load generator in combined report+predict mode, with one hot-swap rebuild
fired mid-run.  Writes ``benchmarks/results/BENCH_serve.json``.

``test_serve_scaling`` does the same against the shared-memory
:class:`~repro.serve.multiproc.MultiprocServer` at 1, 2 and 4 workers and
writes ``benchmarks/results/BENCH_serve_scale.json`` — throughput per
worker count plus the segment bytes actually shared versus what N private
model copies would have cost.

Thresholds are CI-safe floors (shared-runner tolerant); the committed
artifact records the real numbers from a quiet machine.  Correctness
(zero failed requests, zero stale-generation predictions) is asserted
unconditionally; the >= 3x speedup bar at 4 workers only applies where
the hardware can physically deliver it (``os.cpu_count() >= 5`` — four
workers plus the load generator).
"""

import json
import os
import pathlib

from repro.serve.loadgen import format_report, run_loadgen

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Floors a loaded CI runner still clears with headroom; the acceptance
#: numbers (>= 2000 predictions/s, p99 < 10 ms) come from a quiet run.
MIN_PREDICTIONS_PER_S = 500.0
MAX_P99_MS = 100.0


def test_serve_throughput(benchmark):
    out = RESULTS_DIR / "BENCH_serve.json"

    def run():
        return run_loadgen(
            spawn=True,
            profile="nasa-like",
            days=1,
            train_days=2,
            seed=7,
            scale=1.0,
            connections=8,
            mode="combined",
            refresh_mid_run=True,
            out=str(out),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_report(report))

    assert report["failed_requests"] == 0
    assert report["refresh_triggered"] is True
    assert report["prediction_urls_returned"] > 0
    assert report["predictions_per_s"] >= MIN_PREDICTIONS_PER_S
    assert report["latency_ms"]["p99"] <= MAX_P99_MS

    written = json.loads(out.read_text(encoding="utf-8"))
    assert written["requests_total"] == report["requests_total"]


#: Worker counts swept by the scaling benchmark.
WORKER_COUNTS = (1, 2, 4)

#: Cores needed before a >= 3x bar at 4 workers is physically meaningful:
#: four serving processes plus the load-generating parent.
CORES_FOR_SPEEDUP_BAR = 5

MIN_SPEEDUP_AT_4 = 3.0


def test_serve_scaling(benchmark):
    out = RESULTS_DIR / "BENCH_serve_scale.json"
    runs = {}

    def sweep():
        results = {}
        for workers in WORKER_COUNTS:
            results[workers] = run_loadgen(
                spawn=True,
                profile="nasa-like",
                days=1,
                train_days=2,
                seed=7,
                scale=0.5,
                connections=max(8, workers * 2),
                mode="combined",
                refresh_mid_run=True,
                workers=workers,
            )
        return results

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Correctness is unconditional: every run, on any machine, must be
    # lossless and stale-free across the mid-run hot swap.
    for workers, report in runs.items():
        assert report["failed_requests"] == 0, f"workers={workers}"
        assert report["refresh_triggered"] is True, f"workers={workers}"
        assert report["stale_predictions"] == 0, f"workers={workers}"
        assert report["prediction_urls_returned"] > 0, f"workers={workers}"

    base = runs[1]["predictions_per_s"]
    cpu_count = os.cpu_count() or 1
    segment_bytes = runs[4]["config"].get("segment_bytes", 0)
    scale_report = {
        "benchmark": "serve_scale",
        "cpu_count": cpu_count,
        "worker_counts": list(WORKER_COUNTS),
        "runs": {
            str(workers): {
                "predictions_per_s": report["predictions_per_s"],
                "requests_per_s": report["requests_per_s"],
                "speedup_vs_1_worker": (
                    report["predictions_per_s"] / base if base else None
                ),
                "failed_requests": report["failed_requests"],
                "stale_predictions": report["stale_predictions"],
                "refresh_version": report["refresh_version"],
                "latency_ms": report["latency_ms"],
            }
            for workers, report in runs.items()
        },
        "shared_model_segment_bytes": segment_bytes,
        "naive_copy_bytes_at_4_workers": segment_bytes * 4,
        "speedup_bar_applies": cpu_count >= CORES_FOR_SPEEDUP_BAR,
    }
    out.write_text(
        json.dumps(scale_report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    for workers in WORKER_COUNTS:
        print(
            f"workers={workers}: "
            f"{runs[workers]['predictions_per_s']:.0f} predictions/s "
            f"({scale_report['runs'][str(workers)]['speedup_vs_1_worker']:.2f}x)"
        )

    # The speedup bar only binds where the cores exist to deliver it; a
    # 1-CPU container still runs the sweep and still proves correctness,
    # and the committed artifact records which regime produced it.
    if cpu_count >= CORES_FOR_SPEEDUP_BAR:
        speedup = runs[4]["predictions_per_s"] / base
        assert speedup >= MIN_SPEEDUP_AT_4, (
            f"4 workers gave {speedup:.2f}x over 1 worker "
            f"(need >= {MIN_SPEEDUP_AT_4}x on {cpu_count} cores)"
        )
