"""Serving throughput: the online prediction server under trace replay.

Boots an in-process :class:`~repro.serve.server.PrefetchServer` trained on
the head of a synthetic NASA-like trace and replays the tail through the
load generator in combined report+predict mode, with one hot-swap rebuild
fired mid-run.  Writes ``benchmarks/results/BENCH_serve.json``.

Thresholds are CI-safe floors (shared-runner tolerant); the committed
artifact records the real numbers from a quiet machine.
"""

import json
import pathlib

from repro.serve.loadgen import format_report, run_loadgen

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Floors a loaded CI runner still clears with headroom; the acceptance
#: numbers (>= 2000 predictions/s, p99 < 10 ms) come from a quiet run.
MIN_PREDICTIONS_PER_S = 500.0
MAX_P99_MS = 100.0


def test_serve_throughput(benchmark):
    out = RESULTS_DIR / "BENCH_serve.json"

    def run():
        return run_loadgen(
            spawn=True,
            profile="nasa-like",
            days=1,
            train_days=2,
            seed=7,
            scale=1.0,
            connections=8,
            mode="combined",
            refresh_mid_run=True,
            out=str(out),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_report(report))

    assert report["failed_requests"] == 0
    assert report["refresh_triggered"] is True
    assert report["prediction_urls_returned"] > 0
    assert report["predictions_per_s"] >= MIN_PREDICTIONS_PER_S
    assert report["latency_ms"]["p99"] <= MAX_P99_MS

    written = json.loads(out.read_text(encoding="utf-8"))
    assert written["requests_total"] == report["requests_total"]
