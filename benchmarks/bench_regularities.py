"""Workload validation: the paper's Regularities 1-3 on generated traces.

NASA-like must satisfy all three regularities strongly; UCB-like shows
Regularity 1 while (by design) weakening the popularity/length coupling —
the deviation the paper blames for its UCB results.
"""

from repro.experiments import run_experiment


def test_regularities(benchmark, report):
    result = run_experiment("regularity-check")
    report(result)

    rows = {row["profile"]: row for row in result.rows}
    nasa, ucb = rows["nasa-like"], rows["ucb-like"]

    # Regularity 1 on both: majority popular entries, minority popular URLs.
    for row in (nasa, ucb):
        assert row["r1"] is True
        assert row["popular_entry_frac"] > 0.5
        assert row["popular_url_frac"] < 0.5

    # Regularity 3 (grade descent) on both.
    assert nasa["r3"] is True
    assert nasa["grade_entry"] >= nasa["grade_exit"]

    # The profiles encode the paper's NASA/UCB contrast.
    assert nasa["popular_entry_frac"] > ucb["popular_entry_frac"]
    assert (
        nasa["len_popular_head"] - nasa["len_unpopular_head"]
        > ucb["len_popular_head"] - ucb["len_unpopular_head"]
    )

    # Kernel: the regularity analysis itself on the 5-day NASA sessions.
    from repro.analysis.regularities import analyze_regularities
    from repro.experiments import get_lab

    lab = get_lab("nasa-like", 6)
    sessions = lab.split(5).train_sessions
    popularity = lab.popularity(5)
    benchmark(lambda: analyze_regularities(sessions, popularity))
