"""Ablation A2: the grade-to-height mapping of PB-PPM (paper: 7/5/3/1).

Expected shape: the all-1 mapping collapses the tree (tiny but blind);
the all-7 mapping wastes space on unpopular heads without gaining hits
over the paper's graded mapping.
"""

from repro.experiments import run_experiment


def test_ablation_heights(benchmark, report):
    result = run_experiment("ablation-heights")
    report(result)

    by_heights = {row["heights"]: row for row in result.rows}
    graded = by_heights["7/5/3/1"]
    flat_small = by_heights["1/1/1/1"]
    flat_large = by_heights["7/7/7/7"]

    # Space ordering: all-1 < graded < all-7.
    assert flat_small["node_count"] < graded["node_count"] < flat_large["node_count"]
    # The graded mapping recovers almost all of the all-7 hit ratio.
    assert graded["hit_ratio"] > flat_large["hit_ratio"] - 0.02
    # And clearly beats the height-1 tree.
    assert graded["hit_ratio"] > flat_small["hit_ratio"]

    benchmark.pedantic(
        lambda: run_experiment("ablation-heights"), rounds=1, iterations=1
    )
