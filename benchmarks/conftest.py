"""Shared infrastructure for the benchmark harness.

Every bench module regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index), writes the rows to
``benchmarks/results/<experiment-id>.txt``, prints them, asserts the
paper's qualitative shape, and times a representative kernel with
pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE`` below 1.0 for a quick pass (e.g. 0.2).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Write an ExperimentResult to disk and echo it."""

    def _report(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.format_table() + "\n", encoding="utf-8")
        print()
        print(result.format_table())
        return path

    return _report


def mean_by_model(result, column, *, x_column=None, min_x=None):
    """Mean of ``column`` per model label, optionally restricted to rows
    whose ``x_column`` is at least ``min_x`` (late-day behaviour)."""
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for row in result.rows:
        if min_x is not None and row[x_column] < min_x:
            continue
        model = str(row["model"])
        sums[model] = sums.get(model, 0.0) + float(row[column])
        counts[model] = counts.get(model, 0) + 1
    return {model: sums[model] / counts[model] for model in sums}
