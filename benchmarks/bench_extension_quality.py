"""Extension E3: direct predictor quality, including the Section-3.3 claim.

*"Our experiments also show that the prediction accuracy on popular
documents is higher than that on less popular documents"* — compared here
as eventual precision on grade-2/3 predictions versus grade-0/1 ones.
"""

from repro.experiments import run_experiment


def test_extension_prediction_quality(benchmark, report):
    result = run_experiment("prediction-quality")
    report(result)

    rows = {row["model"]: row for row in result.rows}

    # The paper's Section-3.3 observation, for every model that issues a
    # meaningful number of unpopular predictions.
    for model, row in rows.items():
        if row["eventual_precision_unpopular"] > 0:
            assert (
                row["eventual_precision_popular"]
                >= row["eventual_precision_unpopular"] - 0.02
            ), model

    # PB trades per-prediction precision for coverage: its special links
    # and merged context levels answer at more steps than any baseline.
    assert rows["pb"]["coverage"] == max(r["coverage"] for r in rows.values())
    assert rows["pb"]["next_step_recall"] == max(
        r["next_step_recall"] for r in rows.values()
    )

    benchmark.pedantic(
        lambda: run_experiment("prediction-quality"), rounds=1, iterations=1
    )
