"""Child-process probe for the trace-plane benchmarks.

Run as ``python benchmarks/trace_plane_probe.py <object|columnar> <path>``;
the process executes one end-to-end replay-preparation pipeline — load the
trace, derive page views and sessions, count popularity, split off the
last day and build its replay input — through the requested implementation
and prints one JSON line:

* ``seconds`` — wall-clock of the pipeline (imports and file generation
  excluded; they happen before the clock starts);
* ``hwm_kb`` — VmHWM (peak RSS) of the process, the number the ≤1.2x
  flat-memory gate compares;
* a set of order-insensitive checksums (record/request/session counts, a
  session-length second moment, a popularity digest, floored test-day
  timestamps) that the parent asserts equal between both probes, so the
  speedup is only ever measured over provably identical work.

A child process per implementation keeps the measurements honest: neither
path can warm the other's caches or inherit its heap.
"""

from __future__ import annotations

import json
import math
import sys
import time


def rss_kb(field: str = "VmHWM") -> int:
    with open("/proc/self/status", encoding="ascii") as status:
        for line in status:
            if line.startswith(field + ":"):
                return int(line.split()[1])
    return 0


def probe_object(path: str) -> dict:
    """The parser-fed reference pipeline over LogRecord/Request objects."""
    from repro import params
    from repro.sim.engine import request_sort_key
    from repro.trace.dataset import Trace

    params.COLUMNAR_TRACE = False
    trace = Trace.from_clf_file(path)
    sessions = trace.sessions
    popularity = trace.url_access_counts()
    sizes = trace.url_size_table()
    split = trace.split(trace.num_days - 1)
    test = sorted(split.test_requests, key=request_sort_key)
    return {
        "records": len(trace),
        "requests": len(trace.requests),
        "sessions": len(sessions),
        "session_l2": sum(len(s.requests) ** 2 for s in sessions),
        "popularity": sum(c * len(u) for u, c in popularity.items()),
        "size_total": sum(sizes.values()),
        "train_sessions": len(split.train_sessions),
        "test_requests": len(test),
        "test_ts_floor": sum(int(math.floor(r.timestamp)) for r in test),
    }


def probe_columnar(path: str) -> dict:
    """The mmap-ed columnar pipeline; no Python objects materialised."""
    import numpy as np

    from repro import params
    from repro.trace.columnar import RequestBatch, TraceColumns, TracePlane

    plane = TracePlane(
        TraceColumns.load(path),
        embed_window_seconds=params.EMBEDDED_OBJECT_WINDOW_S,
        idle_timeout_seconds=params.SESSION_IDLE_TIMEOUT_S,
    )
    requests = plane.requests
    layout = plane.sessions
    popularity = plane.url_access_counts()
    sizes = plane.url_size_table()
    timestamps = plane.columns.timestamps
    epoch = math.floor(float(timestamps[0]) / 86_400.0) * 86_400.0
    num_days = int((float(timestamps[-1]) - epoch) // 86_400.0) + 1
    day = requests.day_index(epoch)
    start_day = np.floor_divide(
        layout.start_times - epoch, 86_400.0
    ).astype(np.int64)
    batch = RequestBatch.from_request_columns(
        requests, np.flatnonzero(day == num_days - 1)
    )
    lengths = (layout.ends - layout.starts).astype(np.int64)
    return {
        "records": len(plane),
        "requests": len(requests),
        "sessions": len(layout),
        "session_l2": int(np.sum(lengths**2)),
        "popularity": sum(c * len(u) for u, c in popularity.items()),
        "size_total": sum(sizes.values()),
        "train_sessions": int(np.sum(start_day < num_days - 1)),
        "test_requests": len(batch),
        "test_ts_floor": int(
            np.floor(batch.timestamps).astype(np.int64).sum()
        ),
    }


def main(mode: str, path: str) -> None:
    probe = {"object": probe_object, "columnar": probe_columnar}[mode]
    start = time.perf_counter()
    payload = probe(path)
    payload["seconds"] = round(time.perf_counter() - start, 4)
    payload["mode"] = mode
    payload["hwm_kb"] = rss_kb("VmHWM")
    payload["rss_kb"] = rss_kb("VmRSS")
    print(json.dumps(payload))


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2])
