"""Chaos verdict: every fault armed, zero predictions lost.

Runs one seeded chaos schedule (:func:`repro.resilience.chaos.run_chaos`)
— a live server booted against a corrupt snapshot with every serving
fault injected under loadgen traffic, then a fault-injected parallel
replay checked bit-identical against a fault-free serial run — and
writes ``benchmarks/results/BENCH_chaos.json``.

Unlike the throughput benches there are no performance floors here: the
artifact records *recovery* counters (faults fired, 503 retries, shed
requests, snapshot retries, breaker transitions), and the assertion is
the all-or-nothing ``ok`` verdict.
"""

import json
import pathlib

from repro.resilience.chaos import format_chaos_report, run_chaos

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_chaos_verdict(benchmark):
    out = RESULTS_DIR / "BENCH_chaos.json"

    def run():
        return run_chaos(seed=7, out=str(out))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_chaos_report(report))

    assert report["ok"] is True
    serving = report["serving"]
    assert serving["failed_requests"] == 0
    assert serving["armed_never_fired"] == []
    assert serving["server"]["breaker_state_final"] == "closed"
    assert report["parallel"]["bit_identical"] is True

    written = json.loads(out.read_text(encoding="utf-8"))
    assert written["ok"] is True
