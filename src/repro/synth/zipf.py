"""Zipf-like discrete sampling, the backbone of Web popularity skew.

Web-server document popularity famously follows a Zipf-like law
(probability of the rank-*i* document proportional to ``1 / i**alpha``).
:class:`ZipfSampler` draws from that law over ``n`` ranks with a
precomputed cumulative table, so a draw is one uniform variate and one
binary search — fast enough to generate millions of requests.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Sampler over ranks ``0..n-1`` with ``P(i) ∝ 1 / (i+1)**alpha``.

    Parameters
    ----------
    n:
        Number of ranks.
    alpha:
        Skew exponent; 0 gives the uniform distribution, ~1 the classic
        Zipf law, larger values concentrate mass on the first ranks.
    rng:
        NumPy random generator; pass one seeded generator through the whole
        trace build for reproducibility.
    """

    def __init__(self, n: int, alpha: float, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)
        # Guard against floating-point shortfall at the top of the table.
        self._cdf[-1] = 1.0

    def probability(self, rank: int) -> float:
        """P(rank), 0-based."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank out of range: {rank}")
        return float(self._probabilities[rank])

    def sample(self) -> int:
        """Draw one rank."""
        return int(np.searchsorted(self._cdf, self._rng.random(), side="right"))

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks as an int64 array."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        draws = self._rng.random(count)
        return np.searchsorted(self._cdf, draws, side="right").astype(np.int64)

    def expected_top_share(self, top: int) -> float:
        """Total probability mass of the ``top`` first ranks.

        Used by the regularity checks: Regularity 1 holds when a small
        ``top`` captures the majority of the mass.
        """
        if top < 1:
            return 0.0
        return float(self._cdf[min(top, self.n) - 1])
