"""Synthetic workloads standing in for the NASA-KSC and UCB-CS logs.

The paper's traces are replayed from two public server logs.  This package
generates statistically faithful substitutes (DESIGN.md Section 5): a
hierarchical site graph, Zipf-biased entry selection, sessions whose paths
descend the popularity ladder, embedded images, heavy-tailed sizes, a
browser/proxy client mix and Poisson arrivals over any number of days.

Two built-in profiles mirror the paper's two traces:

* ``nasa-like`` — strong popularity concentration, regular surfing paths,
  long sessions headed by popular URLs (Regularities 1-3 hold strongly);
* ``ucb-like`` — entry grades spread evenly, irregular paths, popular
  entries that do not lead long sessions: the properties the paper invokes
  to explain PB-PPM's weaker UCB numbers.

Use :func:`generate_trace` for the one-call API.
"""

from repro.synth.zipf import ZipfSampler
from repro.synth.sizes import SizeModel
from repro.synth.sitegraph import Page, SiteGraph
from repro.synth.profiles import (
    NASA_LIKE,
    UCB_LIKE,
    UNIFORM_LIKE,
    TraceProfile,
    profile_by_name,
)
from repro.synth.generator import TraceGenerator, generate_trace

__all__ = [
    "ZipfSampler",
    "SizeModel",
    "Page",
    "SiteGraph",
    "NASA_LIKE",
    "UCB_LIKE",
    "UNIFORM_LIKE",
    "TraceProfile",
    "profile_by_name",
    "TraceGenerator",
    "generate_trace",
]
