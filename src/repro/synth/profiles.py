"""Workload profiles mirroring the paper's two traces.

A :class:`TraceProfile` bundles every knob of the generator.  The two
built-ins encode the contrast the paper draws between its traces:

* :data:`NASA_LIKE` — the NASA-KSC July-1995 server: heavily concentrated
  entry popularity, regular hierarchical surfing, long sessions headed by
  popular URLs.  Regularities 1-3 hold strongly, which is the regime where
  PB-PPM dominates both baselines.
* :data:`UCB_LIKE` — the UCB-CS July-2000 server: *"The popularity grades
  of the starting URLs are evenly distributed in the UCB-CS trace, and some
  of the popular entries may not lead to long sessions"* (Section 4.3).
  Entry selection is flat, walks are irregular and jumpy, and session
  length is decoupled from entry popularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.errors import ReproError, unknown_name_message
from repro.synth.sitegraph import SiteGraphSpec
from repro.synth.sizes import CONTENT_SIZES, HUB_SIZES


@dataclass(frozen=True)
class WalkWeights:
    """Per-click action weights of the surfing walk.

    At each click the walker descends to a child, backs up to the parent,
    jumps to a (popular) entry page, or exits; the four weights are
    normalised at use.  Jumps are what plant popular URLs in the middle of
    surfing paths — the pattern PB-PPM's special links exploit.
    """

    child: float = 0.55
    back: float = 0.12
    jump: float = 0.06
    exit: float = 0.27

    def __post_init__(self) -> None:
        if min(self.child, self.back, self.jump, self.exit) < 0:
            raise ReproError(f"walk weights must be >= 0: {self}")
        if self.child + self.back + self.jump + self.exit <= 0:
            raise ReproError("walk weights must not all be zero")


@dataclass(frozen=True)
class TraceProfile:
    """Every knob of the synthetic workload generator.

    Attributes
    ----------
    name:
        Profile label, becomes the trace name.
    site:
        Shape of the synthetic site hierarchy.
    browsers / proxies:
        Client population (scaled by the generator's ``scale`` argument).
    browser_sessions_per_day / proxy_sessions_per_day:
        Poisson rates for per-client daily session counts.
    entry_alpha:
        Zipf skew of entry-page selection; large = Regularity 1 strong.
    popular_entry_fraction:
        Probability a session starts at an entry page at all; the rest
        start at a uniformly random interior page (the paper's minority
        sessions that begin at less popular URLs).
    child_alpha:
        Zipf skew when choosing which child link to follow from *shallow*
        pages (levels below ``deep_level``); large values produce strongly
        repeating paths.
    deep_child_alpha:
        Child-choice skew from pages at ``deep_level`` and below.  Real
        sites show stereotyped top navigation but idiosyncratic deep
        browsing; the paper observes that "the prediction accuracy on
        popular documents is higher than that on less popular documents",
        which is this knob's effect.
    deep_level:
        Hierarchy level at which child choice switches to
        ``deep_child_alpha``.
    jump_to_sections:
        Probability a mid-session jump targets the *hot set* of popular
        section pages (level 1) rather than an entry page.  Jump targets
        are the popular URLs that end up duplicated in the middle of
        surfing paths — the pattern PB-PPM's special links exploit.
    hotset_alpha:
        Zipf skew over the hot-set section pages for those jumps.
    diurnal_amplitude:
        Strength of the day/night arrival cycle in [0, 1): 0 places
        session starts uniformly over the day (the calibrated default);
        larger values concentrate them around mid-afternoon with a cosine
        profile, like real server logs.
    walk:
        Action weights of the walk.
    popular_entry_length_boost:
        Multiplier (>1 lengthens) on expected session length when the
        session starts at a top-quartile entry page — Regularity 2.  Set
        below 1 to *decouple* popularity and session length (UCB-like).
    max_session_clicks:
        Hard cap on session length.
    think_time_mean_s / think_time_sigma:
        Lognormal inter-click gaps (kept below the session timeout).
    error_rate:
        Fraction of requests duplicated as 404 noise records, exercising
        the parser/filter path like a real log does.
    connection_time_s / transfer_rate_bps / latency_noise:
        Ground truth of the latency process the generator stamps onto
        records; the simulator re-fits these by least squares, never
        reading them directly.
    """

    name: str
    site: SiteGraphSpec = field(default_factory=SiteGraphSpec)
    browsers: int = 150
    proxies: int = 6
    browser_sessions_per_day: float = 1.2
    proxy_sessions_per_day: float = 35.0
    entry_alpha: float = 1.3
    popular_entry_fraction: float = 0.85
    child_alpha: float = 1.4
    deep_child_alpha: float = 0.4
    deep_level: int = 2
    jump_to_sections: float = 0.5
    hotset_alpha: float = 1.0
    diurnal_amplitude: float = 0.0
    walk: WalkWeights = field(default_factory=WalkWeights)
    popular_entry_length_boost: float = 1.6
    max_session_clicks: int = 30
    think_time_mean_s: float = 30.0
    think_time_sigma: float = 1.0
    error_rate: float = 0.004
    connection_time_s: float = params.TRUE_CONNECTION_TIME_S
    transfer_rate_bps: float = params.TRUE_TRANSFER_RATE_BPS
    latency_noise: float = 0.15

    def __post_init__(self) -> None:
        if self.browsers < 0 or self.proxies < 0:
            raise ReproError("client counts must be >= 0")
        if self.browsers + self.proxies == 0:
            raise ReproError("profile needs at least one client")
        if not 0.0 <= self.popular_entry_fraction <= 1.0:
            raise ReproError(
                f"popular_entry_fraction out of [0,1]: {self.popular_entry_fraction}"
            )
        if self.max_session_clicks < 1:
            raise ReproError(f"max_session_clicks must be >= 1: {self.max_session_clicks}")
        if not 0.0 <= self.error_rate < 1.0:
            raise ReproError(f"error_rate out of [0,1): {self.error_rate}")
        if self.popular_entry_length_boost <= 0:
            raise ReproError(
                f"popular_entry_length_boost must be > 0: {self.popular_entry_length_boost}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ReproError(
                f"diurnal_amplitude out of [0, 1): {self.diurnal_amplitude}"
            )


#: The NASA-KSC-like workload (see module docstring).  Parameter choices are
#: the outcome of the calibration documented in EXPERIMENTS.md: strong entry
#: concentration, stereotyped shallow navigation over light hub pages,
#: idiosyncratic deep browsing over heavy content pages, and hot-set jumps
#: that plant popular URLs in the middle of surfing paths.
NASA_LIKE = TraceProfile(
    name="nasa-like",
    site=SiteGraphSpec(
        entry_pages=16,
        branching=(6, 6, 8),
        level_sizes=(HUB_SIZES, HUB_SIZES, CONTENT_SIZES, CONTENT_SIZES),
        level_images=(1.0, 1.0, 2.0, 3.0),
    ),
    browsers=600,
    proxies=4,
    browser_sessions_per_day=1.2,
    proxy_sessions_per_day=40.0,
    entry_alpha=1.5,
    popular_entry_fraction=0.85,
    child_alpha=1.6,
    deep_child_alpha=0.3,
    deep_level=2,
    jump_to_sections=0.6,
    hotset_alpha=1.3,
    walk=WalkWeights(child=0.42, back=0.15, jump=0.13, exit=0.33),
    popular_entry_length_boost=1.6,
)

#: The UCB-CS-like workload (see module docstring): entry grades spread
#: evenly over many doors, irregular child choice from level 1 down, heavier
#: jumping, and popular entries that do *not* lead long sessions.
UCB_LIKE = TraceProfile(
    name="ucb-like",
    site=SiteGraphSpec(
        entry_pages=24,
        branching=(4, 5, 6),
        level_sizes=(HUB_SIZES, HUB_SIZES, CONTENT_SIZES, CONTENT_SIZES),
        level_images=(1.0, 1.0, 2.0, 2.0),
    ),
    browsers=600,
    proxies=6,
    browser_sessions_per_day=1.2,
    proxy_sessions_per_day=50.0,
    entry_alpha=0.8,
    popular_entry_fraction=0.55,
    child_alpha=1.3,
    deep_child_alpha=0.3,
    deep_level=2,
    jump_to_sections=0.5,
    hotset_alpha=0.6,
    walk=WalkWeights(child=0.45, back=0.12, jump=0.16, exit=0.27),
    popular_entry_length_boost=0.8,
)

#: A negative-control workload: no popularity skew at all.  Sessions start
#: at uniformly random pages, children and jump targets are chosen
#: uniformly, and session length is independent of the entry page.  The
#: paper's regularities do not hold here by construction, so the
#: popularity-based machinery has no signal to exploit — the control
#: experiment (`control-uniform`) verifies its advantage disappears.
UNIFORM_LIKE = TraceProfile(
    name="uniform-like",
    site=SiteGraphSpec(
        entry_pages=16,
        branching=(6, 6, 8),
        level_sizes=(HUB_SIZES, HUB_SIZES, CONTENT_SIZES, CONTENT_SIZES),
        level_images=(1.0, 1.0, 2.0, 3.0),
    ),
    browsers=400,
    proxies=4,
    browser_sessions_per_day=1.2,
    proxy_sessions_per_day=40.0,
    entry_alpha=0.0,
    popular_entry_fraction=0.0,
    child_alpha=0.0,
    deep_child_alpha=0.0,
    deep_level=0,
    jump_to_sections=0.5,
    hotset_alpha=0.0,
    walk=WalkWeights(child=0.42, back=0.15, jump=0.13, exit=0.33),
    popular_entry_length_boost=1.0,
)

_PROFILES: dict[str, TraceProfile] = {
    NASA_LIKE.name: NASA_LIKE,
    UCB_LIKE.name: UCB_LIKE,
    UNIFORM_LIKE.name: UNIFORM_LIKE,
}


def available_profiles() -> list[str]:
    """Names of the built-in trace profiles, sorted."""
    return sorted(_PROFILES)


def profile_by_name(name: str) -> TraceProfile:
    """Look up a built-in profile (``nasa-like``, ``ucb-like``, ...).

    Unknown names fail with the registry-wide error convention: the
    message lists every available profile and suggests a close match
    (``unknown profile 'nasa-lik' ... did you mean 'nasa-like'?``).
    """
    try:
        return _PROFILES[name]
    except KeyError:
        raise ReproError(
            unknown_name_message("profile", name, available_profiles())
        ) from None
