"""The synthetic trace generator (DESIGN.md Section 5 substitution).

Generates multi-day access logs over a :class:`~repro.synth.sitegraph.SiteGraph`
according to a :class:`~repro.synth.profiles.TraceProfile`.  The output is a
plain list of :class:`~repro.trace.record.LogRecord` — indistinguishable to
the rest of the library from a parsed real log — or a ready
:class:`~repro.trace.dataset.Trace`.

Generation pipeline per day and client:

1. draw the client's session count (Poisson, browser or proxy rate);
2. place session starts uniformly over the day;
3. walk the site graph: Zipf-biased entry choice (Regularity 1), child /
   back / jump / exit actions per click, popularity-coupled session length
   (Regularity 2), popularity-descending drift (Regularity 3);
4. stamp records: HTML fetch, its embedded images within the fold window,
   ground-truth latency ``a + size/rate`` with multiplicative noise, and a
   sprinkling of 404 noise records.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.synth.profiles import TraceProfile, profile_by_name
from repro.synth.sitegraph import Page, SiteGraph
from repro.synth.zipf import ZipfSampler
from repro.trace.dataset import SECONDS_PER_DAY, Trace
from repro.trace.record import LogRecord


class TraceGenerator:
    """Reproducible generator for one profile.

    Parameters
    ----------
    profile:
        A :class:`TraceProfile` or the name of a built-in one.
    seed:
        Seed for the NumPy generator; equal seeds give identical traces.
    scale:
        Multiplier on the client population (and hence request volume).
    """

    def __init__(
        self,
        profile: TraceProfile | str,
        *,
        seed: int = 0,
        scale: float = 1.0,
    ) -> None:
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        if scale <= 0:
            raise ReproError(f"scale must be > 0, got {scale}")
        self.profile = profile
        self.seed = seed
        self.scale = scale
        self._rng = np.random.default_rng(seed)
        self.graph = SiteGraph.build(profile.site, self._rng)
        self._entry_sampler = ZipfSampler(
            len(self.graph.entry_indices), profile.entry_alpha, self._rng
        )
        self._child_samplers: dict[tuple[int, float], ZipfSampler] = {}
        self._section_sampler = (
            ZipfSampler(len(self.graph.levels[1]), profile.hotset_alpha, self._rng)
            if self.graph.depth > 1 and self.graph.levels[1]
            else None
        )
        self._hour_cdf = self._build_hour_cdf(profile.diurnal_amplitude)
        self._browsers = max(0, int(round(profile.browsers * scale)))
        self._proxies = max(0, int(round(profile.proxies * scale)))
        if self._browsers + self._proxies == 0:
            raise ReproError("scaled client population is empty")

    @staticmethod
    def _build_hour_cdf(amplitude: float) -> np.ndarray | None:
        """Cumulative hour-of-day weights for the diurnal arrival cycle."""
        if amplitude <= 0.0:
            return None
        hours = np.arange(24, dtype=np.float64)
        weights = 1.0 + amplitude * np.cos(2.0 * np.pi * (hours - 15.0) / 24.0)
        cdf = np.cumsum(weights / weights.sum())
        cdf[-1] = 1.0
        return cdf

    def _pick_start_second(self) -> float:
        """Second-of-day for a session start (diurnal when configured)."""
        if self._hour_cdf is None:
            return float(self._rng.uniform(0.0, SECONDS_PER_DAY - 3600.0))
        hour = int(np.searchsorted(self._hour_cdf, self._rng.random(), side="right"))
        hour = min(hour, 22)  # leave the last hour as spill room
        return hour * 3600.0 + float(self._rng.uniform(0.0, 3600.0))

    # -- walk mechanics ------------------------------------------------------

    def _child_sampler(self, count: int, level: int) -> ZipfSampler:
        """Child-choice sampler: stereotyped shallow, idiosyncratic deep."""
        alpha = (
            self.profile.deep_child_alpha
            if level >= self.profile.deep_level
            else self.profile.child_alpha
        )
        key = (count, alpha)
        sampler = self._child_samplers.get(key)
        if sampler is None:
            sampler = ZipfSampler(count, alpha, self._rng)
            self._child_samplers[key] = sampler
        return sampler

    def _pick_entry(self) -> int:
        rank = self._entry_sampler.sample()
        return self.graph.entry_indices[rank]

    def _pick_jump_target(self) -> int:
        """Mid-session jump target: a hot section page or an entry page."""
        if (
            self._section_sampler is not None
            and self._rng.random() < self.profile.jump_to_sections
        ):
            return self.graph.levels[1][self._section_sampler.sample()]
        return self._pick_entry()

    def _pick_start(self) -> tuple[int, bool]:
        """Session start page; returns (page index, started_at_entry)."""
        if self._rng.random() < self.profile.popular_entry_fraction:
            return self._pick_entry(), True
        return int(self._rng.integers(0, len(self.graph))), False

    def _session_exit_probability(self, start_index: int, at_entry: bool) -> float:
        """Exit weight adjusted for Regularity 2 / its UCB-like violation."""
        weights = self.profile.walk
        total = weights.child + weights.back + weights.jump + weights.exit
        exit_probability = weights.exit / total
        if at_entry:
            rank = self.graph.entry_indices.index(start_index)
            if rank < max(1, len(self.graph.entry_indices) // 4):
                # Longer (boost > 1) or shorter (boost < 1) sessions from
                # top-quartile entries.
                exit_probability /= self.profile.popular_entry_length_boost
        else:
            # Minority sessions from unpopular starts stay short.
            exit_probability = min(1.0, exit_probability * 1.5)
        return min(0.95, exit_probability)

    def walk_session(self) -> list[int]:
        """Generate one session's page-index path."""
        profile = self.profile
        weights = profile.walk
        start, at_entry = self._pick_start()
        exit_probability = self._session_exit_probability(start, at_entry)
        remaining = weights.child + weights.back + weights.jump
        path = [start]
        current = start
        while len(path) < profile.max_session_clicks:
            if self._rng.random() < exit_probability:
                break
            page = self.graph.pages[current]
            # Renormalise the non-exit actions for feasibility at this page.
            child_weight = weights.child if page.children else 0.0
            back_weight = weights.back if page.parent >= 0 else 0.0
            jump_weight = weights.jump
            total = child_weight + back_weight + jump_weight
            if total <= 0:
                break
            draw = self._rng.random() * total
            if draw < child_weight:
                children = page.children
                current = children[
                    self._child_sampler(len(children), page.level).sample()
                ]
            elif draw < child_weight + back_weight:
                current = page.parent
            else:
                current = self._pick_jump_target()
            path.append(current)
        return path

    # -- record stamping ----------------------------------------------------------

    def _latency_for(self, size: int) -> float:
        profile = self.profile
        base = profile.connection_time_s + size / profile.transfer_rate_bps
        noise = 1.0 + profile.latency_noise * self._rng.standard_normal()
        return max(0.01, base * noise)

    def _think_time(self) -> float:
        profile = self.profile
        gap = self._rng.lognormal(
            math.log(profile.think_time_mean_s), profile.think_time_sigma
        )
        # Stay well inside the session idle timeout so generated sessions
        # survive sessionisation intact.
        return float(min(gap, 15.0 * 60.0))

    def _emit_session(
        self,
        records: list[LogRecord],
        client: str,
        start_time: float,
        path: Sequence[int],
    ) -> None:
        timestamp = start_time
        for page_index in path:
            page: Page = self.graph.pages[page_index]
            records.append(
                LogRecord(
                    client=client,
                    timestamp=timestamp,
                    url=page.url,
                    size=page.size,
                    status=200,
                    method="GET",
                    latency=self._latency_for(page.size),
                )
            )
            image_offset = 0.3
            for image_url, image_size in zip(page.image_urls, page.image_sizes):
                records.append(
                    LogRecord(
                        client=client,
                        timestamp=timestamp + image_offset,
                        url=image_url,
                        size=image_size,
                        status=200,
                        method="GET",
                        latency=self._latency_for(image_size),
                    )
                )
                image_offset += 0.4
            if self._rng.random() < self.profile.error_rate:
                records.append(
                    LogRecord(
                        client=client,
                        timestamp=timestamp + image_offset,
                        url=page.url.rstrip("/") + "/missing.html",
                        size=0,
                        status=404,
                        method="GET",
                    )
                )
            timestamp += self._think_time()

    # -- public API ------------------------------------------------------------------

    def _client_rates(self) -> list[tuple[str, float]]:
        return [
            (f"browser-{i:04d}", self.profile.browser_sessions_per_day)
            for i in range(self._browsers)
        ] + [
            (f"proxy-{i:02d}", self.profile.proxy_sessions_per_day)
            for i in range(self._proxies)
        ]

    def generate_records(self, days: int) -> list[LogRecord]:
        """Generate ``days`` days of raw log records, time-ordered."""
        if days < 1:
            raise ReproError(f"days must be >= 1, got {days}")
        records: list[LogRecord] = []
        clients = self._client_rates()
        for day in range(days):
            day_start = day * SECONDS_PER_DAY
            for client, rate in clients:
                for _ in range(int(self._rng.poisson(rate))):
                    start = day_start + self._pick_start_second()
                    self._emit_session(records, client, start, self.walk_session())
        records.sort(key=lambda r: (r.timestamp, r.client, r.url))
        return records

    def generate_to_columnar(self, days: int, path: str) -> int:
        """Stream ``days`` days straight into a columnar trace file.

        Draws sessions in the exact RNG order of :meth:`generate_records`
        (same seed → a file holding the identical record stream) but never
        holds more than about two days of records as objects: sessions
        start within their day, so once day ``d`` is generated every
        record stamped before midnight of day ``d+1`` is final and can be
        sorted and flushed into the writer's compact column buffers.
        Returns the number of records written.
        """
        from repro.trace.columnar import ColumnarWriter

        if days < 1:
            raise ReproError(f"days must be >= 1, got {days}")
        clients = self._client_rates()
        sort_key = lambda r: (r.timestamp, r.client, r.url)  # noqa: E731
        with ColumnarWriter(path) as writer:
            pending: list[LogRecord] = []
            for day in range(days):
                day_start = day * SECONDS_PER_DAY
                for client, rate in clients:
                    for _ in range(int(self._rng.poisson(rate))):
                        start = day_start + self._pick_start_second()
                        self._emit_session(
                            pending, client, start, self.walk_session()
                        )
                # Everything before the next day's midnight is final:
                # future sessions start at or after it, and records only
                # ever run forward in time.  Sorting the pending buffer
                # and flushing that prefix emits the globally sorted
                # stream one watermark at a time.
                watermark = (day + 1) * SECONDS_PER_DAY
                pending.sort(key=sort_key)
                cut = 0
                while cut < len(pending) and pending[cut].timestamp < watermark:
                    cut += 1
                writer.extend(pending[:cut])
                del pending[:cut]
            writer.extend(pending)
            return writer.close()

    def generate(self, days: int) -> Trace:
        """Generate a ready :class:`~repro.trace.dataset.Trace`."""
        return Trace(self.generate_records(days), name=self.profile.name)


def generate_trace(
    profile: TraceProfile | str,
    *,
    days: int = 7,
    seed: int = 0,
    scale: float = 1.0,
) -> Trace:
    """One-call API: generate a trace for a profile.

    >>> trace = generate_trace("nasa-like", days=3, seed=7, scale=0.3)
    >>> trace.num_days
    3
    """
    return TraceGenerator(profile, seed=seed, scale=scale).generate(days)
