"""Document-size model: lognormal body with a bounded Pareto tail.

Measured Web file sizes (Barford & Crovella and the NASA/UCB logs alike)
show a lognormal body with a heavy Pareto tail.  HTML documents are drawn
small, images smaller on average, and a small fraction of documents land in
the tail — these are the files the paper's prefetch-size thresholds (4 KB /
10 KB / 30 KB / 100 KB) discriminate on, so the mix around those cut
points matters for reproducing the traffic-increment curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SizeModel:
    """Parameters of the size distribution for one document class.

    ``lognormal(mean_log, sigma_log)`` bytes with probability
    ``1 - tail_probability``, otherwise a Pareto tail starting at
    ``tail_scale_bytes`` with index ``tail_alpha``; all draws clipped to
    ``[min_bytes, max_bytes]``.
    """

    mean_log: float = 8.5  # e^8.5 ≈ 4.9 KB median
    sigma_log: float = 1.0
    tail_probability: float = 0.05
    tail_scale_bytes: float = 30_000.0
    tail_alpha: float = 1.3
    min_bytes: int = 120
    max_bytes: int = 2_000_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.tail_probability <= 1.0:
            raise ValueError(f"tail_probability out of [0,1]: {self.tail_probability}")
        if self.min_bytes < 1 or self.max_bytes < self.min_bytes:
            raise ValueError(
                f"bad size bounds: [{self.min_bytes}, {self.max_bytes}]"
            )

    def draw(self, rng: np.random.Generator) -> int:
        """One document size in bytes."""
        if rng.random() < self.tail_probability:
            size = self.tail_scale_bytes * (1.0 + rng.pareto(self.tail_alpha))
        else:
            size = rng.lognormal(self.mean_log, self.sigma_log)
        return int(min(self.max_bytes, max(self.min_bytes, size)))

    def draw_many(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` document sizes, vectorised."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        body = rng.lognormal(self.mean_log, self.sigma_log, size=count)
        tail = self.tail_scale_bytes * (1.0 + rng.pareto(self.tail_alpha, size=count))
        use_tail = rng.random(count) < self.tail_probability
        sizes = np.where(use_tail, tail, body)
        return np.clip(sizes, self.min_bytes, self.max_bytes).astype(np.int64)


#: Default model for HTML documents (median ≈ 5 KB).
HTML_SIZES = SizeModel()

#: Light hub/navigation pages (entries and sections): a few KB, no tail.
#: Hub bundles stay below every prefetch-size threshold the paper uses.
HUB_SIZES = SizeModel(
    mean_log=8.2,
    sigma_log=0.5,
    tail_probability=0.0,
    min_bytes=500,
    max_bytes=15_000,
)

#: Heavy content pages (deep documents, image-rich): median ≈ 18 KB with a
#: pronounced Pareto tail.  These are the documents the 30 KB / 100 KB
#: prefetch-size thresholds discriminate on.
CONTENT_SIZES = SizeModel(
    mean_log=9.8,
    sigma_log=0.8,
    tail_probability=0.15,
    tail_scale_bytes=60_000.0,
    tail_alpha=1.2,
    min_bytes=2_000,
    max_bytes=400_000,
)

#: Default model for embedded images (median ≈ 2 KB, shorter tail).
IMAGE_SIZES = SizeModel(
    mean_log=7.6,
    sigma_log=0.9,
    tail_probability=0.03,
    tail_scale_bytes=20_000.0,
    tail_alpha=1.5,
    min_bytes=60,
    max_bytes=500_000,
)
