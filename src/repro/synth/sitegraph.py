"""The synthetic website: a popularity-layered page hierarchy.

Real server logs reflect the hierarchical structure of the site behind
them; the paper explicitly attributes unused PPM paths to "the hierarchical
structure of Web pages".  :class:`SiteGraph` builds a tree of pages —
entry pages at level 0, section pages below, content leaves at the bottom —
where surfing walks naturally descend from popular to unpopular documents
(Regularity 3).  Each HTML page carries its embedded images and a size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.synth.sizes import HTML_SIZES, IMAGE_SIZES, SizeModel


@dataclass(frozen=True)
class Page:
    """One HTML page of the synthetic site.

    Attributes
    ----------
    url:
        Site-relative path, e.g. ``/s0/s0-3/p7.html``.
    level:
        Depth in the hierarchy; 0 for entry pages.
    size:
        HTML body size in bytes.
    image_urls / image_sizes:
        The page's embedded images (parallel tuples).
    children:
        Indices (into :attr:`SiteGraph.pages`) of linked sub-pages.
    parent:
        Index of the parent page; -1 for entry pages.
    """

    url: str
    level: int
    size: int
    image_urls: tuple[str, ...]
    image_sizes: tuple[int, ...]
    children: tuple[int, ...]
    parent: int

    @property
    def total_bytes(self) -> int:
        """Page bytes including embedded images."""
        return self.size + sum(self.image_sizes)


@dataclass(frozen=True)
class SiteGraphSpec:
    """Shape of the synthetic site.

    ``branching[i]`` is the number of children each level-``i`` page gets;
    the tree therefore has ``len(branching) + 1`` levels.

    ``level_sizes`` / ``level_images`` optionally override the size model
    and mean image count per hierarchy level (the last entry applies to all
    deeper levels).  Real sites have light hub pages at the top and heavy
    content pages at the bottom; the paper's prefetch-size thresholds
    (30 KB for PB-PPM, 100 KB for the baselines) discriminate exactly on
    that weight difference.
    """

    entry_pages: int = 12
    branching: tuple[int, ...] = (5, 5, 3)
    images_per_page_mean: float = 1.5
    images_max: int = 6
    html_sizes: SizeModel = field(default_factory=lambda: HTML_SIZES)
    image_sizes: SizeModel = field(default_factory=lambda: IMAGE_SIZES)
    level_sizes: tuple[SizeModel, ...] | None = None
    level_images: tuple[float, ...] | None = None

    def size_model_for_level(self, level: int) -> SizeModel:
        """The HTML size model used at a hierarchy level."""
        if self.level_sizes:
            return self.level_sizes[min(level, len(self.level_sizes) - 1)]
        return self.html_sizes

    def images_mean_for_level(self, level: int) -> float:
        """Mean embedded-image count at a hierarchy level."""
        if self.level_images:
            return self.level_images[min(level, len(self.level_images) - 1)]
        return self.images_per_page_mean

    def __post_init__(self) -> None:
        if self.entry_pages < 1:
            raise ValueError(f"entry_pages must be >= 1, got {self.entry_pages}")
        if any(b < 1 for b in self.branching):
            raise ValueError(f"branching factors must be >= 1: {self.branching}")
        if self.images_per_page_mean < 0 or self.images_max < 0:
            raise ValueError("image parameters must be >= 0")

    @property
    def levels(self) -> int:
        return len(self.branching) + 1

    @property
    def total_pages(self) -> int:
        total = self.entry_pages
        layer = self.entry_pages
        for factor in self.branching:
            layer *= factor
            total += layer
        return total


class SiteGraph:
    """The generated page tree.

    Pages are stored flat in :attr:`pages`; levels index into it via
    :attr:`levels` for fast sampling by depth.
    """

    def __init__(self, pages: Sequence[Page]) -> None:
        if not pages:
            raise ValueError("a site graph needs at least one page")
        self.pages: tuple[Page, ...] = tuple(pages)
        depth = max(p.level for p in pages)
        self.levels: tuple[tuple[int, ...], ...] = tuple(
            tuple(i for i, p in enumerate(pages) if p.level == level)
            for level in range(depth + 1)
        )
        self._by_url = {page.url: index for index, page in enumerate(pages)}

    @classmethod
    def build(cls, spec: SiteGraphSpec, rng: np.random.Generator) -> "SiteGraph":
        """Materialise the tree described by ``spec``.

        URLs encode the hierarchy (``/e3/``, ``/e3/s1/``,
        ``/e3/s1/p0.html``, ...) so generated logs look like real site
        paths; entry pages use directory URLs, as site front doors do.
        """
        pages: list[Page] = []

        def make_images(
            url_stem: str, level: int
        ) -> tuple[tuple[str, ...], tuple[int, ...]]:
            count = min(
                spec.images_max, int(rng.poisson(spec.images_mean_for_level(level)))
            )
            urls = tuple(f"{url_stem}_img{i}.gif" for i in range(count))
            sizes = tuple(int(spec.image_sizes.draw(rng)) for _ in range(count))
            return urls, sizes

        # Build level by level, parents before children.
        frontier: list[int] = []
        for entry in range(spec.entry_pages):
            url = f"/e{entry}/"
            image_urls, image_sizes = make_images(f"/e{entry}/index", 0)
            pages.append(
                Page(
                    url=url,
                    level=0,
                    size=spec.size_model_for_level(0).draw(rng),
                    image_urls=image_urls,
                    image_sizes=image_sizes,
                    children=(),
                    parent=-1,
                )
            )
            frontier.append(len(pages) - 1)

        for level, factor in enumerate(spec.branching, start=1):
            next_frontier: list[int] = []
            for parent_index in frontier:
                parent = pages[parent_index]
                child_indices: list[int] = []
                stem = parent.url.rstrip("/")
                for child in range(factor):
                    is_leaf = level == len(spec.branching)
                    url = (
                        f"{stem}/p{child}.html" if is_leaf else f"{stem}/s{child}/"
                    )
                    image_urls, image_sizes = make_images(
                        f"{stem}/l{level}c{child}", level
                    )
                    pages.append(
                        Page(
                            url=url,
                            level=level,
                            size=spec.size_model_for_level(level).draw(rng),
                            image_urls=image_urls,
                            image_sizes=image_sizes,
                            children=(),
                            parent=parent_index,
                        )
                    )
                    child_indices.append(len(pages) - 1)
                    next_frontier.append(len(pages) - 1)
                pages[parent_index] = Page(
                    url=parent.url,
                    level=parent.level,
                    size=parent.size,
                    image_urls=parent.image_urls,
                    image_sizes=parent.image_sizes,
                    children=tuple(child_indices),
                    parent=parent.parent,
                )
            frontier = next_frontier

        return cls(pages)

    # -- queries --------------------------------------------------------------

    def index_of(self, url: str) -> int:
        """Index of the page with the given URL (KeyError when absent)."""
        return self._by_url[url]

    @property
    def entry_indices(self) -> tuple[int, ...]:
        """Indices of the level-0 entry pages."""
        return self.levels[0]

    @property
    def depth(self) -> int:
        """Number of levels in the hierarchy."""
        return len(self.levels)

    def __len__(self) -> int:
        return len(self.pages)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"SiteGraph(pages={len(self.pages)}, depth={self.depth})"
