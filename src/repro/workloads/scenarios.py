"""The five built-in scenarios, each one registered workload class.

Each scenario is a thin subclass of
:class:`~repro.workloads.base.SessionStreamWorkload` overriding the
time-dependent hooks; all the heavy machinery (heap merge, lazy walks,
samplers) lives in the base class.  The point of the set is *coverage of
the non-stationarity axes* the prediction models can fail on:

========== =============================================================
stationary the control: constant Poisson rate, fixed Zipf popularity
diurnal    rate non-stationarity only — day/night cosine arrival cycle
flashcrowd burst non-stationarity — periodic spikes focused on one page
churn      popularity non-stationarity — Zipf ranks rotate over time,
           so what the model learned in training drifts away under it
crawler    adversarial clients — sequential full-site scans that ignore
           popularity and bloat context tries with never-repeating paths
========== =============================================================
"""

from __future__ import annotations

import math

from repro.errors import WorkloadError
from repro.workloads.base import SessionStreamWorkload
from repro.workloads.registry import register_workload


@register_workload
class StationaryWorkload(SessionStreamWorkload):
    """Constant-rate Poisson sessions over a fixed Zipf(α) popularity.

    The base engine unchanged — the baseline every other scenario is
    compared against.
    """

    name = "stationary"


@register_workload
class DiurnalWorkload(SessionStreamWorkload):
    """Day/night arrival cycle: a cosine rate profile peaking mid-afternoon.

    ``amplitude`` in [0, 1) scales the swing (0.8 → the overnight trough
    runs at 20% of the peak rate); ``period_s`` and ``peak_s`` place the
    cycle.  Popularity itself stays stationary.
    """

    name = "diurnal"

    def __init__(
        self,
        *,
        amplitude: float = 0.8,
        period_s: float = 86_400.0,
        peak_s: float = 15.0 * 3600.0,
        **base: object,
    ) -> None:
        super().__init__(**base)  # type: ignore[arg-type]
        if not 0.0 <= amplitude < 1.0:
            raise WorkloadError(f"amplitude out of [0, 1): {amplitude}")
        if period_s <= 0:
            raise WorkloadError(f"period_s must be > 0, got {period_s}")
        self.amplitude = amplitude
        self.period_s = period_s
        self.peak_s = peak_s

    def rate_multiplier(self, t: float) -> float:
        phase = 2.0 * math.pi * (t - self.peak_s) / self.period_s
        return 1.0 + self.amplitude * math.cos(phase)


@register_workload
class FlashCrowdWorkload(SessionStreamWorkload):
    """Periodic flash crowds: rate spikes focused on one entry page.

    Every ``repeat_s`` seconds, starting at ``spike_start_s``, the
    arrival rate multiplies by ``spike_factor`` for ``spike_duration_s``
    and a fraction ``crowd_bias`` of arriving sessions heads straight
    for the spike's target entry page.  Each spike targets the *next*
    entry page in rotation, so successive crowds are topic shifts, not
    reinforcements of the same hot page.
    """

    name = "flashcrowd"

    def __init__(
        self,
        *,
        spike_start_s: float = 600.0,
        spike_duration_s: float = 300.0,
        spike_factor: float = 8.0,
        crowd_bias: float = 0.8,
        repeat_s: float = 1_200.0,
        **base: object,
    ) -> None:
        super().__init__(**base)  # type: ignore[arg-type]
        if spike_duration_s <= 0 or repeat_s <= 0:
            raise WorkloadError("spike_duration_s and repeat_s must be > 0")
        if spike_duration_s >= repeat_s:
            raise WorkloadError(
                "spike_duration_s must be shorter than repeat_s"
            )
        if spike_factor < 1.0:
            raise WorkloadError(f"spike_factor must be >= 1, got {spike_factor}")
        if not 0.0 <= crowd_bias <= 1.0:
            raise WorkloadError(f"crowd_bias out of [0, 1]: {crowd_bias}")
        self.spike_start_s = spike_start_s
        self.spike_duration_s = spike_duration_s
        self.spike_factor = spike_factor
        self.crowd_bias = crowd_bias
        self.repeat_s = repeat_s

    def _spike_number(self, t: float) -> int | None:
        """Index of the spike active at ``t``, or None outside spikes."""
        since = t - self.spike_start_s
        if since < 0:
            return None
        number, offset = divmod(since, self.repeat_s)
        if offset < self.spike_duration_s:
            return int(number)
        return None

    def rate_multiplier(self, t: float) -> float:
        return self.spike_factor if self._spike_number(t) is not None else 1.0

    def crowd_entry_rank(self, t: float, u: float) -> int | None:
        number = self._spike_number(t)
        if number is not None and u < self.crowd_bias:
            return number
        return None


@register_workload
class ChurnWorkload(SessionStreamWorkload):
    """Content churn / topic drift: the Zipf rank mapping rotates.

    Every ``rotate_interval_s`` the popularity ranking shifts by
    ``rotate_step`` positions (rank 0 becomes rank ``rotate_step``, and
    so on, modulo the page count), for entry pages and section-jump
    targets alike.  The popularity *distribution* is unchanged at every
    instant — only *which* pages hold the top ranks drifts, which is
    exactly the failure mode for a model trained on a frozen prefix.
    """

    name = "churn"

    def __init__(
        self,
        *,
        rotate_interval_s: float = 900.0,
        rotate_step: int = 1,
        **base: object,
    ) -> None:
        super().__init__(**base)  # type: ignore[arg-type]
        if rotate_interval_s <= 0:
            raise WorkloadError(
                f"rotate_interval_s must be > 0, got {rotate_interval_s}"
            )
        if rotate_step < 1:
            raise WorkloadError(f"rotate_step must be >= 1, got {rotate_step}")
        self.rotate_interval_s = rotate_interval_s
        self.rotate_step = rotate_step

    def entry_rank_at(self, t: float, rank: int, n_entries: int) -> int:
        turns = int(t / self.rotate_interval_s)
        return (rank + turns * self.rotate_step) % n_entries


@register_workload
class CrawlerWorkload(SessionStreamWorkload):
    """Normal traffic plus adversarial crawlers scanning the whole site.

    The crawler clients fetch every URL in index order at a steady rate,
    never repeating a popular path — worst-case input for
    popularity-ranked models and for trie growth.  Scans arrive in
    bounded visits (``crawl_visit_pages`` fetches, then a cooldown), the
    way real bots burst.  The user traffic underneath is the stationary
    scenario, so any metric delta against ``stationary`` is attributable
    to the crawlers alone.
    """

    name = "crawler"

    def __init__(
        self,
        *,
        crawlers: int = 4,
        crawl_rate_per_s: float = 4.0,
        **base: object,
    ) -> None:
        super().__init__(  # type: ignore[arg-type]
            crawlers=crawlers, crawl_rate_per_s=crawl_rate_per_s, **base
        )
