"""The by-name workload registry.

Mirrors the profile registry in :mod:`repro.synth.profiles` — flat dict,
sorted listing, and the shared
:func:`~repro.errors.unknown_name_message` convention for lookup
failures — but registers *classes* rather than frozen parameter bundles,
because a workload's parameters are chosen at instantiation time
(``repro generate --workload flashcrowd --param spike_factor=12``).

Each workload declares its parameters simply by accepting them as
keyword arguments with defaults; :func:`workload_parameters` introspects
the signature so the CLI (``repro workloads``) and the grid spec loader
can list and validate them without a parallel schema.
"""

from __future__ import annotations

import inspect

from repro.errors import WorkloadError, unknown_name_message
from repro.workloads.base import Workload

_WORKLOADS: dict[str, type[Workload]] = {}


def register_workload(cls: type[Workload]) -> type[Workload]:
    """Class decorator adding a workload to the registry by its ``name``."""
    if not cls.name:
        raise WorkloadError(f"workload class {cls.__name__} has no name")
    if cls.name in _WORKLOADS:
        raise WorkloadError(f"workload {cls.name!r} registered twice")
    _WORKLOADS[cls.name] = cls
    return cls


def available_workloads() -> list[str]:
    """Names of the registered workloads, sorted."""
    return sorted(_WORKLOADS)


def workload_by_name(name: str) -> type[Workload]:
    """Look up a workload class, failing with the registry-wide message."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            unknown_name_message("workload", name, available_workloads())
        ) from None


def workload_parameters(name: str) -> dict[str, object]:
    """Declared parameters of a workload: ``{name: default}``.

    Every constructor keyword with a default is a declared parameter;
    ``seed`` and ``scale`` are listed too since they are part of the
    reproducibility contract.
    """
    cls = workload_by_name(name)
    declared: dict[str, object] = {}
    for klass in reversed(cls.__mro__):
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        for parameter in inspect.signature(init).parameters.values():
            if parameter.default is not inspect.Parameter.empty:
                declared[parameter.name] = parameter.default
    return declared


def create_workload(name: str, **parameters: object) -> Workload:
    """Instantiate a registered workload, validating parameter names.

    Unknown parameters fail with the same helpful shape as unknown
    workload names, listing (and fuzzy-matching against) the declared
    parameters of *this* workload.
    """
    cls = workload_by_name(name)
    declared = workload_parameters(name)
    for key in parameters:
        if key not in declared:
            raise WorkloadError(
                unknown_name_message(
                    f"parameter of workload {name!r}", key, list(declared)
                )
            )
    return cls(**parameters)  # type: ignore[arg-type]
