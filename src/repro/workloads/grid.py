"""The declarative scenario grid: scenario × model × pruning, one tree.

An icarus-``config.py``-style experiment description: a plain dict (or
JSON file) names the scenarios to generate, the models to fit and the
pruning settings to sweep, and :func:`run_grid` evaluates every cell
through the existing trace/model/parallel planes, emitting one
comparable results tree::

    {"spec": {...},
     "scenarios": {
       "flashcrowd": {
         "generation": {"events": ..., "events_per_s": ..., ...},
         "models": {"pb": {"hit_ratio": ..., "traffic_increment": ...,
                           "node_count": ..., ...}, ...},
         "serving": {"requests_per_s": ..., ...}}}}          # optional

Each scenario streams through the columnar bridge to a temporary
``.rpt`` and is loaded back as a :class:`~repro.trace.dataset.Trace` —
the same end-to-end path ``repro generate`` users take — then split at a
time quantile (``train_fraction``), fitted, and replayed through
:class:`~repro.parallel.ParallelPrefetchSimulator`.

Grid specs validate against :data:`SPEC_KEYS`; unknown keys fail with
the registry-wide error convention, so a typo in a spec file reads the
same as a typo in ``--workload``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Mapping

from repro.core.extras import FirstOrderMarkov, TopNPush
from repro.core.lrs import LRSPPM
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.core.standard import StandardPPM
from repro.errors import WorkloadError, unknown_name_message
from repro.parallel import ParallelPrefetchSimulator
from repro.sampling.sampler import ClientSampler
from repro.sim.config import SimulationConfig
from repro.sim.latency import LatencyModel
from repro.trace.dataset import Trace, TrainTestSplit
from repro.workloads.bridge import stream_to_columnar
from repro.workloads.registry import create_workload, workload_by_name

#: Keys a grid spec may carry (all optional; defaults below).
SPEC_KEYS = (
    "name",
    "seed",
    "events",
    "train_fraction",
    "scenarios",
    "models",
    "pruning",
    "serve",
    "sample_rate",
    "sample_salt",
)

#: Model keys the grid can sweep, mirroring the lab's registry.
MODEL_KEYS = (
    "standard",
    "standard3",
    "lrs",
    "pb",
    "pb-unpruned",
    "markov1",
    "top10",
)

#: The default grid: all five built-in scenarios against the paper's
#: protagonist (PB-PPM) and its main baseline, no pruning sweep.  Small
#: enough to run in seconds; benchmarks and CI scale ``events`` up via
#: :func:`run_grid`'s ``events`` override.
DEFAULT_GRID: dict = {
    "name": "default",
    "seed": 7,
    "events": 20_000,
    "train_fraction": 0.7,
    "scenarios": [
        {"workload": "stationary"},
        {"workload": "diurnal"},
        {"workload": "flashcrowd"},
        {"workload": "churn"},
        {"workload": "crawler"},
    ],
    "models": ["pb", "standard"],
    "pruning": [None],
    "serve": None,
    "sample_rate": None,
    "sample_salt": 0,
}


def load_grid_spec(path: str) -> dict:
    """Load and validate a JSON grid spec file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise WorkloadError(f"cannot load grid spec {path!r}: {exc}") from exc
    return validate_grid_spec(spec)


def validate_grid_spec(spec: Mapping) -> dict:
    """Check a grid spec's shape; returns it merged over the defaults."""
    if not isinstance(spec, Mapping):
        raise WorkloadError(
            f"grid spec must be a mapping, got {type(spec).__name__}"
        )
    for key in spec:
        if key not in SPEC_KEYS:
            raise WorkloadError(
                unknown_name_message("grid spec key", str(key), SPEC_KEYS)
            )
    merged = {**DEFAULT_GRID, **spec}
    if not 0.0 < float(merged["train_fraction"]) < 1.0:
        raise WorkloadError(
            f"train_fraction out of (0,1): {merged['train_fraction']}"
        )
    if int(merged["events"]) <= 0:
        raise WorkloadError(f"events must be > 0, got {merged['events']}")
    if not merged["scenarios"]:
        raise WorkloadError("grid spec names no scenarios")
    labels = set()
    for scenario in merged["scenarios"]:
        if not isinstance(scenario, Mapping) or "workload" not in scenario:
            raise WorkloadError(
                f"each scenario needs a 'workload' key: {scenario!r}"
            )
        workload_by_name(str(scenario["workload"]))  # fail fast, did-you-mean
        label = str(scenario.get("label", scenario["workload"]))
        if label in labels:
            raise WorkloadError(f"duplicate scenario label {label!r}")
        labels.add(label)
    for model_key in merged["models"]:
        if model_key not in MODEL_KEYS:
            raise WorkloadError(
                unknown_name_message("model", str(model_key), MODEL_KEYS)
            )
    if merged["sample_rate"] is not None:
        ClientSampler(merged["sample_rate"], salt=int(merged["sample_salt"] or 0))
    return merged


def fraction_cut(trace: Trace, train_fraction: float) -> float:
    """The timestamp below which ``train_fraction`` of page views fall."""
    requests = trace.requests
    cut_index = min(
        len(requests) - 1, max(0, int(len(requests) * train_fraction))
    )
    return requests[cut_index].timestamp


def fraction_split(trace: Trace, train_fraction: float) -> TrainTestSplit:
    """Split a trace at the ``train_fraction`` time quantile.

    Workload streams span arbitrary durations, so the lab's day-based
    split does not apply; the cut is the timestamp below which
    ``train_fraction`` of the requests fall.  Sessions *starting* at or
    before the cut train the models (a session straddling the cut leaks
    its tail into training — accepted, as real log splits do the same).
    """
    requests = trace.requests
    cut = fraction_cut(trace, train_fraction)
    train_requests = tuple(r for r in requests if r.timestamp <= cut)
    test_requests = tuple(r for r in requests if r.timestamp > cut)
    if not train_requests or not test_requests:
        raise WorkloadError(
            "degenerate train/test split; increase events or adjust "
            "train_fraction"
        )
    train_sessions = tuple(
        s for s in trace.sessions if s.requests[0].timestamp <= cut
    )
    return TrainTestSplit(
        train_days=(),
        test_days=(),
        train_sessions=train_sessions,
        test_sessions=tuple(
            s for s in trace.sessions if s.requests[0].timestamp > cut
        ),
        train_requests=train_requests,
        test_requests=test_requests,
    )


def build_model(key: str, popularity: PopularityTable, prune):
    """One fitted-model factory, honouring a pruning override for PB."""
    if key == "pb":
        if prune is None:
            return PopularityBasedPPM(popularity)
        return PopularityBasedPPM(
            popularity, prune_relative_probability=float(prune)
        )
    if key == "pb-unpruned":
        return PopularityBasedPPM(
            popularity,
            prune_relative_probability=None,
            prune_absolute_count=None,
        )
    if key == "standard":
        return StandardPPM()
    if key == "standard3":
        return StandardPPM.order_3()
    if key == "lrs":
        return LRSPPM()
    if key == "markov1":
        return FirstOrderMarkov()
    if key == "top10":
        return TopNPush(n=10)
    raise WorkloadError(unknown_name_message("model", key, MODEL_KEYS))


def _cell_label(model_key: str, prune) -> str:
    return model_key if prune is None else f"{model_key}@rel={prune}"


def _serving_metrics(scenario: Mapping, serve: Mapping, seed: int) -> dict:
    """Drive a spawned serving cluster with the live workload stream."""
    from repro.serve.loadgen import run_loadgen

    report = run_loadgen(
        workload=str(scenario["workload"]),
        workload_params=dict(scenario.get("params", {})),
        seed=seed,
        events=int(serve.get("events", 400)),
        train_events=int(serve.get("train_events", 1_500)),
        connections=int(serve.get("connections", 2)),
        spawn=True,
        workers=int(serve.get("workers", 2)),
    )
    return {
        "requests": report["requests_total"],
        "failed": report["failed_requests"],
        "requests_per_s": report["requests_per_s"],
        "predictions_per_s": report["predictions_per_s"],
        "latency_p50_ms": report["latency_ms"]["p50"],
        "latency_p99_ms": report["latency_ms"]["p99"],
    }


def run_grid(
    spec: Mapping | None = None,
    *,
    events: int | None = None,
    workers: int | None = None,
    out: str | None = None,
    progress=None,
    sample_rate: float | None = None,
    sample_salt: int | None = None,
) -> dict:
    """Evaluate a grid spec; returns (and optionally writes) the tree.

    Parameters
    ----------
    spec:
        A validated or raw grid spec; None runs :data:`DEFAULT_GRID`.
    events:
        Override of the spec's per-scenario event count (benchmarks and
        CI bound their grids this way).
    workers:
        Replay worker processes per simulator run (None → lab default).
    out:
        Path to write the results tree to as JSON.
    progress:
        Optional callable receiving one line per completed stage.
    sample_rate / sample_salt:
        Override of the spec's client-hash sampling.  Sampling is
        applied while the scenario streams to its temporary ``.rpt``,
        so a huge-trace cell never materialises the full window — the
        trace, split, model and replay are all sample-sized.  Count
        metrics are additionally reported scaled by ``1/rate``.
    """
    from repro.experiments.lab import default_workers

    spec = validate_grid_spec(spec if spec is not None else DEFAULT_GRID)
    if events is not None:
        if events <= 0:
            raise WorkloadError(f"events must be > 0, got {events}")
        spec["events"] = events
    if sample_rate is not None:
        spec["sample_rate"] = float(sample_rate)
    if sample_salt is not None:
        spec["sample_salt"] = int(sample_salt)
    sampler = None
    if spec["sample_rate"] is not None and float(spec["sample_rate"]) < 1.0:
        sampler = ClientSampler(
            float(spec["sample_rate"]), salt=int(spec["sample_salt"] or 0)
        )
    if workers is None:
        workers = default_workers()
    say = progress if progress is not None else (lambda line: None)
    seed = int(spec["seed"])
    tree: dict = {
        "spec": {key: spec[key] for key in SPEC_KEYS},
        "scenarios": {},
    }
    for scenario in spec["scenarios"]:
        label = str(scenario.get("label", scenario["workload"]))
        workload = create_workload(
            str(scenario["workload"]),
            seed=seed,
            **dict(scenario.get("params", {})),
        )
        handle, path = tempfile.mkstemp(suffix=".rpt")
        os.close(handle)
        try:
            start = time.perf_counter()
            written = stream_to_columnar(
                workload, path, events=int(spec["events"]), sample=sampler
            )
            generate_s = time.perf_counter() - start
            trace = Trace.from_columnar_file(path, name=label)
        finally:
            os.unlink(path)
        cut = fraction_cut(trace, float(spec["train_fraction"]))
        split = fraction_split(trace, float(spec["train_fraction"]))
        test_batch = trace.request_batch_after(cut)
        popularity = PopularityTable.from_requests(split.train_requests)
        latency = LatencyModel.fit_requests(split.train_requests)
        url_sizes = trace.url_size_table()
        client_kinds = trace.classify_clients()
        node: dict = {
            "generation": {
                "events": written,
                "events_per_s": written / max(generate_s, 1e-9),
                "clients": len(client_kinds),
                "urls": len(url_sizes),
                "train_requests": len(split.train_requests),
                "test_requests": len(split.test_requests),
            },
            "models": {},
        }
        if sampler is not None:
            node["sampling"] = {
                "rate": sampler.rate,
                "salt": sampler.salt,
                "requested_events": int(spec["events"]),
                "kept_events": written,
                "kept_fraction": written / max(int(spec["events"]), 1),
                "scale": sampler.scale,
            }
        say(f"{label}: generated {written} events")
        for model_key in spec["models"]:
            for prune in spec["pruning"]:
                if prune is not None and model_key != "pb":
                    continue  # pruning only parameterises PB-PPM
                model = build_model(model_key, popularity, prune)
                model.fit(split.train_sessions)
                base = "pb" if model_key.startswith("pb") else model_key
                config = SimulationConfig.for_model(base, workers=workers)
                simulator = ParallelPrefetchSimulator(
                    model, url_sizes, latency, config, popularity=popularity
                )
                result = simulator.run(test_batch, client_kinds=client_kinds)
                cell = _cell_label(model_key, prune)
                node["models"][cell] = {
                    "hit_ratio": result.hit_ratio,
                    "latency_reduction": result.latency_reduction,
                    "traffic_increment": result.traffic_increment,
                    "node_count": result.node_count,
                    "requests": result.requests,
                    "predictions_made": result.predictions_made,
                }
                if sampler is not None:
                    node["models"][cell]["node_count_scaled"] = (
                        result.node_count * sampler.scale
                    )
                say(f"{label}/{cell}: hit_ratio={result.hit_ratio:.3f}")
        if spec["serve"]:
            node["serving"] = _serving_metrics(scenario, spec["serve"], seed)
            say(f"{label}: serving {node['serving']['requests_per_s']:.0f} req/s")
        tree["scenarios"][label] = node
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(tree, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return tree
