"""Streaming workloads: scenario generators, registry, bridges, grid.

The subsystem that takes the repo from replayed day-scale traces to
generated, arbitrarily long, non-stationary request streams:

* :mod:`repro.workloads.base` — the iterator engine (flat RSS at any
  event count);
* :mod:`repro.workloads.scenarios` — the five built-in scenarios
  (``stationary``, ``diurnal``, ``flashcrowd``, ``churn``, ``crawler``);
* :mod:`repro.workloads.registry` — by-name lookup with declared
  parameters;
* :mod:`repro.workloads.bridge` — chunked feeds into the columnar trace
  plane and CLF text, plus bounded in-memory heads;
* :mod:`repro.workloads.grid` — the declarative scenario × model ×
  pruning experiment grid.

Importing this package registers the built-in scenarios.
"""

from repro.workloads import scenarios as _scenarios  # noqa: F401 (registration)
from repro.workloads.base import SessionStreamWorkload, Workload
from repro.workloads.bridge import (
    generation_rate,
    head_trace,
    stream_to_clf,
    stream_to_columnar,
)
from repro.workloads.grid import (
    DEFAULT_GRID,
    load_grid_spec,
    run_grid,
    validate_grid_spec,
)
from repro.workloads.registry import (
    available_workloads,
    create_workload,
    register_workload,
    workload_by_name,
    workload_parameters,
)

__all__ = [
    "DEFAULT_GRID",
    "SessionStreamWorkload",
    "Workload",
    "available_workloads",
    "create_workload",
    "generation_rate",
    "head_trace",
    "load_grid_spec",
    "register_workload",
    "run_grid",
    "stream_to_clf",
    "stream_to_columnar",
    "validate_grid_spec",
    "workload_by_name",
    "workload_parameters",
]
