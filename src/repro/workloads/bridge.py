"""Bridges from iterator workloads into the existing planes.

A workload yields :class:`~repro.trace.record.LogRecord` objects one at
a time; these helpers connect that stream to consumers that were built
for materialised traces, without ever holding the stream in RAM:

* :func:`stream_to_columnar` — chunked feed into
  :class:`~repro.trace.columnar.StreamingColumnarWriter`, so
  ``repro generate --workload flashcrowd --events 10_000_000`` writes a
  ``.rpt`` in bounded memory;
* :func:`stream_to_clf` — the same for Common Log Format text output;
* :func:`head_trace` — materialise only a bounded *head* of the stream
  as a :class:`~repro.trace.dataset.Trace` (for model training before a
  live replay, or for grid cells, where the count is already bounded).
"""

from __future__ import annotations

import itertools
import time
from typing import IO

from repro.errors import WorkloadError
from repro.trace.clf_parser import format_clf_line
from repro.trace.columnar import StreamingColumnarWriter
from repro.trace.dataset import Trace
from repro.workloads.base import Workload


def _checked_count(events: int) -> int:
    if events <= 0:
        raise WorkloadError(f"event count must be > 0, got {events}")
    return events


def stream_to_columnar(
    workload: Workload,
    path: str,
    *,
    events: int,
    flush_events: int = 65_536,
    sample=None,
) -> int:
    """Stream ``events`` records of ``workload`` into a ``.rpt`` file.

    Peak RSS is bounded by the flush chunk plus the workload's live
    state, independent of ``events``; the output is byte-identical for
    every ``flush_events`` value and to a non-streaming write of the
    same stream.  ``sample`` (a
    :class:`repro.sampling.ClientSampler`) drops non-sampled clients
    *before* the writer sees them, so a sampled ``.rpt`` never
    materialises the full window at any stage.  Returns the number of
    records written (the kept count under sampling).
    """
    _checked_count(events)
    stream = workload.events(events)
    if sample is not None:
        stream = sample.sample_records(stream)
    with StreamingColumnarWriter(path, flush_events=flush_events) as writer:
        for record in stream:
            writer.append(record)
    return len(writer)


def stream_to_clf(
    workload: Workload, handle: IO[str], *, events: int, sample=None
) -> int:
    """Stream ``events`` records of ``workload`` as Common Log Format text."""
    _checked_count(events)
    stream = workload.events(events)
    if sample is not None:
        stream = sample.sample_records(stream)
    written = 0
    for record in stream:
        handle.write(format_clf_line(record))
        handle.write("\n")
        written += 1
    return written


def head_trace(
    workload: Workload, events: int, *, name: str | None = None
) -> Trace:
    """Materialise the first ``events`` records as a :class:`Trace`.

    The one place the workload plane intentionally builds an in-memory
    trace — callers pass a *bounded* count (a training head, a grid
    cell), never the full stream.
    """
    _checked_count(events)
    records = list(itertools.islice(workload.events(events), events))
    return Trace(records, name=name or workload.name or "workload")


def generation_rate(workload: Workload, events: int) -> float:
    """Events generated per second, consuming (and discarding) the stream."""
    _checked_count(events)
    start = time.perf_counter()
    emitted = sum(1 for _ in workload.events(events))
    elapsed = time.perf_counter() - start
    return emitted / max(elapsed, 1e-9)
