"""Iterator workloads: request streams generated on the fly, flat in RAM.

Every workload the repo could previously express came from
:mod:`repro.synth` materialising a whole trace in memory — fine for the
paper's day-scale experiments, hopeless for the roadmap's "heavy traffic
from millions of users".  A :class:`Workload` instead *yields* one
:class:`~repro.trace.record.LogRecord` at a time from a discrete-event
loop, so peak RSS is bounded by the live state (open sessions, interned
names — population-sized) and never by the event count.  10⁷ events cost
the same resident memory as 10⁵.

The engine (:class:`SessionStreamWorkload`) reuses the synth plane's
building blocks — :class:`~repro.synth.sitegraph.SiteGraph` for the URL
universe and :class:`~repro.synth.zipf.ZipfSampler` for every popularity
draw — and merges three event sources through one heap:

* **session arrivals**, a Poisson process whose rate subclasses modulate
  over time (diurnal cycles, flash-crowd spikes);
* **session continuations**, lazy click-by-click surfing walks (child /
  back / jump / exit), one tiny heap entry per *open* session;
* **crawler fetches**, adversarial clients scanning the URL space
  sequentially at a fixed rate, ignoring popularity entirely.

Determinism: ``events(count)`` builds its RNG, site graph and samplers
from ``seed`` on every call, so the same ``(workload, seed)`` always
yields the identical stream — whether it is consumed in one pass or in
chunks, by the columnar bridge or by the live load generator
(``tests/workloads/test_determinism`` pins this).

Subclass hooks (all pure functions of time, so they never disturb the
RNG stream): :meth:`rate_multiplier` shapes the arrival rate,
:meth:`entry_rank_at` remaps popularity ranks (content churn / topic
drift), :meth:`crowd_entry_rank` short-circuits entry choice during a
flash crowd.
"""

from __future__ import annotations

import heapq
import math
from typing import ClassVar, Iterator

import numpy as np

from repro import params
from repro.errors import WorkloadError
from repro.synth.profiles import WalkWeights
from repro.synth.sitegraph import SiteGraph, SiteGraphSpec
from repro.synth.zipf import ZipfSampler
from repro.trace.record import LogRecord

#: Heap entry kinds: a user session click vs an adversarial crawler fetch.
_CLICK = 0
_CRAWL = 1

#: Cap on inter-click think times, kept well inside the 30-minute session
#: idle timeout so generated sessions survive sessionisation intact (the
#: same guard :mod:`repro.synth.generator` applies).
_MAX_THINK_S = 15.0 * 60.0


class Workload:
    """Base class every registered workload derives from.

    Subclasses set :attr:`name` (the registry key), accept only keyword
    parameters with defaults in ``__init__`` (the registry introspects
    them as the workload's declared parameters), and implement
    :meth:`events`.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""

    def __init__(self, *, seed: int = 0, scale: float = 1.0) -> None:
        if seed < 0:
            raise WorkloadError(f"seed must be >= 0, got {seed}")
        if scale <= 0:
            raise WorkloadError(f"scale must be > 0, got {scale}")
        self.seed = seed
        self.scale = scale

    def events(self, count: int) -> Iterator[LogRecord]:
        """Yield ``count`` log records in nondecreasing timestamp order."""
        raise NotImplementedError


class SessionStreamWorkload(Workload):
    """The discrete-event session engine behind every built-in scenario.

    Parameters
    ----------
    seed / scale:
        RNG seed and population multiplier.  ``scale`` multiplies both
        the client population and the session arrival rate, so per-client
        load stays constant as the population grows.
    clients:
        Distinct user-client population (before scaling).
    session_rate_per_s:
        Mean session arrivals per second (before scaling and before
        :meth:`rate_multiplier` modulation).
    alpha:
        Zipf skew of entry-page popularity (Regularity 1 strength).
    beta:
        Zipf skew of per-client activity: 0 spreads sessions evenly over
        the population, larger values concentrate traffic on few heavy
        clients (the proxy-like tail of real logs).
    site:
        Shape of the synthetic site supplying the URL universe.
    walk:
        Per-click child / back / jump / exit action weights.
    child_alpha / jump_to_sections / hotset_alpha:
        Walk skew knobs, as in :class:`~repro.synth.profiles.TraceProfile`.
    think_time_mean_s / think_time_sigma:
        Lognormal inter-click gaps.
    max_session_clicks:
        Hard cap on session length.
    client_cooldown_s:
        Minimum quiet time between one client's sessions.  Kept above the
        sessioniser's 30-minute idle timeout (the default, 35 minutes) it
        guarantees a client's consecutive sessions are *recognised* as
        separate sessions downstream.  Session arrivals that draw a
        cooling-down client deterministically probe to the next free
        popularity rank; only when the whole population is busy (genuine
        overload, e.g. inside a flash-crowd spike) does the drawn client
        take a back-to-back session — which then merges downstream, as
        overload traffic really does.  0 disables the separation.
    crawlers / crawl_rate_per_s / crawl_visit_pages:
        Adversarial crawler clients scanning all URLs sequentially at the
        given per-crawler fetch rate; 0 crawlers disables them (the
        default for every scenario except ``crawler``).  A crawler
        fetches ``crawl_visit_pages`` URLs per visit, then pauses
        ``client_cooldown_s`` before resuming where it left off, so one
        crawl shows up as a sequence of bounded sessions rather than a
        single unbounded one.
    """

    name = ""

    def __init__(
        self,
        *,
        seed: int = 0,
        scale: float = 1.0,
        clients: int = 2_000,
        session_rate_per_s: float = 0.5,
        alpha: float = 1.2,
        beta: float = 0.8,
        site: SiteGraphSpec | None = None,
        walk: WalkWeights | None = None,
        child_alpha: float = 1.4,
        jump_to_sections: float = 0.5,
        hotset_alpha: float = 1.0,
        think_time_mean_s: float = 30.0,
        think_time_sigma: float = 1.0,
        max_session_clicks: int = 30,
        client_cooldown_s: float = 2_100.0,
        crawlers: int = 0,
        crawl_rate_per_s: float = 2.0,
        crawl_visit_pages: int = 200,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        if clients < 1:
            raise WorkloadError(f"clients must be >= 1, got {clients}")
        if session_rate_per_s <= 0:
            raise WorkloadError(
                f"session_rate_per_s must be > 0, got {session_rate_per_s}"
            )
        if alpha < 0 or beta < 0 or child_alpha < 0 or hotset_alpha < 0:
            raise WorkloadError("Zipf skews must be >= 0")
        if not 0.0 <= jump_to_sections <= 1.0:
            raise WorkloadError(
                f"jump_to_sections out of [0,1]: {jump_to_sections}"
            )
        if max_session_clicks < 1:
            raise WorkloadError(
                f"max_session_clicks must be >= 1, got {max_session_clicks}"
            )
        if client_cooldown_s < 0:
            raise WorkloadError(
                f"client_cooldown_s must be >= 0, got {client_cooldown_s}"
            )
        if crawlers < 0 or crawl_rate_per_s <= 0:
            raise WorkloadError(
                "crawlers must be >= 0 and crawl_rate_per_s > 0"
            )
        if crawl_visit_pages < 1:
            raise WorkloadError("crawl_visit_pages must be >= 1")
        self.clients = max(1, int(round(clients * scale)))
        self.session_rate_per_s = session_rate_per_s * scale
        self.alpha = alpha
        self.beta = beta
        self.site = site if site is not None else SiteGraphSpec(
            entry_pages=12, branching=(5, 5, 4)
        )
        self.walk = walk if walk is not None else WalkWeights()
        self.child_alpha = child_alpha
        self.jump_to_sections = jump_to_sections
        self.hotset_alpha = hotset_alpha
        self.think_time_mean_s = think_time_mean_s
        self.think_time_sigma = think_time_sigma
        self.max_session_clicks = max_session_clicks
        self.client_cooldown_s = client_cooldown_s
        self.crawlers = crawlers
        self.crawl_rate_per_s = crawl_rate_per_s
        self.crawl_visit_pages = crawl_visit_pages

    # -- time-dependent hooks (pure functions of t, RNG-free) ---------------

    def rate_multiplier(self, t: float) -> float:
        """Session-arrival rate multiplier at time ``t`` (>= 0)."""
        return 1.0

    def entry_rank_at(self, t: float, rank: int, n_entries: int) -> int:
        """Map a drawn popularity rank to an entry rank at time ``t``.

        The identity by default; churn scenarios rotate it so *which*
        pages are popular drifts while the popularity *shape* stays put.
        """
        return rank

    def crowd_entry_rank(self, t: float, u: float) -> int | None:
        """Flash-crowd override: an entry rank, or None for normal choice.

        ``u`` is one uniform variate drawn by the engine either way, so
        enabling or disabling the crowd never shifts the RNG stream of
        everything that follows.
        """
        return None

    # -- the event loop ------------------------------------------------------

    def events(self, count: int) -> Iterator[LogRecord]:
        if count < 0:
            raise WorkloadError(f"event count must be >= 0, got {count}")
        if count == 0:
            return
        rng = np.random.default_rng(self.seed)
        graph = SiteGraph.build(self.site, rng)
        entries = graph.entry_indices
        entry_sampler = ZipfSampler(len(entries), self.alpha, rng)
        client_sampler = ZipfSampler(self.clients, self.beta, rng)
        section_sampler = (
            ZipfSampler(len(graph.levels[1]), self.hotset_alpha, rng)
            if graph.depth > 1 and graph.levels[1]
            else None
        )
        child_samplers: dict[int, ZipfSampler] = {}
        weights = self.walk
        exit_probability = min(
            0.95,
            weights.exit
            / (weights.child + weights.back + weights.jump + weights.exit),
        )
        mean_log = math.log(self.think_time_mean_s)

        def latency_for(size: int) -> float:
            base = (
                params.TRUE_CONNECTION_TIME_S
                + size / params.TRUE_TRANSFER_RATE_BPS
            )
            return max(0.01, base * (1.0 + 0.15 * rng.standard_normal()))

        def record_for(t: float, client: str, page_index: int) -> LogRecord:
            page = graph.pages[page_index]
            return LogRecord(
                client=client,
                timestamp=t,
                url=page.url,
                size=page.size,
                status=200,
                method="GET",
                latency=latency_for(page.size),
            )

        def pick_entry(t: float) -> int:
            crowd = self.crowd_entry_rank(t, float(rng.random()))
            if crowd is not None:
                return entries[crowd % len(entries)]
            rank = self.entry_rank_at(
                t, entry_sampler.sample(), len(entries)
            )
            return entries[rank % len(entries)]

        def next_page(t: float, current: int) -> int | None:
            """One walk step; None ends the session."""
            if rng.random() < exit_probability:
                return None
            page = graph.pages[current]
            child_weight = weights.child if page.children else 0.0
            back_weight = weights.back if page.parent >= 0 else 0.0
            total = child_weight + back_weight + weights.jump
            if total <= 0:
                return None
            draw = rng.random() * total
            if draw < child_weight:
                children = page.children
                sampler = child_samplers.get(len(children))
                if sampler is None:
                    sampler = ZipfSampler(len(children), self.child_alpha, rng)
                    child_samplers[len(children)] = sampler
                return children[sampler.sample()]
            if draw < child_weight + back_weight:
                return page.parent
            if (
                section_sampler is not None
                and rng.random() < self.jump_to_sections
            ):
                rank = self.entry_rank_at(
                    t, section_sampler.sample(), len(graph.levels[1])
                )
                return graph.levels[1][rank % len(graph.levels[1])]
            return pick_entry(t)

        def think_time() -> float:
            gap = rng.lognormal(mean_log, self.think_time_sigma)
            return float(min(max(gap, 0.05), _MAX_THINK_S))

        def arrival_gap(t: float) -> float:
            rate = self.session_rate_per_s * max(
                1e-9, self.rate_multiplier(t)
            )
            return float(rng.exponential(1.0 / rate))

        # Per-client earliest next-session time; RNG-free, so enabling or
        # tuning the cooldown never shifts the random stream.
        busy_until = np.zeros(self.clients, dtype=np.float64)

        def pick_client(t: float) -> int:
            rank = client_sampler.sample()
            if self.client_cooldown_s <= 0:
                return rank
            free = np.nonzero(busy_until <= t)[0]
            if not free.size:
                return rank  # overload: back-to-back session, merges away
            position = int(np.searchsorted(free, rank))
            return int(free[position]) if position < free.size else int(free[0])

        def occupy(cid: int, t: float) -> None:
            if self.client_cooldown_s > 0:
                busy_until[cid] = max(
                    busy_until[cid], t + self.client_cooldown_s
                )

        # Heap of pending emissions: (time, seq, kind, client_id, cursor,
        # clicks).  seq makes ordering total; cursor is a page index for
        # clicks, a scan position for crawler fetches.
        heap: list[tuple[float, int, int, int, int, int]] = []
        seq = 0
        for k in range(self.crawlers):
            heapq.heappush(
                heap,
                (float(rng.exponential(1.0 / self.crawl_rate_per_s)), seq,
                 _CRAWL, k, k % len(graph), 0),
            )
            seq += 1
        next_start = arrival_gap(0.0)
        emitted = 0
        while emitted < count:
            if heap and heap[0][0] <= next_start:
                t, _s, kind, cid, cursor, clicks = heapq.heappop(heap)
                if kind == _CRAWL:
                    yield record_for(t, f"crawler-{cid:02d}", cursor)
                    emitted += 1
                    gap = float(rng.exponential(1.0 / self.crawl_rate_per_s))
                    fetched = clicks + 1
                    if (
                        fetched >= self.crawl_visit_pages
                        and self.client_cooldown_s > 0
                    ):
                        gap += self.client_cooldown_s
                        fetched = 0
                    heapq.heappush(
                        heap,
                        (t + gap, seq, _CRAWL, cid,
                         (cursor + 1) % len(graph), fetched),
                    )
                    seq += 1
                    continue
                yield record_for(t, f"u{cid:06d}", cursor)
                emitted += 1
                occupy(cid, t)
                if clicks + 1 < self.max_session_clicks:
                    following = next_page(t, cursor)
                    if following is not None:
                        gap = think_time()
                        occupy(cid, t + gap)
                        heapq.heappush(
                            heap,
                            (t + gap, seq, _CLICK, cid,
                             following, clicks + 1),
                        )
                        seq += 1
            else:
                cid = pick_client(next_start)
                occupy(cid, next_start)
                heapq.heappush(
                    heap,
                    (next_start, seq, _CLICK, cid,
                     pick_entry(next_start), 0),
                )
                seq += 1
                next_start += arrival_gap(next_start)
