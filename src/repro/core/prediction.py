"""Longest-match prediction over a Markov prediction tree (Section 4.1).

*"A longest matching method is used in both the standard and the LRS-PPM
models, which matches as many previous URLs as possible to make a
prediction."*  Given the URLs a client has clicked so far in its session,
the engine finds the longest context suffix that exists as a root path in
the tree and predicts the children of the matched node whose conditional
probability clears the threshold (0.25 in all the paper's experiments).

PB-PPM adds *special-link* predictions on top: when the current click is a
root, the duplicated popular nodes linked from that root are predicted as
well (:meth:`repro.core.pb.PopularityBasedPPM.predict` wires this in).

The module speaks both tree representations: the classic
:class:`~repro.core.node.TrieNode` forest and the array-backed
:class:`~repro.kernel.compact.CompactTrie` store; the ``*_compact_*``
functions are index-for-node translations of their node twins and return
identical predictions.  :class:`PredictionCursor` adds the incremental
path: instead of rematching the full context on every click, it carries
the previous click's suffix-match states forward and extends each by one
URL, which is what the replay engine uses per simulated request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro import params
from repro.core.node import TrieNode

from repro.kernel.compact import KEY_SHIFT as _KEY_SHIFT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.compact import CompactTrie
    from repro.kernel.predict_table import PredictTable
    from repro.kernel.symbols import SymbolTable


def clears_threshold(
    probability: float,
    threshold: float,
    *,
    epsilon: float = params.PROBABILITY_EPSILON,
) -> bool:
    """Whether a conditional probability qualifies against a threshold.

    Every prediction path — node-based, compact, batch or incremental —
    funnels its threshold comparison through here so a borderline value
    (e.g. an exact 0.25) can never qualify on one path and fail on
    another.  The epsilon admits probabilities within ``epsilon`` *below*
    the threshold; it is far too small to flip any exact ratio of integer
    counts, so the guarded comparison is identical to ``>=`` on the exact
    arithmetic both tree representations perform today.
    """
    return probability + epsilon >= threshold


@dataclass(frozen=True, slots=True)
class Prediction:
    """One predicted URL.

    Attributes
    ----------
    url:
        The URL the model expects the client to access.
    probability:
        Conditional probability the model assigns to the access.
    order:
        Length of the context suffix the prediction was conditioned on
        (0 for special-link predictions, which condition on the root only).
    source:
        ``"context"`` for ordinary longest-match predictions,
        ``"special_link"`` for PB-PPM's popular-node predictions.
    """

    url: str
    probability: float
    order: int
    source: str = "context"


def _prediction_sort_key(prediction: Prediction) -> tuple[float, str]:
    return (-prediction.probability, prediction.url)


# --------------------------------------------------------------------------
# Node-forest matching
# --------------------------------------------------------------------------


def iter_suffix_matches(
    roots: Mapping[str, TrieNode], context: Sequence[str]
) -> "list[tuple[TrieNode, int, list[TrieNode]]]":
    """All full-suffix matches of ``context`` in the tree, longest first.

    Each element is ``(matched_node, suffix_length, nodes_on_match_path)``.
    PPM's escape mechanism consumes these in order: the longest matching
    context that actually yields a prediction wins.
    """
    matches: list[tuple[TrieNode, int, list[TrieNode]]] = []
    for start in range(len(context)):
        suffix = context[start:]
        node = roots.get(suffix[0])
        if node is None:
            continue
        path = [node]
        matched = True
        for url in suffix[1:]:
            nxt = node.child(url)
            if nxt is None:
                matched = False
                break
            node = nxt
            path.append(node)
        if matched:
            matches.append((node, len(suffix), path))
    return matches


def match_longest_suffix(
    roots: Mapping[str, TrieNode], context: Sequence[str]
) -> tuple[TrieNode | None, int, list[TrieNode]]:
    """Find the deepest tree node reachable by a suffix of ``context``.

    Tries the longest suffix first and shortens until a full match exists.
    Returns ``(matched_node, suffix_length, nodes_on_match_path)``; the node
    is None when not even the last click is a root.
    """
    matches = iter_suffix_matches(roots, context)
    if not matches:
        return None, 0, []
    return matches[0]


def predict_from_matches(
    matches: "Sequence[tuple[TrieNode, int, list[TrieNode]]]",
    *,
    threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
    mark_used: bool = True,
    escape: bool = False,
) -> list[Prediction]:
    """Prediction step over precomputed suffix matches (longest first).

    Factored out of :func:`predict_from_context` so the incremental
    cursor, which maintains the match list itself, shares the exact
    qualification, marking and ordering logic of the batch path.
    """
    for node, order, path in matches:
        if node.count == 0:
            if escape:
                continue
            return []
        predictions: list[Prediction] = []
        marked: list[TrieNode] = []
        for url in node.children:
            child = node.children[url]
            probability = child.count / node.count
            if clears_threshold(probability, threshold):
                predictions.append(
                    Prediction(url=url, probability=probability, order=order)
                )
                marked.append(child)
        if not predictions and escape:
            continue
        if mark_used and predictions:
            for visited in path:
                visited.used = True
            for child in marked:
                child.used = True
        predictions.sort(key=_prediction_sort_key)
        return predictions
    return []


def predict_from_context(
    roots: Mapping[str, TrieNode],
    context: Sequence[str],
    *,
    threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
    mark_used: bool = True,
    escape: bool = False,
) -> list[Prediction]:
    """Longest-match prediction shared by all three models.

    Parameters
    ----------
    roots:
        The tree's root nodes keyed by URL.
    context:
        The URLs of the client's current session so far, oldest first.
    threshold:
        Minimum conditional probability for a child to be predicted.
    mark_used:
        When true, the matched path and the predicted children are marked
        used, feeding the Figure-2 path-utilisation metric.
    escape:
        The paper's models predict from the longest matching context only
        (``escape=False``, the default): if nothing at that context clears
        the threshold, no prefetch is issued.  With ``escape=True`` the
        engine instead falls back to the next-shorter matching context
        until some prediction qualifies — the escape mechanism of
        compression-style PPM, offered as an ablation
        (``benchmarks/bench_ablation_escape.py`` measures its effect).

    Returns
    -------
    Predictions sorted by descending probability (ties by URL) so the most
    confident prefetch is issued first.
    """
    if not context:
        return []
    return predict_from_matches(
        iter_suffix_matches(roots, context),
        threshold=threshold,
        mark_used=mark_used,
        escape=escape,
    )


# --------------------------------------------------------------------------
# Compact-store matching (index-for-node twins of the functions above)
# --------------------------------------------------------------------------


def compact_suffix_matches(
    store: "CompactTrie", symbols: "SymbolTable", context: Sequence[str]
) -> "list[tuple[int, int, list[int]]]":
    """All full-suffix matches of ``context`` in a compact store.

    The index-based twin of :func:`iter_suffix_matches`: each element is
    ``(matched_index, suffix_length, indices_on_match_path)``, longest
    suffix first.  URLs the symbol table has never seen cannot match by
    construction, so each is resolved once up front.
    """
    get_sym = symbols.get
    ids = [get_sym(url) for url in context]
    matches: list[tuple[int, int, list[int]]] = []
    roots = store.roots
    children = store.children
    n = len(ids)
    for start in range(n):
        sym = ids[start]
        if sym is None:
            continue
        idx = roots.get(sym)
        if idx is None:
            continue
        path = [idx]
        matched = True
        for position in range(start + 1, n):
            nxt_sym = ids[position]
            if nxt_sym is None:
                matched = False
                break
            nxt = children.get((idx << _KEY_SHIFT) | nxt_sym)
            if nxt is None:
                matched = False
                break
            idx = nxt
            path.append(idx)
        if matched:
            matches.append((idx, n - start, path))
    return matches


def predict_from_compact_matches(
    store: "CompactTrie",
    symbols: "SymbolTable",
    matches: "Sequence[tuple[int, int, list[int]]]",
    *,
    threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
    mark_used: bool = True,
    escape: bool = False,
) -> list[Prediction]:
    """Prediction step over compact suffix matches (longest first).

    Same qualification, usage marking and final ordering as
    :func:`predict_from_matches`; child enumeration order differs (sibling
    chain instead of dict insertion) but URLs are unique per node and the
    result is sorted, so the returned predictions are identical.
    """
    counts = store.counts
    used = store.used
    url_of = symbols.url
    for idx, order, path in matches:
        total = counts[idx]
        if total == 0:
            if escape:
                continue
            return []
        predictions: list[Prediction] = []
        marked: list[int] = []
        for sym, child in store.iter_children(idx):
            probability = counts[child] / total
            if clears_threshold(probability, threshold):
                predictions.append(
                    Prediction(url=url_of(sym), probability=probability, order=order)
                )
                marked.append(child)
        if not predictions and escape:
            continue
        if mark_used and predictions:
            for visited in path:
                used[visited] = 1
            for child in marked:
                used[child] = 1
        predictions.sort(key=_prediction_sort_key)
        return predictions
    return []


def predict_from_compact_context(
    store: "CompactTrie",
    symbols: "SymbolTable",
    context: Sequence[str],
    *,
    threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
    mark_used: bool = True,
    escape: bool = False,
) -> list[Prediction]:
    """Batch longest-match prediction over a compact store."""
    if not context:
        return []
    return predict_from_compact_matches(
        store,
        symbols,
        compact_suffix_matches(store, symbols, context),
        threshold=threshold,
        mark_used=mark_used,
        escape=escape,
    )


# --------------------------------------------------------------------------
# Compiled-table matching (precompiled twins of the compact functions)
# --------------------------------------------------------------------------


def table_suffix_matches(
    table: "PredictTable", symbols: "SymbolTable", context: Sequence[str]
) -> "list[tuple[int, int, list[int]]]":
    """All full-suffix matches of ``context`` via a compiled table.

    The transition-array twin of :func:`compact_suffix_matches` — same
    ``(matched_index, suffix_length, indices_on_match_path)`` elements,
    longest suffix first — for stores whose packed child map was never
    built (buffer-mapped serving workers).
    """
    get_sym = symbols.get
    ids = [get_sym(url) for url in context]
    return [
        (idx, len(path), path) for idx, path in table.match_states(ids)
    ]


def predict_from_table_matches(
    store: "CompactTrie",
    table: "PredictTable",
    symbols: "SymbolTable",
    matches: "Sequence[tuple[int, int, list[int]]]",
    *,
    mark_used: bool = True,
    escape: bool = False,
) -> list[Prediction]:
    """Prediction step over suffix matches via a compiled table.

    The table twin of :func:`predict_from_compact_matches`: the matched
    node's candidate row was threshold-filtered and
    ``(-probability, url)``-sorted at compile time, so qualifying here is
    slicing the row.  An empty row folds the two batch-path outcomes —
    zero count and no qualifying child — into one case, which preserves
    escape semantics exactly (both continue under ``escape``, both end
    prediction without it).  Callers dispatch only when
    ``table.covers(threshold)``.
    """
    used = store.used
    url_of = symbols.url
    for idx, order, path in matches:
        predictions, children = table.context_row(idx, order, url_of)
        if not predictions:
            if escape:
                continue
            return []
        if mark_used:
            for visited in path:
                used[visited] = 1
            for child in children:
                used[child] = 1
        return list(predictions)
    return []


def predict_from_table_context(
    store: "CompactTrie",
    table: "PredictTable",
    symbols: "SymbolTable",
    context: Sequence[str],
    *,
    mark_used: bool = True,
    escape: bool = False,
) -> list[Prediction]:
    """Batch longest-match prediction via a compiled table.

    Uses the packed child map for matching when the store has one built
    (in-process models) and the table's transition array otherwise
    (buffer-mapped workers, where building the map would cost an O(n)
    pass per remap).
    """
    if not context:
        return []
    if store.has_child_map:
        matches = compact_suffix_matches(store, symbols, context)
    else:
        matches = table_suffix_matches(table, symbols, context)
    return predict_from_table_matches(
        store,
        table,
        symbols,
        matches,
        mark_used=mark_used,
        escape=escape,
    )


# --------------------------------------------------------------------------
# Incremental suffix matching
# --------------------------------------------------------------------------


class PredictionCursor:
    """Per-client incremental suffix-match state.

    A cursor follows one client's click stream and maintains, after every
    :meth:`advance`, exactly the suffix-match states a batch
    :func:`iter_suffix_matches` would compute on the trimmed context —
    longest first — but derives them from the previous click's states in
    O(active matches) instead of rematching the whole context in O(L²)
    child lookups.  The correspondence is exact because a full suffix
    match of ``context + [url]`` is either a match of ``context`` extended
    by ``url`` or the single-click suffix ``[url]`` itself.

    Staleness: the owning model bumps an internal mutation counter on
    every structural change (refit, online update, node-forest
    materialisation).  The cursor snapshots the counter and transparently
    falls back to one batch rematch when it no longer agrees, so online
    updates mid-replay can never leave it pointing at stale or deleted
    state.  Session boundaries are handled by :meth:`reset`.

    Obtain cursors via :meth:`repro.core.base.PPMModel.prediction_cursor`
    and predict through :meth:`repro.core.base.PPMModel.predict_cursor`.
    """

    __slots__ = ("_model", "_max_length", "_urls", "_states", "_seen")

    def __init__(self, model, max_length: int) -> None:
        if max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length}")
        self._model = model
        self._max_length = max_length
        self._urls: list[str] = []
        # Each state is (handle, path): a TrieNode and node path in node
        # mode, an array index and index path in compact mode.  Kept in
        # decreasing suffix-length order, matching iter_suffix_matches.
        self._states: list[tuple[object, list]] = []
        self._seen = model._mutations

    @property
    def model(self):
        return self._model

    @property
    def max_length(self) -> int:
        return self._max_length

    @property
    def context(self) -> tuple[str, ...]:
        """The trimmed click context the current states correspond to."""
        return tuple(self._urls)

    @property
    def last_url(self) -> str | None:
        """The most recent click, or None right after a reset."""
        return self._urls[-1] if self._urls else None

    def reset(self) -> None:
        """Forget the context — call at session boundaries."""
        self._urls.clear()
        self._states.clear()

    def _resync(self) -> None:
        self._states = self._model._match_states(self._urls)
        self._seen = self._model._mutations

    def advance(self, url: str) -> None:
        """Extend the context by one click, updating the match states."""
        urls = self._urls
        urls.append(url)
        overflow = len(urls) - self._max_length
        if overflow > 0:
            del urls[:overflow]
        if self._seen != self._model._mutations:
            self._resync()
            return
        self._states = self._model._advance_states(self._states, url)
        if overflow > 0 and self._states:
            # Trimming dropped the oldest click; a state that matched the
            # full pre-trim context is now longer than the context itself
            # and must go.  Suffix lengths are unique, so at most the
            # first (longest) state is affected.
            limit = len(urls)
            if len(self._states[0][1]) > limit:
                del self._states[0]

    def matches(self) -> list:
        """Current suffix matches as ``(handle, order, path)``, longest first.

        Same shape as :func:`iter_suffix_matches` /
        :func:`compact_suffix_matches` on :attr:`context`.
        """
        if self._seen != self._model._mutations:
            self._resync()
        return [(handle, len(path), path) for handle, path in self._states]

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"PredictionCursor(context={len(self._urls)}, "
            f"states={len(self._states)})"
        )
