"""Longest-match prediction over a Markov prediction tree (Section 4.1).

*"A longest matching method is used in both the standard and the LRS-PPM
models, which matches as many previous URLs as possible to make a
prediction."*  Given the URLs a client has clicked so far in its session,
the engine finds the longest context suffix that exists as a root path in
the tree and predicts the children of the matched node whose conditional
probability clears the threshold (0.25 in all the paper's experiments).

PB-PPM adds *special-link* predictions on top: when the current click is a
root, the duplicated popular nodes linked from that root are predicted as
well (:meth:`repro.core.pb.PopularityBasedPPM.predict` wires this in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import params
from repro.core.node import TrieNode


@dataclass(frozen=True, slots=True)
class Prediction:
    """One predicted URL.

    Attributes
    ----------
    url:
        The URL the model expects the client to access.
    probability:
        Conditional probability the model assigns to the access.
    order:
        Length of the context suffix the prediction was conditioned on
        (0 for special-link predictions, which condition on the root only).
    source:
        ``"context"`` for ordinary longest-match predictions,
        ``"special_link"`` for PB-PPM's popular-node predictions.
    """

    url: str
    probability: float
    order: int
    source: str = "context"


def iter_suffix_matches(
    roots: Mapping[str, TrieNode], context: Sequence[str]
) -> "list[tuple[TrieNode, int, list[TrieNode]]]":
    """All full-suffix matches of ``context`` in the tree, longest first.

    Each element is ``(matched_node, suffix_length, nodes_on_match_path)``.
    PPM's escape mechanism consumes these in order: the longest matching
    context that actually yields a prediction wins.
    """
    matches: list[tuple[TrieNode, int, list[TrieNode]]] = []
    for start in range(len(context)):
        suffix = context[start:]
        node = roots.get(suffix[0])
        if node is None:
            continue
        path = [node]
        matched = True
        for url in suffix[1:]:
            nxt = node.child(url)
            if nxt is None:
                matched = False
                break
            node = nxt
            path.append(node)
        if matched:
            matches.append((node, len(suffix), path))
    return matches


def match_longest_suffix(
    roots: Mapping[str, TrieNode], context: Sequence[str]
) -> tuple[TrieNode | None, int, list[TrieNode]]:
    """Find the deepest tree node reachable by a suffix of ``context``.

    Tries the longest suffix first and shortens until a full match exists.
    Returns ``(matched_node, suffix_length, nodes_on_match_path)``; the node
    is None when not even the last click is a root.
    """
    matches = iter_suffix_matches(roots, context)
    if not matches:
        return None, 0, []
    return matches[0]


def predict_from_context(
    roots: Mapping[str, TrieNode],
    context: Sequence[str],
    *,
    threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
    mark_used: bool = True,
    escape: bool = False,
) -> list[Prediction]:
    """Longest-match prediction shared by all three models.

    Parameters
    ----------
    roots:
        The tree's root nodes keyed by URL.
    context:
        The URLs of the client's current session so far, oldest first.
    threshold:
        Minimum conditional probability for a child to be predicted.
    mark_used:
        When true, the matched path and the predicted children are marked
        used, feeding the Figure-2 path-utilisation metric.
    escape:
        The paper's models predict from the longest matching context only
        (``escape=False``, the default): if nothing at that context clears
        the threshold, no prefetch is issued.  With ``escape=True`` the
        engine instead falls back to the next-shorter matching context
        until some prediction qualifies — the escape mechanism of
        compression-style PPM, offered as an ablation
        (``benchmarks/bench_ablation_escape.py`` measures its effect).

    Returns
    -------
    Predictions sorted by descending probability (ties by URL) so the most
    confident prefetch is issued first.
    """
    if not context:
        return []
    for node, order, path in iter_suffix_matches(roots, context):
        if node.count == 0:
            if escape:
                continue
            return []
        predictions: list[Prediction] = []
        marked: list[TrieNode] = []
        for url in node.children:
            child = node.children[url]
            probability = child.count / node.count
            if probability >= threshold:
                predictions.append(
                    Prediction(url=url, probability=probability, order=order)
                )
                marked.append(child)
        if not predictions and escape:
            continue
        if mark_used and predictions:
            for visited in path:
                visited.used = True
            for child in marked:
                child.used = True
        predictions.sort(key=lambda p: (-p.probability, p.url))
        return predictions
    return []
