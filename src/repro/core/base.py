"""Shared interface and trie machinery for the three prediction models.

Every model owns a forest of prediction-tree roots, is fitted once on
training sessions, and answers longest-match predictions.  The class also
exposes the bookkeeping the evaluation needs: node counts (the paper's
"space" metric), root-to-leaf paths, and usage marking for the
path-utilisation study of Figure 2.

Two storage representations back the forest:

* the classic one-:class:`~repro.core.node.TrieNode`-object-per-URL
  forest in ``self._roots``, and
* the compact kernel (:mod:`repro.kernel`): URLs interned to dense ids in
  a :class:`~repro.kernel.symbols.SymbolTable` and the whole forest held
  in one array-backed :class:`~repro.kernel.compact.CompactTrie`.

Which one a ``fit`` produces is controlled by the ``compact`` constructor
argument (default: :data:`repro.params.COMPACT_MODEL_KERNEL`).  The model
holds exactly one representation at a time.  Reading :attr:`roots` on a
compact model *materialises* the equivalent node forest and permanently
adopts it, so code that walks or mutates trees directly — tests, pruning
ablations, notebooks — keeps working unchanged on the canonical
representation; the conversion is lossless both ways and predictions are
identical on either side (``tests/kernel/`` pins this).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence

from repro import params
from repro.core.node import TrieNode
from repro.core.prediction import (
    Prediction,
    PredictionCursor,
    compact_suffix_matches,
    iter_suffix_matches,
    predict_from_compact_context,
    predict_from_context,
    predict_from_matches,
    predict_from_table_context,
    predict_from_table_matches,
)
from repro.core.stats import path_utilization as _node_path_utilization
from repro.core.stats import reset_usage as _node_reset_usage
from repro.errors import NotFittedError
from repro.kernel.compact import KEY_SHIFT, CompactTrie
from repro.kernel.symbols import SymbolTable
from repro.trace.sessions import Session


def _collect_node_used_paths(
    roots: "dict[str, TrieNode]",
) -> list[tuple[str, ...]]:
    """Root paths of every used node, in deterministic URL order."""
    paths: list[tuple[str, ...]] = []
    for url in sorted(roots):
        stack: list[tuple[TrieNode, tuple[str, ...]]] = [(roots[url], (url,))]
        while stack:
            node, path = stack.pop()
            if node.used:
                paths.append(path)
            for child_url in sorted(node.children, reverse=True):
                stack.append((node.children[child_url], path + (child_url,)))
    return paths


def _mark_node_used_paths(
    roots: "dict[str, TrieNode]", paths: Sequence[tuple[str, ...]]
) -> None:
    """Set the used flag on the nodes named by root paths (missing: skip)."""
    for path in paths:
        node = roots.get(path[0]) if path else None
        for url in path[1:]:
            if node is None:
                break
            node = node.child(url)
        if node is not None:
            node.used = True


class PPMModel(ABC):
    """Abstract Markov-prediction-tree model.

    Subclasses implement :meth:`_build` (node-forest construction) and may
    implement :meth:`_build_compact` (construction straight into the
    compact store; return True to claim the build).  Everything else —
    prediction, statistics, usage marking — is shared and dispatches on
    the live representation.
    """

    #: Human-readable model name used in reports ("standard", "lrs", "pb").
    name: str = "ppm"

    #: Whether :meth:`predict_cursor` may use the incremental suffix-match
    #: fast path.  Only safe when the model's :meth:`predict` is the
    #: generic longest-match (or the model overrides ``predict_cursor``
    #: itself, as PB-PPM does); models with bespoke batch predictions keep
    #: False and fall back to ``predict(cursor.context)``.
    supports_incremental: bool = False

    def __init__(self, *, compact: bool | None = None) -> None:
        self._roots: dict[str, TrieNode] = {}
        self._store: CompactTrie | None = None
        self._symbols: SymbolTable | None = None
        self._fitted = False
        self._compact_requested = compact
        #: Structural-change counter; prediction cursors snapshot it and
        #: resync when it moves.  Bumped by fits, online inserts and
        #: representation switches — never by usage marking.
        self._mutations = 0
        #: Compiled prediction table for the compact store, cached per
        #: mutation generation (``_table_mutations`` records which); any
        #: structural change invalidates it exactly like cursors.
        self._table = None
        self._table_mutations: int | None = None

    # -- fitting -----------------------------------------------------------

    def _compact_enabled(self) -> bool:
        if self._compact_requested is None:
            return params.COMPACT_MODEL_KERNEL
        return self._compact_requested

    def fit(self, sessions: Iterable[Session]) -> "PPMModel":
        """Build the prediction tree from training sessions.

        Accepts any iterable of sessions; refitting replaces the tree.
        Returns ``self`` so calls chain.
        """
        sessions = list(sessions)
        self._roots = {}
        self._store = None
        self._symbols = None
        self._mutations += 1
        if self._compact_enabled():
            self._symbols = SymbolTable()
            self._store = CompactTrie()
            if not self._build_compact(sessions):
                self._store = None
                self._symbols = None
                self._build(sessions)
        else:
            self._build(sessions)
        self._fitted = True
        return self

    @abstractmethod
    def _build(self, sessions: list[Session]) -> None:
        """Populate ``self._roots`` from the training sessions."""

    def _build_compact(self, sessions: list[Session]) -> bool:
        """Populate ``self._store`` / ``self._symbols``; True if handled.

        The base implementation declines, which makes :meth:`fit` fall
        back to the node-forest :meth:`_build` — so subclasses without a
        compact builder keep working under the compact default.
        """
        del sessions
        return False

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")

    # -- representation ----------------------------------------------------

    @property
    def is_compact(self) -> bool:
        """Whether the forest currently lives in the compact store."""
        return self._store is not None

    def _materialize(self) -> None:
        """Adopt the node-forest representation (lossless, permanent)."""
        assert self._store is not None and self._symbols is not None
        self._roots = self._store.to_node_forest(self._symbols)
        self._store = None
        self._symbols = None
        self._mutations += 1

    def to_node_forest(self) -> dict[str, TrieNode]:
        """The forest as :class:`TrieNode` roots, without switching modes.

        On a compact model this materialises a fresh, equivalent forest
        and leaves the model compact (serialisation uses this); on a node
        model it returns the live roots.
        """
        if self._store is not None:
            assert self._symbols is not None
            return self._store.to_node_forest(self._symbols)
        return self._roots

    def to_compact(self) -> "PPMModel":
        """Switch a node-forest model to the compact representation.

        External references into the old node forest are not tracked;
        callers converting mid-experiment should drop them.  Returns
        ``self`` so calls chain.
        """
        if self._store is None:
            symbols = SymbolTable()
            self._store = CompactTrie.from_node_forest(self._roots, symbols)
            self._symbols = symbols
            self._roots = {}
            self._mutations += 1
        return self

    # -- prediction -----------------------------------------------------------

    def _compiled_table(self):
        """The compiled prediction table for the current store generation.

        None when compilation is off (:data:`repro.params.COMPILED_PREDICT`),
        the model is node-backed, or the store has garbage slots.  The
        result — including None — is cached against the mutation counter,
        so a model compiles at most once per structural generation;
        buffer-mapped models arrive with the supervisor's precompiled
        table already cached and never compile at all.
        """
        if self._store is None or not params.COMPILED_PREDICT:
            return None
        if self._table_mutations != self._mutations:
            from repro.kernel.predict_table import compile_predict_table

            self._table = compile_predict_table(
                self._store,
                self._symbols,
                threshold=params.PREDICTION_PROBABILITY_THRESHOLD,
                special_threshold=getattr(
                    self, "special_link_threshold", params.SPECIAL_LINK_THRESHOLD
                ),
            )
            self._table_mutations = self._mutations
        return self._table

    def predict(
        self,
        context: Sequence[str],
        *,
        threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
        mark_used: bool = True,
        escape: bool = False,
    ) -> list[Prediction]:
        """Predict the next accesses given the session's URLs so far.

        ``escape`` enables compression-style PPM fallback to shorter
        contexts (an ablation; the paper's models leave it off) — see
        :func:`repro.core.prediction.predict_from_context`.
        """
        self._require_fitted()
        if self._store is not None:
            table = self._compiled_table()
            if table is not None and table.covers(threshold):
                return predict_from_table_context(
                    self._store,
                    table,
                    self._symbols,
                    context,
                    mark_used=mark_used,
                    escape=escape,
                )
            return predict_from_compact_context(
                self._store,
                self._symbols,
                context,
                threshold=threshold,
                mark_used=mark_used,
                escape=escape,
            )
        return predict_from_context(
            self._roots,
            context,
            threshold=threshold,
            mark_used=mark_used,
            escape=escape,
        )

    # -- incremental prediction ------------------------------------------------

    def prediction_cursor(
        self, max_length: int = params.DEFAULT_MAX_CONTEXT_LENGTH
    ) -> PredictionCursor:
        """A per-client incremental suffix-match cursor over this model."""
        self._require_fitted()
        return PredictionCursor(self, max_length)

    def _match_states(self, context: Sequence[str]) -> list:
        """Batch suffix-match states for a cursor resync."""
        if self._store is not None:
            if not self._store.has_child_map:
                # Buffer-mapped store: match through the compiled table's
                # transition array rather than forcing the O(n) child-map
                # build the mapping deliberately skipped.
                table = self._compiled_table()
                if table is not None:
                    get_sym = self._symbols.get
                    return table.match_states([get_sym(url) for url in context])
            return [
                (idx, path)
                for idx, _order, path in compact_suffix_matches(
                    self._store, self._symbols, context
                )
            ]
        return [
            (node, path)
            for node, _order, path in iter_suffix_matches(self._roots, context)
        ]

    def _advance_states(self, states: list, url: str) -> list:
        """Extend each suffix-match state by one click (cursor hot path)."""
        if self._store is not None:
            store = self._store
            sym = self._symbols.get(url)
            if sym is None:
                return []
            if not store.has_child_map:
                table = self._compiled_table()
                if table is not None:
                    return table.advance_states(states, sym)
            children = store.children
            advanced = []
            for handle, path in states:
                child = children.get((handle << KEY_SHIFT) | sym)
                if child is not None:
                    advanced.append((child, path + [child]))
            root = store.roots.get(sym)
            if root is not None:
                advanced.append((root, [root]))
            return advanced
        advanced = []
        for handle, path in states:
            child = handle.children.get(url)
            if child is not None:
                advanced.append((child, path + [child]))
        root = self._roots.get(url)
        if root is not None:
            advanced.append((root, [root]))
        return advanced

    def predict_cursor(
        self,
        cursor: PredictionCursor,
        *,
        threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
        mark_used: bool = True,
        escape: bool = False,
    ) -> list[Prediction]:
        """Predict from a cursor's maintained suffix matches.

        Equivalent to ``predict(cursor.context)`` — same predictions, same
        usage marking — but O(active matches) per click instead of
        rematching the full context.  Models without an incremental path
        (``supports_incremental`` False) transparently run the batch
        prediction on the cursor's context.
        """
        self._require_fitted()
        if cursor.model is not self:
            raise ValueError("cursor belongs to a different model")
        if not self.supports_incremental:
            return self.predict(
                cursor.context,
                threshold=threshold,
                mark_used=mark_used,
                escape=escape,
            )
        matches = cursor.matches()
        if self._store is not None:
            from repro.core.prediction import predict_from_compact_matches

            table = self._compiled_table()
            if table is not None and table.covers(threshold):
                return predict_from_table_matches(
                    self._store,
                    table,
                    self._symbols,
                    matches,
                    mark_used=mark_used,
                    escape=escape,
                )
            return predict_from_compact_matches(
                self._store,
                self._symbols,
                matches,
                threshold=threshold,
                mark_used=mark_used,
                escape=escape,
            )
        return predict_from_matches(
            matches, threshold=threshold, mark_used=mark_used, escape=escape
        )

    # -- tree access and statistics ------------------------------------------

    @property
    def roots(self) -> dict[str, TrieNode]:
        """The root nodes of the prediction tree, keyed by URL.

        On a compact model the first access materialises the equivalent
        :class:`TrieNode` forest and the model adopts it permanently, so
        callers may mutate what they get back and every later read sees
        the same objects.
        """
        if self._store is not None:
            self._materialize()
        return self._roots

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def iter_nodes(self) -> Iterator[TrieNode]:
        """Every node of the forest, pre-order, deterministic."""
        roots = self.roots
        for url in sorted(roots):
            yield from roots[url].walk()

    @property
    def node_count(self) -> int:
        """Number of stored URL nodes — the paper's space metric."""
        if self._store is not None:
            return self._store.node_count
        return sum(1 for _ in self.iter_nodes())

    def reset_usage(self) -> None:
        """Clear every node's used flag (before a fresh replay)."""
        if self._store is not None:
            self._store.reset_used()
        else:
            _node_reset_usage(self._roots)

    def path_utilization(self) -> float:
        """Fraction of root-to-leaf paths used for predictions (Figure 2)."""
        if self._store is not None:
            total, used = self._store.path_stats()
            return used / total if total else 0.0
        return _node_path_utilization(self._roots)

    def collect_used_paths(self) -> list[tuple[str, ...]]:
        """Root URL paths of every node marked used (for shard merging)."""
        if self._store is not None:
            return self._store.collect_used_paths(self._symbols)
        return _collect_node_used_paths(self._roots)

    def mark_used_paths(self, paths: Sequence[tuple[str, ...]]) -> None:
        """Set the used flag on the nodes named by root URL paths."""
        if self._store is not None:
            self._store.mark_used_paths(self._symbols, paths)
        else:
            _mark_node_used_paths(self._roots, paths)

    def insert_path(self, urls: Sequence[str], *, weight: int = 1) -> None:
        """Insert a URL path from the root level, bumping counts by weight."""
        if not urls:
            return
        self._mutations += 1
        if self._store is not None:
            self._store.insert_path(self._symbols.intern_sequence(urls), weight)
            return
        root = self._roots.get(urls[0])
        if root is None:
            root = TrieNode(urls[0])
            self._roots[urls[0]] = root
        root.count += weight
        node = root
        for url in urls[1:]:
            node = node.ensure_child(url)
            node.count += weight

    def lookup(self, urls: Sequence[str]) -> TrieNode | None:
        """Return the node at the end of a root path, or None.

        Answers in :class:`TrieNode` terms, so a compact model adopts the
        node representation first (see :attr:`roots`).
        """
        if not urls:
            return None
        node = self.roots.get(urls[0])
        for url in urls[1:]:
            if node is None:
                return None
            node = node.child(url)
        return node

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        if not self._fitted:
            return f"{type(self).__name__}(unfitted)"
        suffix = ", compact" if self._store is not None else ""
        return f"{type(self).__name__}(nodes={self.node_count}{suffix})"
