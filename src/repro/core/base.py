"""Shared interface and trie machinery for the three prediction models.

Every model owns a forest of :class:`~repro.core.node.TrieNode` roots, is
fitted once on training sessions, and answers longest-match predictions.
The class also exposes the bookkeeping the evaluation needs: node counts
(the paper's "space" metric), root-to-leaf paths, and usage marking for the
path-utilisation study of Figure 2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence

from repro import params
from repro.core.node import TrieNode
from repro.core.prediction import Prediction, predict_from_context
from repro.errors import NotFittedError
from repro.trace.sessions import Session


class PPMModel(ABC):
    """Abstract Markov-prediction-tree model.

    Subclasses implement :meth:`_build`, which populates ``self._roots``
    from the training sessions.  Everything else — prediction, statistics,
    usage marking — is shared.
    """

    #: Human-readable model name used in reports ("standard", "lrs", "pb").
    name: str = "ppm"

    def __init__(self) -> None:
        self._roots: dict[str, TrieNode] = {}
        self._fitted = False

    # -- fitting -----------------------------------------------------------

    def fit(self, sessions: Iterable[Session]) -> "PPMModel":
        """Build the prediction tree from training sessions.

        Accepts any iterable of sessions; refitting replaces the tree.
        Returns ``self`` so calls chain.
        """
        self._roots = {}
        self._build(list(sessions))
        self._fitted = True
        return self

    @abstractmethod
    def _build(self, sessions: list[Session]) -> None:
        """Populate ``self._roots`` from the training sessions."""

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")

    # -- prediction -----------------------------------------------------------

    def predict(
        self,
        context: Sequence[str],
        *,
        threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
        mark_used: bool = True,
        escape: bool = False,
    ) -> list[Prediction]:
        """Predict the next accesses given the session's URLs so far.

        ``escape`` enables compression-style PPM fallback to shorter
        contexts (an ablation; the paper's models leave it off) — see
        :func:`repro.core.prediction.predict_from_context`.
        """
        self._require_fitted()
        return predict_from_context(
            self._roots,
            context,
            threshold=threshold,
            mark_used=mark_used,
            escape=escape,
        )

    # -- tree access and statistics ------------------------------------------

    @property
    def roots(self) -> dict[str, TrieNode]:
        """The root nodes of the prediction tree, keyed by URL."""
        return self._roots

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def iter_nodes(self) -> Iterator[TrieNode]:
        """Every node of the forest, pre-order, deterministic."""
        for url in sorted(self._roots):
            yield from self._roots[url].walk()

    @property
    def node_count(self) -> int:
        """Number of stored URL nodes — the paper's space metric."""
        return sum(1 for _ in self.iter_nodes())

    def insert_path(self, urls: Sequence[str], *, weight: int = 1) -> None:
        """Insert a URL path from the root level, bumping counts by weight."""
        if not urls:
            return
        root = self._roots.get(urls[0])
        if root is None:
            root = TrieNode(urls[0])
            self._roots[urls[0]] = root
        root.count += weight
        node = root
        for url in urls[1:]:
            node = node.ensure_child(url)
            node.count += weight

    def lookup(self, urls: Sequence[str]) -> TrieNode | None:
        """Return the node at the end of a root path, or None."""
        if not urls:
            return None
        node = self._roots.get(urls[0])
        for url in urls[1:]:
            if node is None:
                return None
            node = node.child(url)
        return node

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = f"nodes={self.node_count}" if self._fitted else "unfitted"
        return f"{type(self).__name__}({state})"
