"""Popularity-based PPM — the paper's contribution (Sections 3.4, 4.1).

The Markov prediction tree grows with a *variable* height per branch, set
by the popularity grade of the URL heading the branch.  The four
construction rules of Section 3.4:

1. **Grade-scaled heights.**  A branch headed by a grade-*g* URL may grow to
   at most ``grade_heights[g]`` nodes (paper defaults 7/5/3/1 for grades
   3/2/1/0), never beyond the absolute maximum motivated by session-length
   statistics (95 % of sessions have <= 9 clicks).
2. **Moderate absolute maximum height** — ``absolute_max_height``.
3. **Special links.**  If a URL *not immediately following* the heading URL
   in a branch carries a grade higher than the head's, or carries the top
   grade, the root is linked directly to that duplicated node, giving
   popular URLs extra prediction opportunities.
4. **Rise-only roots.**  A URL of a training sequence opens a new root only
   at the sequence start or where its grade exceeds the grade of the URL
   before it.  This caps the number of roots — the main space saving over
   the standard model, which opens a root at every position.

For the access sequence ``A B C A' B' C'`` with grades A,A' = 3, B,B' = 2,
C,C' = 1 and maximum height 4, the rules yield Figure 1 right: roots A and
A' only, branch ``A -> B -> C -> A'`` with a special link from root A to the
duplicated popular node A', and branch ``A' -> B' -> C'``.

Prediction adds the special-link step of Section 4.1: when the client's
current click is a root, the popular nodes linked from that root are
predicted in addition to the ordinary longest-match children.
"""

from __future__ import annotations

from typing import Sequence

from repro import params
from repro.core.base import PPMModel
from repro.core.node import TrieNode
from repro.core.popularity import PopularityTable
from repro.core.prediction import (
    Prediction,
    PredictionCursor,
    clears_threshold,
    compact_suffix_matches,
    iter_suffix_matches,
    table_suffix_matches,
)
from repro.core.pruning import prune_by_absolute_count, prune_by_relative_probability
from repro.kernel.bulk import build_branch_trie, dedup_sequences, symbol_grades
from repro.kernel.prune import prune_dense
from repro.trace.sessions import Session


class PopularityBasedPPM(PPMModel):
    """Popularity-based PPM prediction tree.

    Parameters
    ----------
    popularity:
        The popularity table computed from the *training* days' accesses.
    grade_heights:
        Maximum branch height per grade, indexed by grade (paper defaults
        ``(1, 3, 5, 7)`` for grades 0..3).
    absolute_max_height:
        Hard height cap regardless of grade (paper: a moderate number,
        default 9 after the session-length statistics).
    prune_relative_probability:
        First space optimisation: cut each non-root node whose relative
        access probability (count / parent count) is below this value.
        ``None`` disables the pass.  Paper experiments: 5-10 %.
    prune_absolute_count:
        Second space optimisation: remove nodes accessed at most this many
        times (paper: 1, applied for some traces, e.g. UCB-CS).  ``None``
        disables the pass.
    special_link_threshold:
        Minimum aggregate probability (linked duplicates' counts over the
        root's count) for a special-link prediction.  The paper's 0.25
        threshold governs "the possibility of next accesses", i.e. the
        context predictions; the special links exist to give popular URLs
        *more* consideration than that, so they carry their own, lower
        cut-off (popularity grade already gates which nodes get linked).
    """

    name = "pb"
    supports_incremental = True

    def __init__(
        self,
        popularity: PopularityTable,
        *,
        grade_heights: Sequence[int] = params.GRADE_HEIGHTS,
        absolute_max_height: int = params.ABSOLUTE_MAX_HEIGHT,
        prune_relative_probability: float | None = params.PRUNE_RELATIVE_PROBABILITY,
        prune_absolute_count: int | None = None,
        special_link_threshold: float = params.SPECIAL_LINK_THRESHOLD,
        compact: bool | None = None,
    ) -> None:
        super().__init__(compact=compact)
        if len(grade_heights) != popularity.max_grade + 1:
            raise ValueError(
                f"grade_heights needs {popularity.max_grade + 1} entries "
                f"(one per grade), got {len(grade_heights)}"
            )
        if any(h < 1 for h in grade_heights):
            raise ValueError(f"every grade height must be >= 1: {grade_heights}")
        if list(grade_heights) != sorted(grade_heights):
            raise ValueError(
                f"grade heights must be non-decreasing in grade: {grade_heights}"
            )
        if absolute_max_height < 1:
            raise ValueError(f"absolute_max_height must be >= 1: {absolute_max_height}")
        self.popularity = popularity
        self.grade_heights = tuple(grade_heights)
        self.absolute_max_height = absolute_max_height
        if not 0.0 <= special_link_threshold <= 1.0:
            raise ValueError(
                f"special_link_threshold out of [0, 1]: {special_link_threshold}"
            )
        self.prune_relative_probability = prune_relative_probability
        self.prune_absolute_count = prune_absolute_count
        self.special_link_threshold = special_link_threshold

    # -- construction -----------------------------------------------------

    def branch_height_for(self, url: str) -> int:
        """Maximum branch height for a branch headed by ``url`` (rule 1+2)."""
        return min(
            self.grade_heights[self.popularity.grade(url)], self.absolute_max_height
        )

    def _root_positions(self, urls: Sequence[str]) -> list[int]:
        """Rule 4: positions opening a new root (start, or grade rises)."""
        grade = self.popularity.grade
        return [
            i
            for i in range(len(urls))
            if i == 0 or grade(urls[i]) > grade(urls[i - 1])
        ]

    def _insert_branch(self, urls: Sequence[str]) -> None:
        """Insert one branch and wire its special links (rules 1-3)."""
        head = urls[0]
        height = self.branch_height_for(head)
        path = urls[:height]
        root = self._roots.get(head)
        if root is None:
            root = TrieNode(head)
            self._roots[head] = root
        root.count += 1
        node = root
        head_grade = self.popularity.grade(head)
        for depth, url in enumerate(path[1:], start=2):
            node = node.ensure_child(url)
            node.count += 1
            if depth >= 3:  # not immediately following the head (rule 3)
                grade = self.popularity.grade(url)
                if grade > head_grade or grade == self.popularity.max_grade:
                    if node not in root.special_links:
                        root.special_links.append(node)

    def _build(self, sessions: list[Session]) -> None:
        for session in sessions:
            urls = session.urls
            for position in self._root_positions(urls):
                self._insert_branch(urls[position:])
        if self.prune_relative_probability is not None:
            prune_by_relative_probability(
                self._roots, cutoff=self.prune_relative_probability
            )
        if self.prune_absolute_count is not None:
            prune_by_absolute_count(self._roots, max_count=self.prune_absolute_count)

    # -- compact construction ------------------------------------------------

    def _insert_branch_compact(
        self, ids: Sequence[int], start: int, grades: Sequence[int]
    ) -> None:
        """Interned twin of :meth:`_insert_branch` for the branch at ``start``.

        ``grades`` carries the popularity grade of each position of
        ``ids``; ``offset >= 2`` below is the node path's ``depth >= 3``
        (one past the URL immediately following the head).
        """
        store = self._store
        head_grade = grades[start]
        height = min(self.grade_heights[head_grade], self.absolute_max_height)
        stop = min(len(ids), start + height)
        max_grade = self.popularity.max_grade
        counts = store.counts
        root = store.ensure_root(ids[start])
        counts[root] += 1
        idx = root
        for position in range(start + 1, stop):
            idx = store.ensure_child(idx, ids[position])
            counts[idx] += 1
            if position - start >= 2:  # not immediately following the head
                grade = grades[position]
                if grade > head_grade or grade == max_grade:
                    links = store.special_links.get(root)
                    if links is None:
                        store.special_links[root] = [idx]
                    elif idx not in links:
                        links.append(idx)

    def _insert_sessions_compact(self, sessions: list[Session]) -> None:
        """Intern and insert every session's branches (rules 1-4)."""
        symbols = self._symbols
        intern = symbols.intern_sequence
        url_of = symbols.url
        grade_of = self.popularity.grade
        # Grade per symbol id, looked up once per distinct URL ever.
        sym_grades: list[int] = []
        for session in sessions:
            ids = intern(session.urls)
            while len(sym_grades) < len(symbols):
                sym_grades.append(grade_of(url_of(len(sym_grades))))
            grades = [sym_grades[sym] for sym in ids]
            for position in range(len(ids)):
                if position == 0 or grades[position] > grades[position - 1]:
                    self._insert_branch_compact(ids, position, grades)

    def _build_compact(self, sessions: list[Session]) -> bool:
        # Bulk-build rules 1-4 over deduplicated sessions; duplicate
        # sessions repeat no branch and create no new special link, so
        # first-seen order plus weights reproduces the per-click build,
        # link-creation order included.
        sequences, weights = dedup_sequences([s.urls for s in sessions])
        intern = self._symbols.intern_sequence
        ids = [intern(seq) for seq in sequences]
        self._store = build_branch_trie(
            ids,
            grades=symbol_grades(self._symbols, self.popularity.grade),
            grade_heights=self.grade_heights,
            absolute_max_height=self.absolute_max_height,
            max_grade=self.popularity.max_grade,
            weights=weights,
        )
        # Space optimisations, fused and vectorised (the fresh bulk store
        # is dense, which is all prune_dense asks for).
        self._store, _ = prune_dense(
            self._store,
            cutoff=self.prune_relative_probability,
            max_count=self.prune_absolute_count,
        )
        return True

    def fold_sessions(self, sessions: list[Session]) -> None:
        """Fold new sessions in under the existing grading (no re-pruning).

        The cheap between-rebuilds update :func:`repro.core.online.update_model`
        applies; works on either representation.
        """
        if self._store is not None:
            self._insert_sessions_compact(sessions)
            self._mutations += 1
            return
        for session in sessions:
            urls = session.urls
            for position in self._root_positions(urls):
                self._insert_branch(urls[position:])
        self._mutations += 1

    # -- prediction ----------------------------------------------------------

    def predict(
        self,
        context: Sequence[str],
        *,
        threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
        mark_used: bool = True,
        escape: bool = False,
    ) -> list[Prediction]:
        """Context predictions merged across suffix levels, plus special links.

        Section 4.1: the baselines use the plain longest matching method;
        *"in contrast, when the current clicked URL is a root in the tree,
        the popularity-based model will make additional predictions"*.
        PB-PPM therefore merges the qualifying predictions of **every**
        matching context suffix, from the longest down to the current click
        alone (the current click is a root whenever it ever headed a
        branch), and adds the special-link predictions for the duplicated
        popular nodes reachable from that root.

        A popular URL may be duplicated in several sub-branches of the
        root, each duplicate linked separately; the prediction for that URL
        aggregates the duplicates' traversal counts and is gated by
        :attr:`special_link_threshold` rather than the next-access
        ``threshold`` (see the constructor notes).

        ``escape`` is accepted for interface compatibility and ignored:
        the merged multi-level strategy already subsumes PPM escape.
        """
        self._require_fitted()
        del escape
        if not context:
            return []
        if self._store is not None:
            table = self._table_for(threshold)
            if table is not None:
                if self._store.has_child_map:
                    matches = compact_suffix_matches(
                        self._store, self._symbols, context
                    )
                else:
                    matches = table_suffix_matches(table, self._symbols, context)
                return self._predict_table(matches, context[-1], mark_used, table)
            matches = compact_suffix_matches(self._store, self._symbols, context)
            return self._predict_compact(matches, context[-1], threshold, mark_used)
        matches = iter_suffix_matches(self._roots, context)
        return self._predict_nodes(matches, context[-1], threshold, mark_used)

    def predict_cursor(
        self,
        cursor: PredictionCursor,
        *,
        threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
        mark_used: bool = True,
        escape: bool = False,
    ) -> list[Prediction]:
        """Incremental twin of :meth:`predict` over a cursor's matches.

        The cursor maintains exactly the suffix matches the batch path
        computes, and the special-link step only needs the current click
        (``cursor.last_url``), so the merged multi-level prediction is
        reproduced without rematching the context.
        """
        self._require_fitted()
        del escape
        if cursor.model is not self:
            raise ValueError("cursor belongs to a different model")
        last_url = cursor.last_url
        if last_url is None:
            return []
        matches = cursor.matches()
        if self._store is not None:
            table = self._table_for(threshold)
            if table is not None:
                return self._predict_table(matches, last_url, mark_used, table)
            return self._predict_compact(matches, last_url, threshold, mark_used)
        return self._predict_nodes(matches, last_url, threshold, mark_used)

    def _predict_nodes(
        self,
        matches: "Sequence[tuple[TrieNode, int, list[TrieNode]]]",
        last_url: str,
        threshold: float,
        mark_used: bool,
    ) -> list[Prediction]:
        predictions: dict[str, Prediction] = {}
        for node, order, path in matches:
            if node.count == 0:
                continue
            for url in sorted(node.children):
                child = node.children[url]
                probability = child.count / node.count
                if clears_threshold(probability, threshold) and url not in predictions:
                    predictions[url] = Prediction(
                        url=url, probability=probability, order=order
                    )
                    if mark_used:
                        for visited in path:
                            visited.used = True
                        child.used = True
        root = self._roots.get(last_url)
        if root is not None and root.count > 0 and root.special_links:
            aggregated: dict[str, int] = {}
            for linked in root.special_links:
                aggregated[linked.url] = aggregated.get(linked.url, 0) + linked.count
            fired: set[str] = set()
            for url in sorted(aggregated):
                probability = min(1.0, aggregated[url] / root.count)
                if (
                    clears_threshold(probability, self.special_link_threshold)
                    and url not in predictions
                ):
                    predictions[url] = Prediction(
                        url=url,
                        probability=probability,
                        order=0,
                        source="special_link",
                    )
                    fired.add(url)
            if mark_used and fired:
                root.used = True
                for linked in root.special_links:
                    if linked.url in fired:
                        linked.used = True
        result = list(predictions.values())
        result.sort(key=lambda p: (-p.probability, p.url))
        return result

    def _table_for(self, threshold: float):
        """The compiled table, if it answers this exact prediction request.

        PB predictions depend on both thresholds, so beyond the base
        ``covers`` check the table must have been compiled at this model's
        special-link threshold; any mismatch falls back to the uncompiled
        compact path.
        """
        table = self._compiled_table()
        if (
            table is not None
            and table.covers(threshold)
            and table.special_threshold == self.special_link_threshold
        ):
            return table
        return None

    def _predict_table(
        self,
        matches: "Sequence[tuple[int, int, list[int]]]",
        last_url: str,
        mark_used: bool,
        table,
    ) -> list[Prediction]:
        """Compiled twin of :meth:`_predict_compact`.

        Each level's qualifying candidates were filtered and sorted at
        compile time, so the merge is a dict-dedup over precomputed row
        slices; the special-link step is one root probe plus its
        precomputed row.  The per-URL winner, the marked node set and the
        final ordering are identical to the uncompiled paths.
        """
        store = self._store
        used = store.used
        url_of = self._symbols.url
        predictions: dict[str, Prediction] = {}
        for idx, order, path in matches:
            row, children = table.context_row(idx, order, url_of)
            path_marked = False
            for prediction, child in zip(row, children):
                if prediction.url not in predictions:
                    predictions[prediction.url] = prediction
                    if mark_used:
                        if not path_marked:
                            for visited in path:
                                used[visited] = 1
                            path_marked = True
                        used[child] = 1
        last_sym = self._symbols.get(last_url)
        if last_sym is None:
            root = None
        elif store.has_child_map:
            root = store.roots.get(last_sym)
        else:
            root = table.root_index(last_sym)
        if root is not None:
            row, groups = table.special_row(root, url_of)
            for prediction, group in zip(row, groups):
                if prediction.url not in predictions:
                    predictions[prediction.url] = prediction
                    if mark_used:
                        used[root] = 1
                        for linked in group:
                            used[linked] = 1
        result = list(predictions.values())
        result.sort(key=lambda p: (-p.probability, p.url))
        return result

    def _predict_compact(
        self,
        matches: "Sequence[tuple[int, int, list[int]]]",
        last_url: str,
        threshold: float,
        mark_used: bool,
    ) -> list[Prediction]:
        """Index twin of :meth:`_predict_nodes` over the compact store.

        Child enumeration order differs from the sorted node walk, but
        URLs are unique within a node, levels are consumed longest first
        and the result is re-sorted, so the predictions — and the set of
        nodes marked used — are identical.
        """
        store = self._store
        symbols = self._symbols
        counts = store.counts
        used = store.used
        url_of = symbols.url
        predictions: dict[str, Prediction] = {}
        for idx, order, path in matches:
            total = counts[idx]
            if total == 0:
                continue
            for sym, child in store.iter_children(idx):
                probability = counts[child] / total
                url = url_of(sym)
                if clears_threshold(probability, threshold) and url not in predictions:
                    predictions[url] = Prediction(
                        url=url, probability=probability, order=order
                    )
                    if mark_used:
                        for visited in path:
                            used[visited] = 1
                        used[child] = 1
        last_sym = symbols.get(last_url)
        root = store.roots.get(last_sym) if last_sym is not None else None
        if root is not None and counts[root] > 0:
            links = store.special_links.get(root)
            if links:
                syms = store.syms
                aggregated: dict[str, int] = {}
                for linked in links:
                    url = url_of(syms[linked])
                    aggregated[url] = aggregated.get(url, 0) + counts[linked]
                fired: set[str] = set()
                for url in aggregated:
                    probability = min(1.0, aggregated[url] / counts[root])
                    if (
                        clears_threshold(probability, self.special_link_threshold)
                        and url not in predictions
                    ):
                        predictions[url] = Prediction(
                            url=url,
                            probability=probability,
                            order=0,
                            source="special_link",
                        )
                        fired.add(url)
                if mark_used and fired:
                    used[root] = 1
                    for linked in links:
                        if url_of(syms[linked]) in fired:
                            used[linked] = 1
        result = list(predictions.values())
        result.sort(key=lambda p: (-p.probability, p.url))
        return result
