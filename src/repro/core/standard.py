"""The standard PPM baseline (paper Section 3.2, Figure 1 left).

The standard model *"widely create[s] branches from the historical URL
files"*: for every position of every training session it inserts the
subsequence starting there, truncated to a fixed height.  For the access
sequence ``A B C`` and height 3 this yields exactly Figure 1 left::

    A/1 ── B/1 ── C/1
    B/1 ── C/1
    C/1

With ``max_height=None`` branches grow to the end of each session, which is
the unlimited-height configuration the paper uses in Section 4 to give the
standard model its accuracy upper bound (at enormous space cost — the point
of Tables 1 and 2).
"""

from __future__ import annotations

from repro import params
from repro.core.base import PPMModel
from repro.kernel.bulk import build_ngram_trie, dedup_sequences
from repro.trace.sessions import Session


class StandardPPM(PPMModel):
    """Fixed- or unlimited-height standard PPM prediction tree.

    Parameters
    ----------
    max_height:
        Maximum nodes per branch.  ``None`` (the paper's Section-4
        configuration) lets branches run to the session end;
        ``3`` gives the "3-PPM" used for the Section 3.3 observations.
    """

    name = "standard"
    supports_incremental = True

    def __init__(
        self, max_height: int | None = None, *, compact: bool | None = None
    ) -> None:
        super().__init__(compact=compact)
        if max_height is not None and max_height < 1:
            raise ValueError(f"max_height must be >= 1, got {max_height}")
        self.max_height = max_height

    def _build(self, sessions: list[Session]) -> None:
        for session in sessions:
            urls = session.urls
            for start in range(len(urls)):
                stop = len(urls) if self.max_height is None else start + self.max_height
                self.insert_path(urls[start:stop])

    def _build_compact(self, sessions: list[Session]) -> bool:
        # The standard tree is exactly the n-gram count trie of the corpus
        # (one window per start position, capped at max_height) — built in
        # bulk by the vectorised kernel over deduplicated sessions.
        sequences, weights = dedup_sequences([s.urls for s in sessions])
        intern = self._symbols.intern_sequence
        self._store = build_ngram_trie(
            [intern(seq) for seq in sequences],
            max_height=self.max_height,
            weights=weights,
        )
        return True

    def _fold_compact(self, sessions: list[Session]) -> None:
        """Add sessions' windows into the existing store, click by click."""
        store = self._store
        insert = store.insert_suffix
        intern = self._symbols.intern_sequence
        max_height = self.max_height
        for session in sessions:
            ids = intern(session.urls)
            n = len(ids)
            if max_height is None:
                for start in range(n):
                    insert(ids, start, n)
            else:
                for start in range(n):
                    stop = start + max_height
                    insert(ids, start, n if stop > n else stop)

    def fold_sessions(self, sessions: list[Session]) -> None:
        """Fold new sessions in — the standard tree is strictly additive."""
        if self._store is not None:
            self._fold_compact(sessions)
            self._mutations += 1
            return
        self._build(sessions)
        self._mutations += 1

    @classmethod
    def order_3(cls) -> "StandardPPM":
        """The fixed-height "3-PPM" of the paper's Section 3.3."""
        return cls(max_height=params.STANDARD_FIXED_HEIGHT)
