"""The paper's contribution: popularity grading and the three PPM models.

* :mod:`repro.core.popularity` — relative popularity and the log10 grade
  ladder of Section 3.1;
* :mod:`repro.core.node` — the Markov-prediction-tree node;
* :mod:`repro.core.base` — the shared model interface and trie machinery;
* :mod:`repro.core.standard` — the standard PPM baseline (Fig. 1 left);
* :mod:`repro.core.lrs` — the LRS-PPM baseline after Pitkow & Pirolli;
* :mod:`repro.core.pb` — popularity-based PPM, the paper's contribution
  (Fig. 1 right);
* :mod:`repro.core.pruning` — the two post-build space optimisations;
* :mod:`repro.core.prediction` — longest-match prediction, batch and
  incremental (:class:`PredictionCursor`), over both representations;
* :mod:`repro.core.stats` — node counts, path enumeration, utilisation;
* :mod:`repro.core.extras` — related-work predictors used in ablations.
"""

from repro.core.popularity import PopularityTable, grade_of_relative_popularity
from repro.core.node import TrieNode
from repro.core.base import PPMModel
from repro.core.standard import StandardPPM
from repro.core.lrs import LRSPPM, mine_longest_repeating_subsequences
from repro.core.pb import PopularityBasedPPM
from repro.core.prediction import (
    Prediction,
    PredictionCursor,
    clears_threshold,
    predict_from_context,
)
from repro.core.pruning import (
    prune_by_absolute_count,
    prune_by_relative_probability,
)
from repro.core.serialize import (
    dump_model,
    dumps_model,
    load_model,
    loads_model,
    read_model,
    save_model,
)
from repro.core.online import RollingModelManager, update_model
from repro.core.render import render_forest, render_model, render_node
from repro.core.evaluation import (
    PredictionQuality,
    compare_models,
    evaluate_predictions,
)
from repro.core.stats import (
    leaf_paths,
    max_depth,
    node_count,
    path_utilization,
    reset_usage,
)

__all__ = [
    "PopularityTable",
    "grade_of_relative_popularity",
    "TrieNode",
    "PPMModel",
    "StandardPPM",
    "LRSPPM",
    "mine_longest_repeating_subsequences",
    "PopularityBasedPPM",
    "Prediction",
    "PredictionCursor",
    "clears_threshold",
    "predict_from_context",
    "prune_by_absolute_count",
    "prune_by_relative_probability",
    "dump_model",
    "dumps_model",
    "load_model",
    "loads_model",
    "read_model",
    "save_model",
    "RollingModelManager",
    "update_model",
    "render_forest",
    "render_model",
    "render_node",
    "PredictionQuality",
    "compare_models",
    "evaluate_predictions",
    "leaf_paths",
    "max_depth",
    "node_count",
    "path_utilization",
    "reset_usage",
]
