"""Related-work predictors used as ablation baselines (paper Section 6).

Neither of these appears in the paper's own evaluation; they implement two
approaches the related-work section discusses, so the benchmark harness can
position PB-PPM against them:

* :class:`FirstOrderMarkov` — the order-1 Markov predictor underlying
  Padmanabhan & Mogul's predictive prefetching (equivalent to a standard
  PPM of height 2);
* :class:`TopNPush` — Markatos & Chronaki's "Top-10" approach: the server
  always pushes its currently most popular documents, regardless of
  context.
"""

from __future__ import annotations

from typing import Sequence

from repro import params
from repro.core.base import PPMModel
from repro.core.popularity import PopularityTable
from repro.core.prediction import Prediction, clears_threshold
from repro.kernel.bulk import build_ngram_trie, dedup_sequences
from repro.trace.sessions import Session


class FirstOrderMarkov(PPMModel):
    """Order-1 Markov predictor: P(next | current) only.

    Structurally a standard PPM of branch height 2; kept as its own class
    so experiment reports name it distinctly.
    """

    name = "markov1"
    supports_incremental = True

    def _build(self, sessions: list[Session]) -> None:
        for session in sessions:
            urls = session.urls
            for start in range(len(urls)):
                self.insert_path(urls[start : start + 2])

    def _build_compact(self, sessions: list[Session]) -> bool:
        sequences, weights = dedup_sequences([s.urls for s in sessions])
        intern = self._symbols.intern_sequence
        self._store = build_ngram_trie(
            [intern(seq) for seq in sequences], max_height=2, weights=weights
        )
        return True


class TopNPush(PPMModel):
    """Markatos & Chronaki's Top-N push: always predict the N most popular.

    The "tree" degenerates to the top-N list; predictions ignore context
    entirely.  Probability is each URL's relative popularity, so the usual
    0.25 threshold would suppress almost everything — callers should pass
    ``threshold=0.0`` (the push is unconditional in the original scheme).
    """

    name = "topn"

    def __init__(self, *, n: int = 10) -> None:
        super().__init__()
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self._push_set: list[tuple[str, float]] = []

    def _build(self, sessions: list[Session]) -> None:
        table = PopularityTable.from_sessions(sessions)
        self._push_set = [
            (url, table.relative_popularity(url)) for url in table.top(self.n)
        ]
        # Materialise the push set as height-1 branches so node_count and
        # the shared statistics helpers keep working.
        for url, _ in self._push_set:
            self.insert_path((url,), weight=table.count(url))

    def predict(
        self,
        context: Sequence[str],
        *,
        threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
        mark_used: bool = True,
        escape: bool = False,
    ) -> list[Prediction]:
        self._require_fitted()
        predictions = [
            Prediction(url=url, probability=rp, order=0, source="top_n")
            for url, rp in self._push_set
            if clears_threshold(rp, threshold)
            and (not context or url != context[-1])
        ]
        if mark_used:
            for prediction in predictions:
                node = self.roots.get(prediction.url)
                if node is not None:
                    node.used = True
        predictions.sort(key=lambda p: (-p.probability, p.url))
        return predictions
