"""Prediction-quality evaluation, independent of the cache simulator.

The trace-driven simulator measures the *system* effect of prefetching;
this module measures the *predictor* itself: walk held-out sessions, ask
the model for predictions at every prefix, and score them against what the
client actually did next.  These are the numbers behind statements like
"the prediction accuracy on popular documents is higher than that on less
popular documents" (paper Section 3.3), and they power the diagnostics in
the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro import params
from repro.core.base import PPMModel
from repro.core.popularity import PopularityTable
from repro.trace.sessions import Session


@dataclass
class PredictionQuality:
    """Counters from scoring a model over held-out sessions.

    *Next-step* statistics score a prediction set against the immediately
    following click; *eventual* statistics credit a prediction if its URL
    appears anywhere in the rest of the session (the event that makes a
    prefetch useful).
    """

    steps: int = 0
    steps_with_predictions: int = 0
    predictions_made: int = 0
    next_step_hits: int = 0
    eventual_hits: int = 0
    next_step_covered: int = 0
    per_grade_predictions: dict[int, int] = field(default_factory=dict)
    per_grade_eventual_hits: dict[int, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Share of steps where the model offered any prediction."""
        return self.steps_with_predictions / self.steps if self.steps else 0.0

    @property
    def next_step_recall(self) -> float:
        """Share of steps whose actual next click was predicted."""
        return self.next_step_covered / self.steps if self.steps else 0.0

    @property
    def next_step_precision(self) -> float:
        """Share of predictions matching the immediate next click."""
        if self.predictions_made == 0:
            return 0.0
        return self.next_step_hits / self.predictions_made

    @property
    def eventual_precision(self) -> float:
        """Share of predictions demanded later in the same session."""
        if self.predictions_made == 0:
            return 0.0
        return self.eventual_hits / self.predictions_made

    def eventual_precision_for_grade(self, grade: int) -> float:
        """Eventual precision restricted to predictions of one grade."""
        made = self.per_grade_predictions.get(grade, 0)
        if made == 0:
            return 0.0
        return self.per_grade_eventual_hits.get(grade, 0) / made

    def summary(self) -> dict[str, float | int]:
        """Headline numbers for report tables."""
        return {
            "steps": self.steps,
            "coverage": round(self.coverage, 4),
            "next_step_recall": round(self.next_step_recall, 4),
            "next_step_precision": round(self.next_step_precision, 4),
            "eventual_precision": round(self.eventual_precision, 4),
        }


def evaluate_predictions(
    model: PPMModel,
    sessions: Iterable[Session],
    *,
    threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
    popularity: PopularityTable | None = None,
    max_context: int = 20,
) -> PredictionQuality:
    """Score a fitted model over held-out sessions.

    At each prefix of each session the model predicts; the step after the
    prefix is the ground-truth next click.  Usage flags are not touched
    (``mark_used=False``), so evaluation never perturbs utilisation
    statistics.
    """
    quality = PredictionQuality()
    for session in sessions:
        urls = session.urls
        for index in range(len(urls) - 1):
            context: Sequence[str] = urls[max(0, index - max_context + 1) : index + 1]
            predictions = model.predict(
                context, threshold=threshold, mark_used=False
            )
            quality.steps += 1
            if predictions:
                quality.steps_with_predictions += 1
            future = set(urls[index + 1 :])
            next_url = urls[index + 1]
            matched_next = False
            for prediction in predictions:
                quality.predictions_made += 1
                if prediction.url == next_url:
                    quality.next_step_hits += 1
                    matched_next = True
                if prediction.url in future:
                    quality.eventual_hits += 1
                if popularity is not None:
                    grade = popularity.grade(prediction.url)
                    quality.per_grade_predictions[grade] = (
                        quality.per_grade_predictions.get(grade, 0) + 1
                    )
                    if prediction.url in future:
                        quality.per_grade_eventual_hits[grade] = (
                            quality.per_grade_eventual_hits.get(grade, 0) + 1
                        )
            if matched_next:
                quality.next_step_covered += 1
    return quality


def compare_models(
    models: dict[str, PPMModel],
    sessions: Sequence[Session],
    *,
    threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
    popularity: PopularityTable | None = None,
) -> dict[str, PredictionQuality]:
    """Evaluate several fitted models over the same held-out sessions."""
    return {
        name: evaluate_predictions(
            model, sessions, threshold=threshold, popularity=popularity
        )
        for name, model in models.items()
    }
