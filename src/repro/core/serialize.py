"""Model persistence: save and load fitted prediction trees.

A prefetching server rebuilds its model nightly but must survive restarts
in between; this module serialises any :class:`~repro.core.base.PPMModel`
forest to a compact JSON document and restores it losslessly — node
structure, counts, usage flags and PB-PPM special links included.

The format is deliberately model-agnostic: the forest is stored together
with the model's class name and constructor-relevant attributes, and
:func:`load_model` reconstructs the right class.  Popularity tables are
embedded for PB-PPM so a loaded model predicts identically to the fitted
one.
"""

from __future__ import annotations

import json
import struct
from typing import Any, IO

from repro import params
from repro.core.base import PPMModel
from repro.core.extras import FirstOrderMarkov, TopNPush
from repro.core.lrs import LRSPPM
from repro.core.node import TrieNode
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.core.standard import StandardPPM
from repro.errors import ModelError
from repro.kernel.buffer import trie_from_buffer, trie_to_buffer
from repro.kernel.compact import CompactTrie
from repro.kernel.symbols import SymbolTable
from repro.validation import (
    checksum,
    require_checksum,
    require_length,
    require_magic,
    require_version,
)

#: Format version written into every document.
FORMAT_VERSION = 1

#: Magic and format version of the binary model buffer (the shared-memory
#: serving plane; see :func:`model_to_buffer`).
MODEL_BUFFER_MAGIC = b"RPBM"
MODEL_BUFFER_VERSION = 2

_MODEL_HEADER = struct.Struct("<4sIIIQQQ")


def _node_to_dict(node: TrieNode, link_paths: dict[int, list[str]]) -> dict:
    """Serialise one subtree; special links are recorded as paths."""
    payload: dict[str, Any] = {"u": node.url, "c": node.count}
    if node.used:
        payload["used"] = True
    if node.children:
        payload["ch"] = [
            _node_to_dict(node.children[url], link_paths)
            for url in sorted(node.children)
        ]
    return payload


def _collect_link_paths(roots: dict[str, TrieNode]) -> dict[str, list[list[str]]]:
    """Special links per root, each encoded as the linked node's path."""
    paths: dict[str, list[list[str]]] = {}

    def find_path(root: TrieNode, target: TrieNode) -> list[str] | None:
        stack: list[tuple[TrieNode, list[str]]] = [(root, [root.url])]
        while stack:
            node, path = stack.pop()
            if node is target:
                return path
            for child in node.children.values():
                stack.append((child, path + [child.url]))
        return None

    for url in sorted(roots):
        root = roots[url]
        if root.special_links:
            encoded = []
            for linked in root.special_links:
                path = find_path(root, linked)
                if path is not None:
                    encoded.append(path)
            if encoded:
                paths[url] = encoded
    return paths


def _node_from_dict(payload: dict) -> TrieNode:
    node = TrieNode(payload["u"], payload.get("c", 0))
    node.used = bool(payload.get("used", False))
    for child_payload in payload.get("ch", ()):
        child = _node_from_dict(child_payload)
        node.children[child.url] = child
    return node


def _model_metadata(model: PPMModel) -> dict[str, Any]:
    """Constructor-relevant attributes per model class."""
    if isinstance(model, StandardPPM):
        return {"max_height": model.max_height}
    if isinstance(model, LRSPPM):
        return {"min_repeats": model.min_repeats, "max_length": model.max_length}
    if isinstance(model, PopularityBasedPPM):
        return {
            "grade_heights": list(model.grade_heights),
            "absolute_max_height": model.absolute_max_height,
            "prune_relative_probability": model.prune_relative_probability,
            "prune_absolute_count": model.prune_absolute_count,
            "special_link_threshold": model.special_link_threshold,
            "popularity_counts": {
                url: model.popularity.count(url)
                for url in model.popularity.ranked_urls()
            },
        }
    if isinstance(model, TopNPush):
        return {"n": model.n, "push_set": list(model._push_set)}
    return {}


def dump_model(model: PPMModel) -> dict[str, Any]:
    """Serialise a fitted model to a JSON-compatible dict.

    Works on either forest representation: a compact model is converted
    node-for-node for the dump without switching the model itself, so the
    document — children sorted, special links in creation order — is
    identical to the one its node-forest twin produces.
    """
    if not model.is_fitted:
        raise ModelError("cannot serialise an unfitted model")
    forest = model.to_node_forest()
    return {
        "format": FORMAT_VERSION,
        "class": type(model).__name__,
        "meta": _model_metadata(model),
        "roots": [_node_to_dict(forest[url], {}) for url in sorted(forest)],
        "special_links": _collect_link_paths(forest),
    }


def dumps_model(model: PPMModel) -> str:
    """Serialise a fitted model to a JSON string."""
    return json.dumps(dump_model(model), separators=(",", ":"))


def save_model(model: PPMModel, handle: IO[str]) -> None:
    """Write a fitted model to an open text handle."""
    json.dump(dump_model(model), handle, separators=(",", ":"))


_CLASSES = {
    cls.__name__: cls
    for cls in (StandardPPM, LRSPPM, PopularityBasedPPM, FirstOrderMarkov, TopNPush)
}


def _construct(class_name: str, meta: dict[str, Any]) -> PPMModel:
    if class_name == "StandardPPM":
        return StandardPPM(max_height=meta.get("max_height"))
    if class_name == "LRSPPM":
        return LRSPPM(
            min_repeats=meta.get("min_repeats", 2),
            max_length=meta.get("max_length"),
        )
    if class_name == "PopularityBasedPPM":
        popularity = PopularityTable(meta.get("popularity_counts", {}))
        return PopularityBasedPPM(
            popularity,
            grade_heights=tuple(meta.get("grade_heights", (1, 3, 5, 7))),
            absolute_max_height=meta.get("absolute_max_height", 9),
            prune_relative_probability=meta.get("prune_relative_probability"),
            prune_absolute_count=meta.get("prune_absolute_count"),
            special_link_threshold=meta.get("special_link_threshold", 0.05),
        )
    if class_name == "FirstOrderMarkov":
        return FirstOrderMarkov()
    if class_name == "TopNPush":
        model = TopNPush(n=meta.get("n", 10))
        model._push_set = [tuple(entry) for entry in meta.get("push_set", [])]
        return model
    raise ModelError(f"unknown model class in document: {class_name!r}")


def load_model(payload: dict[str, Any]) -> PPMModel:
    """Reconstruct a model from a dict produced by :func:`dump_model`.

    Every malformation — wrong top-level type, missing keys, wrong
    ``FORMAT_VERSION``, broken node payloads — surfaces as
    :class:`~repro.errors.ModelError`, so callers restoring persisted
    state (the serving boot path in particular) fail with one clear error
    type instead of a raw ``KeyError``/``TypeError``.
    """
    if not isinstance(payload, dict):
        raise ModelError(
            f"model document must be a JSON object, got {type(payload).__name__}"
        )
    require_version(payload.get("format"), FORMAT_VERSION, "model format")
    if "class" not in payload:
        raise ModelError("model document is missing its 'class' entry")
    try:
        model = _construct(payload["class"], payload.get("meta", {}))
        roots: dict[str, TrieNode] = {}
        for root_payload in payload.get("roots", ()):
            root = _node_from_dict(root_payload)
            roots[root.url] = root
        model._roots = roots
        # Re-wire special links from their recorded paths.
        for root_url, paths in payload.get("special_links", {}).items():
            root = roots.get(root_url)
            if root is None:
                continue
            for path in paths:
                node: TrieNode | None = root
                for url in path[1:]:
                    node = node.child(url) if node is not None else None
                if node is not None:
                    root.special_links.append(node)
    except ModelError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ModelError(f"malformed model document: {exc!r}") from exc
    model._fitted = True
    return model


def loads_model(text: str) -> PPMModel:
    """Reconstruct a model from a JSON string.

    Raises :class:`~repro.errors.ModelError` when ``text`` is not valid
    JSON or not a valid model document.
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ModelError(f"model document is not valid JSON: {exc}") from exc
    return load_model(payload)


def _model_store(model: PPMModel) -> tuple[CompactTrie, SymbolTable]:
    """The model's compact store, converting a node forest without
    switching the model's own representation."""
    if model._store is not None:
        return model._store, model._symbols
    symbols = SymbolTable()
    return CompactTrie.from_node_forest(model._roots, symbols), symbols


def model_to_buffer(model: PPMModel) -> bytes:
    """Serialise a fitted model into one contiguous binary buffer.

    The shared-memory twin of :func:`dump_model`: a fixed header (magic,
    version, CRC-32 checksum), a JSON metadata blob (model class,
    constructor metadata, the interned URL table), the compact trie's
    :func:`~repro.kernel.buffer.trie_to_buffer` block and — when
    :data:`repro.params.COMPILED_PREDICT` is on — the compiled prediction
    table's :meth:`~repro.kernel.predict_table.PredictTable.to_buffer`
    block.  One such buffer is what ``repro.serve.multiproc`` writes into
    a shared-memory segment for every worker process to map read-only;
    compiling here, once, at serialisation time is what lets workers map
    the table zero-copy and never compile themselves.
    """
    if not model.is_fitted:
        raise ModelError("cannot serialise an unfitted model")
    store, symbols = _model_store(model)
    if len(store.syms) != store.node_count:
        # Densify once, up front, so the trie block and the compiled
        # table are built from the same node numbering.
        store = store.compacted()
    meta = json.dumps(
        {
            "class": type(model).__name__,
            "meta": _model_metadata(model),
            "urls": list(symbols.urls()),
        },
        separators=(",", ":"),
    ).encode()
    pad = (-len(meta)) % 8
    trie = trie_to_buffer(store)
    table_blob = b""
    if params.COMPILED_PREDICT:
        if store is model._store:
            # Serialising the model's own (dense) store: go through the
            # model's cache so the supervisor compiles at most once even
            # when it both serves and serialises the same model.
            table = model._compiled_table()
        else:
            from repro.kernel.predict_table import compile_predict_table

            table = compile_predict_table(
                store,
                symbols,
                special_threshold=getattr(
                    model, "special_link_threshold", params.SPECIAL_LINK_THRESHOLD
                ),
            )
        if table is not None:
            table_blob = table.to_buffer()
    payload = meta + b"\x00" * pad + trie + table_blob
    header = _MODEL_HEADER.pack(
        MODEL_BUFFER_MAGIC,
        MODEL_BUFFER_VERSION,
        checksum(payload),
        0,
        len(meta),
        len(trie),
        len(table_blob),
    )
    return header + payload


def model_from_buffer(
    data: bytes | bytearray | memoryview, *, copy: bool = False
) -> PPMModel:
    """Reconstruct a model from :func:`model_to_buffer` bytes.

    Zero-copy by default: the restored model's trie arrays are read-only
    views into ``data`` (keep the underlying segment alive for the
    model's lifetime, and treat the model as read-only — serve it, don't
    fold into it).  ``copy=True`` builds a private mutable model.

    Every malformation — bad magic, unsupported version, truncation,
    checksum mismatch, broken metadata — raises
    :class:`~repro.errors.ModelError`, through the same validation
    helpers :func:`load_model` uses.
    """
    view = memoryview(data).toreadonly().cast("B")
    require_length(len(view), _MODEL_HEADER.size, "model buffer")
    magic, version, stored_crc, _reserved, meta_len, trie_len, table_len = (
        _MODEL_HEADER.unpack_from(view)
    )
    require_magic(magic, MODEL_BUFFER_MAGIC, "model buffer")
    require_version(version, MODEL_BUFFER_VERSION, "model buffer version")
    pad = (-meta_len) % 8
    payload_len = meta_len + pad + trie_len + table_len
    require_length(len(view) - _MODEL_HEADER.size, payload_len, "model buffer")
    payload = view[_MODEL_HEADER.size : _MODEL_HEADER.size + payload_len]
    require_checksum(stored_crc, checksum(payload), "model buffer")
    try:
        meta = json.loads(bytes(payload[:meta_len]))
    except ValueError as exc:
        raise ModelError(f"model buffer metadata is not valid JSON: {exc}") from exc
    try:
        model = _construct(meta["class"], meta.get("meta", {}))
        symbols = SymbolTable(meta.get("urls", ()))
    except ModelError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ModelError(f"malformed model buffer metadata: {exc!r}") from exc
    trie_end = meta_len + pad + trie_len
    model._store = trie_from_buffer(payload[meta_len + pad : trie_end], copy=copy)
    model._symbols = symbols
    model._roots = {}
    model._fitted = True
    model._mutations += 1
    if table_len:
        from repro.kernel.predict_table import PredictTable

        # Adopt the precompiled prediction table (zero-copy views into the
        # same buffer) and pin it to the post-restore mutation counter so
        # the model never recompiles what the supervisor already shipped.
        model._table = PredictTable.from_buffer(payload[trie_end:])
        model._table_mutations = model._mutations
    return model


def read_model(handle: IO[str]) -> PPMModel:
    """Read a model from an open text handle.

    Raises :class:`~repro.errors.ModelError` when the stream is not valid
    JSON or not a valid model document.
    """
    try:
        payload = json.load(handle)
    except ValueError as exc:
        raise ModelError(f"model document is not valid JSON: {exc}") from exc
    return load_model(payload)
