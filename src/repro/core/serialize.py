"""Model persistence: save and load fitted prediction trees.

A prefetching server rebuilds its model nightly but must survive restarts
in between; this module serialises any :class:`~repro.core.base.PPMModel`
forest to a compact JSON document and restores it losslessly — node
structure, counts, usage flags and PB-PPM special links included.

The format is deliberately model-agnostic: the forest is stored together
with the model's class name and constructor-relevant attributes, and
:func:`load_model` reconstructs the right class.  Popularity tables are
embedded for PB-PPM so a loaded model predicts identically to the fitted
one.
"""

from __future__ import annotations

import json
from typing import Any, IO

from repro.core.base import PPMModel
from repro.core.extras import FirstOrderMarkov, TopNPush
from repro.core.lrs import LRSPPM
from repro.core.node import TrieNode
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.core.standard import StandardPPM
from repro.errors import ModelError

#: Format version written into every document.
FORMAT_VERSION = 1


def _node_to_dict(node: TrieNode, link_paths: dict[int, list[str]]) -> dict:
    """Serialise one subtree; special links are recorded as paths."""
    payload: dict[str, Any] = {"u": node.url, "c": node.count}
    if node.used:
        payload["used"] = True
    if node.children:
        payload["ch"] = [
            _node_to_dict(node.children[url], link_paths)
            for url in sorted(node.children)
        ]
    return payload


def _collect_link_paths(roots: dict[str, TrieNode]) -> dict[str, list[list[str]]]:
    """Special links per root, each encoded as the linked node's path."""
    paths: dict[str, list[list[str]]] = {}

    def find_path(root: TrieNode, target: TrieNode) -> list[str] | None:
        stack: list[tuple[TrieNode, list[str]]] = [(root, [root.url])]
        while stack:
            node, path = stack.pop()
            if node is target:
                return path
            for child in node.children.values():
                stack.append((child, path + [child.url]))
        return None

    for url in sorted(roots):
        root = roots[url]
        if root.special_links:
            encoded = []
            for linked in root.special_links:
                path = find_path(root, linked)
                if path is not None:
                    encoded.append(path)
            if encoded:
                paths[url] = encoded
    return paths


def _node_from_dict(payload: dict) -> TrieNode:
    node = TrieNode(payload["u"], payload.get("c", 0))
    node.used = bool(payload.get("used", False))
    for child_payload in payload.get("ch", ()):
        child = _node_from_dict(child_payload)
        node.children[child.url] = child
    return node


def _model_metadata(model: PPMModel) -> dict[str, Any]:
    """Constructor-relevant attributes per model class."""
    if isinstance(model, StandardPPM):
        return {"max_height": model.max_height}
    if isinstance(model, LRSPPM):
        return {"min_repeats": model.min_repeats, "max_length": model.max_length}
    if isinstance(model, PopularityBasedPPM):
        return {
            "grade_heights": list(model.grade_heights),
            "absolute_max_height": model.absolute_max_height,
            "prune_relative_probability": model.prune_relative_probability,
            "prune_absolute_count": model.prune_absolute_count,
            "special_link_threshold": model.special_link_threshold,
            "popularity_counts": {
                url: model.popularity.count(url)
                for url in model.popularity.ranked_urls()
            },
        }
    if isinstance(model, TopNPush):
        return {"n": model.n, "push_set": list(model._push_set)}
    return {}


def dump_model(model: PPMModel) -> dict[str, Any]:
    """Serialise a fitted model to a JSON-compatible dict.

    Works on either forest representation: a compact model is converted
    node-for-node for the dump without switching the model itself, so the
    document — children sorted, special links in creation order — is
    identical to the one its node-forest twin produces.
    """
    if not model.is_fitted:
        raise ModelError("cannot serialise an unfitted model")
    forest = model.to_node_forest()
    return {
        "format": FORMAT_VERSION,
        "class": type(model).__name__,
        "meta": _model_metadata(model),
        "roots": [_node_to_dict(forest[url], {}) for url in sorted(forest)],
        "special_links": _collect_link_paths(forest),
    }


def dumps_model(model: PPMModel) -> str:
    """Serialise a fitted model to a JSON string."""
    return json.dumps(dump_model(model), separators=(",", ":"))


def save_model(model: PPMModel, handle: IO[str]) -> None:
    """Write a fitted model to an open text handle."""
    json.dump(dump_model(model), handle, separators=(",", ":"))


_CLASSES = {
    cls.__name__: cls
    for cls in (StandardPPM, LRSPPM, PopularityBasedPPM, FirstOrderMarkov, TopNPush)
}


def _construct(class_name: str, meta: dict[str, Any]) -> PPMModel:
    if class_name == "StandardPPM":
        return StandardPPM(max_height=meta.get("max_height"))
    if class_name == "LRSPPM":
        return LRSPPM(
            min_repeats=meta.get("min_repeats", 2),
            max_length=meta.get("max_length"),
        )
    if class_name == "PopularityBasedPPM":
        popularity = PopularityTable(meta.get("popularity_counts", {}))
        return PopularityBasedPPM(
            popularity,
            grade_heights=tuple(meta.get("grade_heights", (1, 3, 5, 7))),
            absolute_max_height=meta.get("absolute_max_height", 9),
            prune_relative_probability=meta.get("prune_relative_probability"),
            prune_absolute_count=meta.get("prune_absolute_count"),
            special_link_threshold=meta.get("special_link_threshold", 0.05),
        )
    if class_name == "FirstOrderMarkov":
        return FirstOrderMarkov()
    if class_name == "TopNPush":
        model = TopNPush(n=meta.get("n", 10))
        model._push_set = [tuple(entry) for entry in meta.get("push_set", [])]
        return model
    raise ModelError(f"unknown model class in document: {class_name!r}")


def load_model(payload: dict[str, Any]) -> PPMModel:
    """Reconstruct a model from a dict produced by :func:`dump_model`.

    Every malformation — wrong top-level type, missing keys, wrong
    ``FORMAT_VERSION``, broken node payloads — surfaces as
    :class:`~repro.errors.ModelError`, so callers restoring persisted
    state (the serving boot path in particular) fail with one clear error
    type instead of a raw ``KeyError``/``TypeError``.
    """
    if not isinstance(payload, dict):
        raise ModelError(
            f"model document must be a JSON object, got {type(payload).__name__}"
        )
    if payload.get("format") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format {payload.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    if "class" not in payload:
        raise ModelError("model document is missing its 'class' entry")
    try:
        model = _construct(payload["class"], payload.get("meta", {}))
        roots: dict[str, TrieNode] = {}
        for root_payload in payload.get("roots", ()):
            root = _node_from_dict(root_payload)
            roots[root.url] = root
        model._roots = roots
        # Re-wire special links from their recorded paths.
        for root_url, paths in payload.get("special_links", {}).items():
            root = roots.get(root_url)
            if root is None:
                continue
            for path in paths:
                node: TrieNode | None = root
                for url in path[1:]:
                    node = node.child(url) if node is not None else None
                if node is not None:
                    root.special_links.append(node)
    except ModelError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ModelError(f"malformed model document: {exc!r}") from exc
    model._fitted = True
    return model


def loads_model(text: str) -> PPMModel:
    """Reconstruct a model from a JSON string.

    Raises :class:`~repro.errors.ModelError` when ``text`` is not valid
    JSON or not a valid model document.
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ModelError(f"model document is not valid JSON: {exc}") from exc
    return load_model(payload)


def read_model(handle: IO[str]) -> PPMModel:
    """Read a model from an open text handle.

    Raises :class:`~repro.errors.ModelError` when the stream is not valid
    JSON or not a valid model document.
    """
    try:
        payload = json.load(handle)
    except ValueError as exc:
        raise ModelError(f"model document is not valid JSON: {exc}") from exc
    return load_model(payload)
