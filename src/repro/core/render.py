"""ASCII rendering of prediction trees, for inspection and debugging.

Produces the Figure-1-style views used in ``examples/model_inspection.py``:
one line per node with its traversal count, children indented beneath it,
and PB-PPM special links marked with ``~~>``.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.base import PPMModel
from repro.core.node import TrieNode


def render_node(
    node: TrieNode,
    *,
    indent: str = "",
    max_depth: int | None = None,
    show_used: bool = False,
) -> list[str]:
    """Render one subtree as a list of lines."""
    links = ""
    if node.special_links:
        grouped: dict[str, int] = {}
        for linked in node.special_links:
            grouped[linked.url] = grouped.get(linked.url, 0) + 1
        links = "  ~~> " + ", ".join(
            url if count == 1 else f"{url} (x{count})"
            for url, count in sorted(grouped.items())
        )
    used = " *" if show_used and node.used else ""
    lines = [f"{indent}{node.url}/{node.count}{links}{used}"]
    if max_depth is not None and max_depth <= 1:
        if node.children:
            lines.append(f"{indent}    …")
        return lines
    for url in sorted(node.children):
        lines.extend(
            render_node(
                node.children[url],
                indent=indent + "    ",
                max_depth=None if max_depth is None else max_depth - 1,
                show_used=show_used,
            )
        )
    return lines


def render_forest(
    roots: Mapping[str, TrieNode],
    *,
    max_depth: int | None = None,
    max_roots: int | None = None,
    show_used: bool = False,
) -> str:
    """Render a whole forest; roots ordered by descending count.

    ``max_depth`` truncates deep branches (an ellipsis marks the cut);
    ``max_roots`` keeps only the busiest roots, noting how many were
    omitted.
    """
    ordered = sorted(roots, key=lambda url: (-roots[url].count, url))
    omitted = 0
    if max_roots is not None and len(ordered) > max_roots:
        omitted = len(ordered) - max_roots
        ordered = ordered[:max_roots]
    lines: list[str] = []
    for url in ordered:
        lines.extend(
            render_node(
                roots[url], max_depth=max_depth, show_used=show_used
            )
        )
    if omitted:
        lines.append(f"(… {omitted} more roots)")
    return "\n".join(lines)


def render_model(
    model: PPMModel,
    *,
    max_depth: int | None = None,
    max_roots: int | None = 20,
    show_used: bool = False,
) -> str:
    """Render a fitted model with a header line."""
    header = f"{type(model).__name__} — {model.node_count} nodes"
    body = render_forest(
        model.roots,
        max_depth=max_depth,
        max_roots=max_roots,
        show_used=show_used,
    )
    return f"{header}\n{body}" if body else header
