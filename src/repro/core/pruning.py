"""The two post-build space optimisations of paper Section 3.4.

1. **Relative-probability cut** — examine each non-root node; if its
   relative access probability (its count over its parent's count) is lower
   than a cut-off (5-10 % in the paper's experiments), remove the node and
   the branches linked under it.
2. **Absolute-count cut** — remove each node whose absolute number of
   accesses is at most one (applied for some traces, e.g. UCB-CS).

Both passes mutate the forest in place and return the number of nodes
removed.  After a subtree is removed, any PB-PPM special links that pointed
into it are dropped as well, so the tree never dangles.
"""

from __future__ import annotations

from repro import params
from repro.core.node import TrieNode


def _collect_ids(node: TrieNode, into: set[int]) -> None:
    for descendant in node.walk():
        into.add(id(descendant))


def _drop_dangling_special_links(
    roots: dict[str, TrieNode], removed_ids: set[int]
) -> None:
    if not removed_ids:
        return
    for root in roots.values():
        if root.special_links:
            root.special_links = [
                node for node in root.special_links if id(node) not in removed_ids
            ]


def prune_by_relative_probability(
    roots: dict[str, TrieNode],
    *,
    cutoff: float = params.PRUNE_RELATIVE_PROBABILITY,
) -> int:
    """Remove non-root nodes with relative access probability below ``cutoff``.

    Returns the number of nodes removed (subtrees count in full).  Roots
    have no parent and are never touched by this pass.
    """
    if not 0.0 <= cutoff <= 1.0:
        raise ValueError(f"cutoff must be within [0, 1]: {cutoff}")
    removed_ids: set[int] = set()

    def visit(node: TrieNode) -> None:
        for url in list(node.children):
            child = node.children[url]
            probability = child.count / node.count if node.count else 0.0
            if probability < cutoff:
                _collect_ids(child, removed_ids)
                del node.children[url]
            else:
                visit(child)

    for root in roots.values():
        visit(root)
    _drop_dangling_special_links(roots, removed_ids)
    return len(removed_ids)


def prune_by_absolute_count(
    roots: dict[str, TrieNode],
    *,
    max_count: int = params.PRUNE_ABSOLUTE_COUNT,
) -> int:
    """Remove every node accessed at most ``max_count`` times.

    A root failing the test is removed with its whole branch set; interior
    failures drop their subtree (counts are monotone non-increasing along a
    branch, so a failing node's descendants all fail too).
    """
    if max_count < 0:
        raise ValueError(f"max_count must be >= 0: {max_count}")
    removed_ids: set[int] = set()

    def visit(node: TrieNode) -> None:
        for url in list(node.children):
            child = node.children[url]
            if child.count <= max_count:
                _collect_ids(child, removed_ids)
                del node.children[url]
            else:
                visit(child)

    for url in list(roots):
        root = roots[url]
        if root.count <= max_count:
            _collect_ids(root, removed_ids)
            del roots[url]
        else:
            visit(root)
    _drop_dangling_special_links(roots, removed_ids)
    return len(removed_ids)
