"""Tree statistics: node counts, path enumeration, utilisation (Figure 2).

The paper's space metric is the number of stored URL nodes; its
path-utilisation metric defines a *path* as "a URL sequence from the root
to an ending leaf" and marks a path useful once it has been used for a
prediction.  The prediction engine sets :attr:`TrieNode.used` on every node
it touches; a root-to-leaf path counts as used when its leaf was reached.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.node import TrieNode


def node_count(roots: Mapping[str, TrieNode]) -> int:
    """Total stored URL nodes — the paper's space metric."""
    return sum(root.subtree_size() for root in roots.values())


def max_depth(roots: Mapping[str, TrieNode]) -> int:
    """Height of the tallest branch in the forest (0 when empty)."""

    def depth_of(node: TrieNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + max(depth_of(child) for child in node.children.values())

    if not roots:
        return 0
    return max(depth_of(root) for root in roots.values())


def leaf_paths(roots: Mapping[str, TrieNode]) -> Iterator[tuple[str, ...]]:
    """Yield every root-to-leaf URL path, deterministic order."""

    def descend(node: TrieNode, prefix: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
        if node.is_leaf:
            yield prefix
            return
        for url in sorted(node.children):
            yield from descend(node.children[url], prefix + (url,))

    for url in sorted(roots):
        yield from descend(roots[url], (url,))


def _leaves(roots: Mapping[str, TrieNode]) -> Iterator[TrieNode]:
    for root in roots.values():
        for node in root.walk():
            if node.is_leaf:
                yield node


def path_count(roots: Mapping[str, TrieNode]) -> int:
    """Number of root-to-leaf paths (equals the number of leaves)."""
    return sum(1 for _ in _leaves(roots))


def used_path_count(roots: Mapping[str, TrieNode]) -> int:
    """Number of paths whose leaf participated in a prediction."""
    return sum(1 for leaf in _leaves(roots) if leaf.used)


def path_utilization(roots: Mapping[str, TrieNode]) -> float:
    """Fraction of root-to-leaf paths used for predictions (Figure 2 right).

    Returns 0.0 for an empty forest.
    """
    total = 0
    used = 0
    for leaf in _leaves(roots):
        total += 1
        if leaf.used:
            used += 1
    return used / total if total else 0.0


def reset_usage(roots: Mapping[str, TrieNode]) -> None:
    """Clear every node's used flag (before a fresh prediction phase)."""
    for root in roots.values():
        for node in root.walk():
            node.used = False


def count_histogram(roots: Mapping[str, TrieNode]) -> dict[int, int]:
    """Histogram of node access counts (diagnostics for pruning studies)."""
    histogram: dict[int, int] = {}
    for root in roots.values():
        for node in root.walk():
            histogram[node.count] = histogram.get(node.count, 0) + 1
    return histogram
