"""Relative popularity and the paper's log10 grade ladder (Section 3.1).

For a URL *u* the **relative popularity** is::

    RP(u) = accesses(u) / accesses(most popular URL)

and the **popularity grade** ranks RP on a log10 ladder:

=====  =====================
grade  relative popularity
=====  =====================
3      RP >= 0.1
2      0.01  <= RP < 0.1
1      0.001 <= RP < 0.01
0      RP < 0.001
=====  =====================

The server computes the table from *historical* accesses only (the training
days); URLs never seen in training have relative popularity 0 and grade 0.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro import params
from repro.trace.record import Request
from repro.trace.sessions import Session


def grade_of_relative_popularity(
    rp: float,
    *,
    boundaries: Sequence[float] = params.GRADE_BOUNDARIES,
) -> int:
    """Map a relative popularity in [0, 1] to a grade.

    ``boundaries`` must be strictly decreasing; the default is the paper's
    (0.1, 0.01, 0.001) ladder, giving grades ``len(boundaries)`` (most
    popular) down to 0.
    """
    if not 0.0 <= rp <= 1.0:
        raise ValueError(f"relative popularity out of [0, 1]: {rp}")
    for offset, boundary in enumerate(boundaries):
        if rp >= boundary:
            return len(boundaries) - offset
    return 0


class PopularityTable:
    """Access counts, relative popularities and grades for a URL universe.

    Parameters
    ----------
    counts:
        Access count per URL, typically
        :attr:`repro.trace.dataset.TrainTestSplit.train_url_counts`.
    boundaries:
        Grade boundaries, strictly decreasing (paper default).
    """

    def __init__(
        self,
        counts: Mapping[str, int],
        *,
        boundaries: Sequence[float] = params.GRADE_BOUNDARIES,
    ) -> None:
        if any(c < 0 for c in counts.values()):
            raise ValueError("negative access count")
        if list(boundaries) != sorted(boundaries, reverse=True) or len(
            set(boundaries)
        ) != len(tuple(boundaries)):
            raise ValueError(f"boundaries must be strictly decreasing: {boundaries}")
        self._counts: dict[str, int] = dict(counts)
        self._boundaries = tuple(boundaries)
        self._max_count = max(self._counts.values(), default=0)
        self._grades: dict[str, int] = {
            url: grade_of_relative_popularity(
                (count / self._max_count) if self._max_count else 0.0,
                boundaries=self._boundaries,
            )
            for url, count in self._counts.items()
        }

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_requests(cls, requests: Iterable[Request], **kwargs) -> "PopularityTable":
        """Build a table by counting page-view accesses."""
        counts: dict[str, int] = {}
        for request in requests:
            counts[request.url] = counts.get(request.url, 0) + 1
        return cls(counts, **kwargs)

    @classmethod
    def from_sessions(cls, sessions: Iterable[Session], **kwargs) -> "PopularityTable":
        """Build a table by counting accesses across session URL sequences."""
        counts: dict[str, int] = {}
        for session in sessions:
            for url in session.urls:
                counts[url] = counts.get(url, 0) + 1
        return cls(counts, **kwargs)

    # -- queries ---------------------------------------------------------------

    @property
    def max_grade(self) -> int:
        """The top grade on this table's ladder (3 with paper defaults)."""
        return len(self._boundaries)

    @property
    def most_popular_count(self) -> int:
        """Access count of the most popular URL (0 for an empty table)."""
        return self._max_count

    def count(self, url: str) -> int:
        """Historical access count of a URL (0 if never seen)."""
        return self._counts.get(url, 0)

    def relative_popularity(self, url: str) -> float:
        """RP(url) in [0, 1]; 0 for URLs never seen in training."""
        if self._max_count == 0:
            return 0.0
        return self._counts.get(url, 0) / self._max_count

    def grade(self, url: str) -> int:
        """Popularity grade of a URL; unseen URLs grade 0."""
        return self._grades.get(url, 0)

    def urls_of_grade(self, grade: int) -> frozenset[str]:
        """All URLs carrying the given grade."""
        return frozenset(u for u, g in self._grades.items() if g == grade)

    def grade_histogram(self) -> dict[int, int]:
        """Number of URLs per grade, for every grade 0..max_grade."""
        histogram = {g: 0 for g in range(self.max_grade + 1)}
        for grade in self._grades.values():
            histogram[grade] += 1
        return histogram

    def ranked_urls(self) -> list[str]:
        """URLs from most to least popular (count desc, then name)."""
        return sorted(self._counts, key=lambda u: (-self._counts[u], u))

    def top(self, n: int) -> list[str]:
        """The ``n`` most popular URLs (Markatos' Top-N push set)."""
        return self.ranked_urls()[:n]

    def is_popular(self, url: str, *, min_grade: int = 2) -> bool:
        """Convenience predicate: grade at or above ``min_grade``.

        The paper's Figure 2 counts "popular documents" among prefetched
        files; grades 2-3 (top two decades of relative popularity) is the
        reading we adopt for that population.
        """
        return self.grade(url) >= min_grade

    def __contains__(self, url: str) -> bool:
        return url in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"PopularityTable(urls={len(self)}, "
            f"max_count={self._max_count}, histogram={self.grade_histogram()})"
        )
