"""The LRS-PPM baseline: longest repeating subsequences (Section 3.2).

After Pitkow & Pirolli (USENIX '99), the model keeps only subsequences that
*repeat* — occur at least twice across the training sessions — and, among
those, the *longest* ones (a repeating subsequence no extension of which
still repeats).  Because the model must answer longest-*suffix* matches, a
kept pattern is stored together with all of its suffixes, each "cut and
paste into multiple sub-branches starting from different URLs" — the node
duplication the paper identifies as the reason LRS space grows with the
number of training days.

Implementation: an Apriori-style level-wise trie build.  Pass *k* counts
the occurrences of length-*k* subsequences whose length-(k-1) prefix is
already frequent, so subsequences that occur once are never materialised
beyond one trie level.  Because every start position of every session is
counted, the resulting frequent-subsequence trie already contains every
suffix of every LRS as a root path — it *is* the prediction tree.
"""

from __future__ import annotations

from repro import params
from repro.core.base import PPMModel
from repro.core.node import TrieNode
from repro.kernel.bulk import build_ngram_trie, dedup_sequences
from repro.trace.sessions import Session


def _prune_level(
    roots: dict[str, TrieNode], level: int, min_repeats: int
) -> bool:
    """Drop infrequent children of every depth-``level`` node.

    Returns True when at least one depth-``level+1`` node survives, i.e.
    the next extension pass has work to do.
    """
    survivors = False

    def visit(node: TrieNode, depth: int) -> None:
        nonlocal survivors
        if depth == level:
            for url in list(node.children):
                if node.children[url].count < min_repeats:
                    del node.children[url]
            if node.children:
                survivors = True
        else:
            for child in node.children.values():
                visit(child, depth + 1)

    for root in roots.values():
        visit(root, 1)
    return survivors


def _frequent_subsequence_forest(
    sequences: list[tuple[str, ...]],
    *,
    min_repeats: int = params.LRS_MIN_REPEATS,
    max_length: int | None = None,
) -> dict[str, TrieNode]:
    """Build the trie of subsequences occurring at least ``min_repeats`` times.

    Level-wise growth: level 1 counts single URLs; level *k+1* counts the
    one-URL extensions of frequent depth-*k* paths only.  Nodes that fail
    the repeat threshold at their level are pruned before the next pass.
    """
    roots: dict[str, TrieNode] = {}
    for seq in sequences:
        for url in seq:
            node = roots.get(url)
            if node is None:
                node = TrieNode(url)
                roots[url] = node
            node.count += 1
    roots = {u: n for u, n in roots.items() if n.count >= min_repeats}

    level = 1
    while roots and (max_length is None or level < max_length):
        extended = False
        for seq in sequences:
            for start in range(len(seq) - level):
                node = roots.get(seq[start])
                if node is None:
                    continue
                for offset in range(1, level):
                    node = node.child(seq[start + offset])
                    if node is None:
                        break
                if node is None:
                    continue
                child = node.ensure_child(seq[start + level])
                child.count += 1
                extended = True
        if not extended:
            break
        if not _prune_level(roots, level, min_repeats):
            break
        level += 1
    return roots


def mine_longest_repeating_subsequences(
    sequences: list[tuple[str, ...]],
    *,
    min_repeats: int = params.LRS_MIN_REPEATS,
    max_length: int | None = None,
) -> list[tuple[str, ...]]:
    """Return the LRS patterns of a sequence corpus.

    A pattern is returned when it repeats (``>= min_repeats`` occurrences)
    and no single-URL extension of it still repeats — i.e. it is a
    root-to-leaf path of the frequent-subsequence trie.
    """
    roots = _frequent_subsequence_forest(
        sequences, min_repeats=min_repeats, max_length=max_length
    )
    patterns: list[tuple[str, ...]] = []

    def descend(node: TrieNode, prefix: tuple[str, ...]) -> None:
        if node.is_leaf:
            patterns.append(prefix)
            return
        for url in sorted(node.children):
            descend(node.children[url], prefix + (url,))

    for url in sorted(roots):
        descend(roots[url], (url,))
    return patterns


class LRSPPM(PPMModel):
    """Longest-repeating-subsequence PPM prediction tree.

    Parameters
    ----------
    min_repeats:
        Occurrence threshold for a subsequence to be kept (paper: 2).
    max_length:
        Optional cap on pattern length; ``None`` reproduces the paper's
        configuration (patterns bounded only by session length).
    """

    name = "lrs"
    supports_incremental = True

    def __init__(
        self,
        *,
        min_repeats: int = params.LRS_MIN_REPEATS,
        max_length: int | None = None,
        compact: bool | None = None,
    ) -> None:
        super().__init__(compact=compact)
        if min_repeats < 2:
            raise ValueError(f"min_repeats must be >= 2, got {min_repeats}")
        self.min_repeats = min_repeats
        self.max_length = max_length

    def _build(self, sessions: list[Session]) -> None:
        sequences = [session.urls for session in sessions]
        self._roots = _frequent_subsequence_forest(
            sequences, min_repeats=self.min_repeats, max_length=self.max_length
        )

    def _build_compact(self, sessions: list[Session]) -> bool:
        # The Apriori level build keeps exactly the subsequences occurring
        # >= min_repeats times: occurrence counts only fall under
        # extension, so the bulk n-gram kernel's count filter builds the
        # identical (already dense) trie.
        sequences, weights = dedup_sequences([s.urls for s in sessions])
        intern = self._symbols.intern_sequence
        self._store = build_ngram_trie(
            [intern(seq) for seq in sequences],
            max_height=self.max_length,
            min_count=self.min_repeats,
            weights=weights,
        )
        return True

    def patterns(self) -> list[tuple[str, ...]]:
        """The fitted model's LRS patterns (root-to-leaf paths)."""
        self._require_fitted()
        result: list[tuple[str, ...]] = []

        def descend(node: TrieNode, prefix: tuple[str, ...]) -> None:
            if node.is_leaf:
                result.append(prefix)
                return
            for url in sorted(node.children):
                descend(node.children[url], prefix + (url,))

        roots = self.roots
        for url in sorted(roots):
            descend(roots[url], (url,))
        return result
