"""Online model maintenance (paper Section 2.2).

*"The models are dynamically maintained and updated based on historical
data during a period of time."*  This module adds the two maintenance
regimes a production prefetching server needs:

* **Incremental updates** — :func:`update_model` folds freshly completed
  sessions into an already-fitted standard or popularity-based tree
  without a rebuild.  (LRS-PPM cannot be updated incrementally: the
  repeat threshold is a global property, so it is refitted from the
  retained window.)
* **Rolling windows** — :class:`RollingModelManager` keeps the last *N*
  days of sessions, folds in each new day, refits models whose structure
  demands it, and periodically re-ranks popularity — the paper's
  observation that "the popularity of Web files is normally stable over a
  long period" is what makes the cheap PB-PPM update sound.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, Sequence

from repro.core.base import PPMModel
from repro.core.lrs import LRSPPM
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.core.standard import StandardPPM
from repro.errors import ModelError
from repro.trace.sessions import Session


def update_model(model: PPMModel, sessions: Iterable[Session]) -> PPMModel:
    """Fold new sessions into a fitted model in place.

    Standard PPM and first-order Markov trees are strictly additive, so
    the update equals a refit on the union of the data.  PB-PPM inserts
    the new branches under the *existing* popularity grading (re-grading
    happens on the maintenance schedule, not per session) and does not
    re-run the space-optimisation passes — both choices mirror a server
    applying cheap per-request updates between nightly rebuilds.

    Raises
    ------
    ModelError
        For models without an incremental update (LRS-PPM).
    """
    if not model.is_fitted:
        raise ModelError("update_model requires a fitted model")
    if isinstance(model, LRSPPM):
        raise ModelError(
            "LRS-PPM cannot be updated incrementally; refit it on the "
            "retained session window"
        )
    if isinstance(model, (PopularityBasedPPM, StandardPPM)):
        # Both models fold sessions through their own representation-aware
        # path (node forest or compact store), bumping the mutation counter
        # so live prediction cursors resync.
        model.fold_sessions(list(sessions))
        return model
    # Generic fallback: models built from height-bounded suffix inserts.
    raise ModelError(
        f"{type(model).__name__} does not support incremental updates"
    )


class RollingModelManager:
    """Maintains a model over a sliding window of training days.

    Parameters
    ----------
    model_factory:
        Builds a fresh model given the current popularity table (the
        table argument is ignored by models that do not need one) —
        e.g. ``lambda pop: PopularityBasedPPM(pop)`` or
        ``lambda pop: StandardPPM()``.
    window_days:
        Number of most-recent days retained for (re)fitting.
    refit_every:
        Re-rank popularity and rebuild the model from the whole window
        every this-many day advances; days in between are folded in with
        the cheap incremental update where the model supports it, and
        trigger a refit otherwise.
    """

    def __init__(
        self,
        model_factory: Callable[[PopularityTable], PPMModel],
        *,
        window_days: int = 7,
        refit_every: int = 1,
    ) -> None:
        if window_days < 1:
            raise ValueError(f"window_days must be >= 1, got {window_days}")
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        self.model_factory = model_factory
        self.window_days = window_days
        self.refit_every = refit_every
        self._window: Deque[tuple[Session, ...]] = deque(maxlen=window_days)
        self._model: PPMModel | None = None
        self._popularity: PopularityTable | None = None
        self._advances_since_refit = 0
        self.refit_count = 0
        self.incremental_count = 0

    # -- state ---------------------------------------------------------------

    @property
    def model(self) -> PPMModel:
        """The current model (raises before the first day arrives)."""
        if self._model is None:
            raise ModelError("no day has been fed to the manager yet")
        return self._model

    @property
    def popularity(self) -> PopularityTable:
        """The popularity table backing the current model."""
        if self._popularity is None:
            raise ModelError("no day has been fed to the manager yet")
        return self._popularity

    @property
    def window_sessions(self) -> list[Session]:
        """Every session currently retained, oldest day first."""
        return [session for day in self._window for session in day]

    @property
    def days_retained(self) -> int:
        return len(self._window)

    # -- maintenance -----------------------------------------------------------

    def _refit(self) -> None:
        sessions = self.window_sessions
        self._popularity = PopularityTable.from_sessions(sessions)
        self._model = self.model_factory(self._popularity).fit(sessions)
        self._advances_since_refit = 0
        self.refit_count += 1

    def advance_day(self, sessions: Sequence[Session]) -> PPMModel:
        """Fold one finished day in and return the maintained model.

        The first day, a full window rollover, or hitting the refit
        schedule rebuilds from scratch; other days use the incremental
        update when the model class supports it.

        An *empty* day (a quiet server interval with no completed
        sessions) still occupies a window slot, but never triggers a refit
        on its own and leaves the model and its popularity grading
        untouched — unless appending it rolled a non-empty day out of the
        window, in which case the grades genuinely changed and a refit
        runs as usual.
        """
        window_was_full = len(self._window) == self.window_days
        dropped = self._window[0] if window_was_full else ()
        if not sessions:
            self._window.append(())
            if self._model is not None and not dropped:
                return self._model
        else:
            self._window.append(tuple(sessions))
            self._advances_since_refit += 1

        needs_refit = (
            self._model is None
            or window_was_full  # an old day dropped out of the window
            or self._advances_since_refit >= self.refit_every
        )
        if not needs_refit:
            try:
                update_model(self._model, sessions)
                self.incremental_count += 1
                return self._model
            except ModelError:
                pass
        self._refit()
        return self._model
