"""The Markov-prediction-tree node shared by all three PPM models."""

from __future__ import annotations

from typing import Iterator


class TrieNode:
    """One URL node in a Markov prediction tree.

    Attributes
    ----------
    url:
        The URL this node stands for.
    count:
        Number of training traversals through this node; conditional
        probabilities are ratios of child count to parent count.
    children:
        Child nodes keyed by URL.
    special_links:
        Only populated on PB-PPM *root* nodes: links to duplicated popular
        nodes deeper in the root's branch (paper Section 3.4, rule 3).
    used:
        Set by the prediction engine when the node participates in a
        prediction; drives the path-utilisation metric of Figure 2.
    """

    __slots__ = ("url", "count", "children", "special_links", "used")

    def __init__(self, url: str, count: int = 0) -> None:
        self.url = url
        self.count = count
        self.children: dict[str, TrieNode] = {}
        self.special_links: list[TrieNode] = []
        self.used = False

    def child(self, url: str) -> "TrieNode | None":
        """Return the child for ``url`` or None."""
        return self.children.get(url)

    def ensure_child(self, url: str) -> "TrieNode":
        """Return the child for ``url``, creating it with count 0 if absent."""
        node = self.children.get(url)
        if node is None:
            node = TrieNode(url)
            self.children[url] = node
        return node

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def probability_of(self, url: str) -> float:
        """Conditional probability of ``url`` following this node."""
        child = self.children.get(url)
        if child is None or self.count == 0:
            return 0.0
        return child.count / self.count

    def walk(self) -> Iterator["TrieNode"]:
        """Yield this node and every descendant, pre-order, deterministic."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children[url] for url in sorted(node.children, reverse=True))

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (inclusive)."""
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"TrieNode({self.url!r}/{self.count}, children={len(self.children)})"
