"""Exception hierarchy for the repro library.

A single root exception (:class:`ReproError`) lets callers distinguish
library failures from programming errors, while the concrete subclasses map
onto the major subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class TraceError(ReproError):
    """A trace file or trace record could not be handled."""


class ParseError(TraceError):
    """A log line did not match the expected Common Log Format."""

    def __init__(self, line: str, reason: str) -> None:
        self.line = line
        self.reason = reason
        super().__init__(f"cannot parse log line ({reason}): {line!r}")


class ModelError(ReproError):
    """A prediction model was used incorrectly (e.g. predict before fit)."""


class NotFittedError(ModelError):
    """The model has not been fitted with training sessions yet."""


class SimulationError(ReproError):
    """The trace-driven simulator was configured inconsistently."""


class WorkerCrash(SimulationError):
    """A shard worker process died (crashed, or injected to crash).

    Raised inside worker processes, so it must pickle cleanly across the
    process boundary — keep it a plain one-argument exception.
    """


class ReplayInterrupted(SimulationError):
    """A parallel replay was interrupted (SIGTERM / KeyboardInterrupt).

    The engine shuts its worker pool down quietly and surfaces this one
    typed error instead of letting every worker spew a traceback.
    """


class ResilienceError(ReproError):
    """The fault-injection harness was configured incorrectly."""


class ExperimentError(ReproError):
    """An experiment was requested that the registry does not know."""


class ServeError(ReproError):
    """The prediction server was configured or driven inconsistently."""


class WalError(ServeError):
    """A report-journal append or sync failed; the report must not be
    acknowledged (the client retries against an intact journal)."""


class WorkloadError(ReproError):
    """A streaming workload was configured or requested incorrectly."""


class SamplingError(ReproError):
    """A client-hash sampler or fidelity harness was misconfigured."""


def unknown_name_message(
    kind: str, name: str, available: "list[str] | tuple[str, ...]"
) -> str:
    """The one error-message convention for every by-name registry.

    Lists what *is* registered and, when the unknown name is a near miss
    of a registered one, suggests it — ``repro.synth.profiles`` and
    ``repro.workloads`` both phrase their lookup failures through this
    helper so the CLI surfaces the same shape everywhere.
    """
    import difflib

    choices = sorted(available)
    message = f"unknown {kind} {name!r}; available: {choices}"
    close = difflib.get_close_matches(name, choices, n=1, cutoff=0.6)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return message
