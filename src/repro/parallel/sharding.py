"""Partitioning a request stream into per-client shards.

Client-mode replay (:meth:`repro.sim.engine.PrefetchSimulator.run`) is
embarrassingly parallel across clients: every client owns its cache,
shadow cache and session context, and the prediction model is read-only
during replay (usage marks excepted — see :mod:`repro.parallel.merge`).
A shard is therefore any subset of clients; replaying each shard with the
serial engine and merging the per-shard aggregates reproduces the serial
run exactly, whatever the partition.

The partition below only affects *load balance*, never results.  Clients
are assigned greedily — heaviest client first, always onto the currently
lightest shard — which keeps shard sizes within one client of optimal for
the typical heavy-tailed client-size distribution of Web traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.trace.columnar import RequestBatch
from repro.trace.record import Request


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic client partition.

    Attributes
    ----------
    shards:
        Per-shard workloads: request tuples (object path) or row-range
        :class:`~repro.trace.columnar.RequestBatch` slices (columnar
        path).  Within a shard, each client's requests keep their
        original order (the serial engine's stable sort re-orders
        identically either way).  Empty shards are dropped, so
        ``len(shards)`` may be below the requested shard count.
    client_to_shard:
        Shard index each client was assigned to.
    """

    shards: "tuple[tuple[Request, ...] | RequestBatch, ...]"
    client_to_shard: Mapping[str, int]

    @property
    def shard_count(self) -> int:
        return len(self.shards)


def shard_by_client(
    requests: Iterable[Request], num_shards: int
) -> ShardPlan:
    """Partition requests into at most ``num_shards`` per-client shards.

    The assignment is a pure function of the request stream and the shard
    count: clients are ordered by (request count descending, client id)
    and greedily placed on the least-loaded shard (ties broken by shard
    index), so repeated calls — and different machines — shard alike.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    by_client: dict[str, list[Request]] = {}
    for request in requests:
        by_client.setdefault(request.client, []).append(request)

    ordered = sorted(
        by_client, key=lambda client: (-len(by_client[client]), client)
    )
    loads = [0] * min(num_shards, len(ordered)) or [0]
    buckets: list[list[Request]] = [[] for _ in loads]
    assignment: dict[str, int] = {}
    for client in ordered:
        index = min(range(len(loads)), key=lambda i: (loads[i], i))
        assignment[client] = index
        loads[index] += len(by_client[client])
        buckets[index].extend(by_client[client])

    shards = tuple(tuple(bucket) for bucket in buckets if bucket)
    return ShardPlan(shards=shards, client_to_shard=assignment)


def shard_batch_by_client(batch: RequestBatch, num_shards: int) -> ShardPlan:
    """Partition a columnar batch into per-client row-range shards.

    Runs the *same* greedy assignment as :func:`shard_by_client` — clients
    by (count descending, client id) onto the least-loaded shard — so the
    partition is identical for the same workload; but each shard is a
    :class:`RequestBatch` sliced by row indices (a handful of array
    pickles) instead of a list of request objects.  Slicing by ascending
    row index preserves replay order within every shard.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    table = batch.client_table
    counts = np.bincount(batch.clients, minlength=len(table))
    present = np.flatnonzero(counts).tolist()
    ordered = sorted(present, key=lambda cid: (-int(counts[cid]), table[cid]))
    if not ordered:
        return ShardPlan(shards=(), client_to_shard={})

    loads = [0] * min(num_shards, len(ordered))
    shard_of = np.full(len(table), -1, dtype=np.int64)
    assignment: dict[str, int] = {}
    for cid in ordered:
        index = min(range(len(loads)), key=lambda i: (loads[i], i))
        assignment[table[cid]] = index
        shard_of[cid] = index
        loads[index] += int(counts[cid])

    row_shard = shard_of[batch.clients]
    shards = tuple(
        batch.take(np.flatnonzero(row_shard == index))
        for index in range(len(loads))
    )
    return ShardPlan(shards=shards, client_to_shard=assignment)


def shard_requests(
    requests: "Iterable[Request] | RequestBatch", num_shards: int
) -> ShardPlan:
    """Shard either workload form with the same deterministic partition."""
    if isinstance(requests, RequestBatch):
        return shard_batch_by_client(requests, num_shards)
    return shard_by_client(requests, num_shards)


def shard_client_kinds(
    plan: ShardPlan, client_kinds: Mapping[str, str] | None
) -> Sequence[Mapping[str, str]]:
    """Restrict a client-classification map to each shard's clients."""
    if client_kinds is None:
        return [{} for _ in plan.shards]
    subsets: list[dict[str, str]] = [{} for _ in plan.shards]
    for client, index in plan.client_to_shard.items():
        kind = client_kinds.get(client)
        if kind is not None and index < len(subsets):
            subsets[index][client] = kind
    return subsets
