"""The per-shard replay task executed inside worker processes.

Everything here must be picklable and importable at module top level so
:class:`concurrent.futures.ProcessPoolExecutor` can ship tasks to workers.
A task carries copies of the fitted model, the latency model and the
popularity table (read-only during replay), plus one shard of test-day
requests; the worker replays the shard with the ordinary serial engine
and returns the raw material the merge layer needs to reassemble a
bit-identical serial result:

* the shard's :class:`~repro.sim.metrics.SimulationResult` counters,
* the replay-order keys of the shard's requests, aligned one-to-one with
  the per-request latency streams (the worker forces
  ``collect_latencies=True`` so the merge can re-fold the float
  accumulators in global serial order),
* the root paths of every trie node the shard's predictions marked used
  (for the Figure-2 path-utilisation metric), and
* the shard's events, when the caller attached an event log.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.core.base import PPMModel
from repro.core.node import TrieNode
from repro.core.popularity import PopularityTable
from repro.errors import WorkerCrash
from repro.resilience.faults import FaultPlan
from repro.sim.config import SimulationConfig
from repro.sim.engine import PrefetchSimulator, request_sort_key
from repro.sim.events import EventLog, SimulationEvent
from repro.sim.latency import LatencyModel
from repro.sim.metrics import SimulationResult
from repro.trace.columnar import RequestBatch
from repro.trace.record import Request


def _sigterm_exit(signum, frame) -> None:  # pragma: no cover - in workers
    # A terminated worker must die silently: the parent sees its broken
    # pool and retries the shard; a KeyboardInterrupt-style traceback per
    # worker would bury that one useful signal.
    os._exit(0)


def quiet_worker() -> None:
    """Pool initializer: workers never spew on SIGINT/SIGTERM.

    Ctrl-C delivers SIGINT to the whole foreground process group; workers
    ignore it and let the parent engine decide (it shuts the pool down and
    raises one typed :class:`~repro.errors.ReplayInterrupted`).  SIGTERM
    exits the worker immediately and silently.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        signal.signal(signal.SIGTERM, _sigterm_exit)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


@dataclass
class ShardTask:
    """One shard's replay job (picklable)."""

    index: int
    model: PPMModel | None
    url_sizes: Mapping[str, int]
    latency_model: LatencyModel
    config: SimulationConfig
    popularity: PopularityTable | None
    requests: "Sequence[Request] | RequestBatch"
    client_kinds: Mapping[str, str]
    want_events: bool
    #: The parent's fault plan, shipped into the worker process (None in
    #: ordinary runs — the zero-overhead default).
    fault_plan: FaultPlan | None = None
    #: Dispatch attempt (0 = first try); offsets the fault plan's firing
    #: window so ``times=N`` means "the first N dispatches of this shard".
    attempt: int = 0


@dataclass
class ShardOutcome:
    """What one shard replay produced (picklable)."""

    index: int
    result: SimulationResult
    #: Replay-order keys, aligned with ``result.latencies`` /
    #: ``result.shadow_latencies`` (one entry per request).
    request_keys: list[tuple[float, str]]
    #: Root paths of every node marked used by this shard's predictions.
    used_paths: list[tuple[str, ...]]
    #: Shard events in replay order, or None when not requested.
    events: list[SimulationEvent] | None


def collect_used_paths(
    roots: Mapping[str, TrieNode]
) -> list[tuple[str, ...]]:
    """Root paths of every node whose ``used`` flag is set.

    In a trie every node has exactly one parent, so the URL path from its
    root identifies it uniquely — including PB-PPM's duplicated popular
    nodes, which special links reference *within* their branch.
    """
    paths: list[tuple[str, ...]] = []
    for url in sorted(roots):
        stack: list[tuple[TrieNode, tuple[str, ...]]] = [(roots[url], (url,))]
        while stack:
            node, path = stack.pop()
            if node.used:
                paths.append(path)
            for child_url in sorted(node.children, reverse=True):
                stack.append((node.children[child_url], path + (child_url,)))
    return paths


def mark_used_paths(
    roots: Mapping[str, TrieNode], paths: Sequence[tuple[str, ...]]
) -> None:
    """Set the ``used`` flag on the nodes named by ``paths``.

    Paths that no longer resolve are ignored — they can only appear if the
    forest was mutated between dispatch and merge, in which case the
    utilisation metric is undefined anyway.
    """
    for path in paths:
        node = roots.get(path[0]) if path else None
        for url in path[1:]:
            if node is None:
                break
            node = node.child(url)
        if node is not None:
            node.used = True


def replay_shard(task: ShardTask) -> ShardOutcome:
    """Replay one shard with the serial engine and package the outcome."""
    plan = task.fault_plan
    if plan is not None:
        spec = plan.should_fire("parallel.worker_hang", offset=task.attempt)
        if spec is not None:
            time.sleep(spec.delay_s)
        spec = plan.should_fire("parallel.worker_crash", offset=task.attempt)
        if spec is not None:
            raise WorkerCrash(
                f"injected crash replaying shard {task.index} "
                f"(attempt {task.attempt})"
            )
    # Force per-request latency collection: the merge layer re-folds the
    # float accumulators in global replay order, which is the only way the
    # sums come out bit-identical to a serial run (float addition is not
    # associative).  workers=1 documents that the shard itself is serial.
    config = replace(task.config, collect_latencies=True, workers=1)
    event_log = EventLog(capacity=None) if task.want_events else None
    simulator = PrefetchSimulator(
        task.model,
        task.url_sizes,
        task.latency_model,
        config,
        popularity=task.popularity,
        event_log=event_log,
    )
    result = simulator.run(task.requests, client_kinds=task.client_kinds)
    if isinstance(task.requests, RequestBatch):
        keys = task.requests.replay_keys()
    else:
        keys = [
            request_sort_key(request)
            for request in sorted(task.requests, key=request_sort_key)
        ]
    used_paths = (
        task.model.collect_used_paths() if task.model is not None else []
    )
    return ShardOutcome(
        index=task.index,
        result=result,
        request_keys=keys,
        used_paths=used_paths,
        events=list(event_log) if event_log is not None else None,
    )
