"""Sharded parallel replay with serial-equivalence guarantees.

Client-mode trace replay is embarrassingly parallel across clients; this
package partitions a request stream into per-client shards, replays the
shards in worker processes and merges the aggregates with an explicit,
order-independent reduction so every metric is bit-identical to the
serial engine's.  See :mod:`repro.parallel.engine` for the entry point
and ``tests/parallel/`` for the equivalence contract.
"""

from repro.parallel.engine import ParallelPrefetchSimulator, resolve_workers
from repro.parallel.merge import merge_outcomes
from repro.parallel.sharding import ShardPlan, shard_by_client
from repro.parallel.worker import ShardOutcome, ShardTask, replay_shard

__all__ = [
    "ParallelPrefetchSimulator",
    "ShardOutcome",
    "ShardPlan",
    "ShardTask",
    "merge_outcomes",
    "replay_shard",
    "resolve_workers",
    "shard_by_client",
]
