"""Order-independent reduction of per-shard replay outcomes.

The contract: merging the outcomes of any client partition reproduces the
serial engine's :class:`~repro.sim.metrics.SimulationResult` *bit for
bit*, whatever order the shards finished in.  Three ingredient classes,
three merge rules:

* **Integer counters** (requests, hits, moved bytes, ...) — plain sums;
  integer addition is associative, so shard order cannot matter.
* **Float accumulators** (the latency sums) and the optional per-request
  latency lists — float addition is *not* associative, so the streams are
  first interleaved back into the serial engine's global replay order
  (a k-way merge on the ``(timestamp, client)`` request keys; each key
  belongs to exactly one shard, so the interleaving is total and
  deterministic) and then re-folded left to right exactly as the serial
  loop would have.  Cache hits contribute ``0.0`` entries, which are
  exact identities of IEEE-754 addition on the non-negative accumulator,
  so folding the full stream equals the serial miss-only accumulation.
* **Events and usage marks** — events are interleaved on the same keys
  and replayed into the caller's bounded log (reproducing serial drop
  behaviour); per-shard used-node paths are unioned (marking is
  idempotent) and re-applied to the parent model before the utilisation
  metric is computed.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.sim.events import EventLog, SimulationEvent
from repro.sim.metrics import SimulationResult
from repro.parallel.worker import ShardOutcome

#: SimulationResult counter fields merged by plain summation.
SUMMED_FIELDS: tuple[str, ...] = (
    "requests",
    "hits",
    "browser_hits",
    "proxy_hits",
    "prefetch_hits",
    "popular_prefetch_hits",
    "shadow_hits",
    "demand_miss_bytes",
    "prefetch_bytes",
    "prefetch_used_bytes",
    "prefetches_issued",
    "predictions_made",
)


def merge_used_paths(
    outcomes: Iterable[ShardOutcome],
) -> list[tuple[str, ...]]:
    """Deterministic union of the shards' used-node paths."""
    union = {path for outcome in outcomes for path in outcome.used_paths}
    return sorted(union)


def merge_events(
    outcomes: Sequence[ShardOutcome], event_log: EventLog
) -> None:
    """Interleave shard events into serial order and record them.

    Recording through :meth:`EventLog.record` reproduces the serial run's
    bounded-capacity drop behaviour and ``total_recorded`` count.
    """
    streams: list[Iterable[SimulationEvent]] = [
        outcome.events for outcome in outcomes if outcome.events is not None
    ]
    for event in heapq.merge(
        *streams, key=lambda e: (e.timestamp, e.client)
    ):
        event_log.record(event)


def merge_outcomes(
    outcomes: Sequence[ShardOutcome],
    *,
    model_name: str,
    collect_latencies: bool,
    event_log: EventLog | None = None,
) -> SimulationResult:
    """Reduce shard outcomes into one serial-equivalent result.

    ``node_count`` and ``path_utilization`` are left at zero — they are
    model-level statistics the caller computes after re-applying the
    merged usage marks (see
    :meth:`repro.parallel.engine.ParallelPrefetchSimulator.run`).
    """
    ordered = sorted(outcomes, key=lambda outcome: outcome.index)
    merged = SimulationResult(model_name=model_name)
    for outcome in ordered:
        for name in SUMMED_FIELDS:
            setattr(
                merged,
                name,
                getattr(merged, name) + getattr(outcome.result, name),
            )

    # Re-fold the float accumulators in global replay order.
    streams = []
    for outcome in ordered:
        result = outcome.result
        if not (
            len(outcome.request_keys)
            == len(result.latencies)
            == len(result.shadow_latencies)
        ):
            raise ValueError(
                "shard outcome misaligned: "
                f"{len(outcome.request_keys)} keys vs "
                f"{len(result.latencies)}/{len(result.shadow_latencies)} "
                "latency entries"
            )
        streams.append(
            zip(outcome.request_keys, result.latencies, result.shadow_latencies)
        )
    for _, latency, shadow_latency in heapq.merge(
        *streams, key=lambda entry: entry[0]
    ):
        merged.latency_seconds += latency
        merged.shadow_latency_seconds += shadow_latency
        if collect_latencies:
            merged.latencies.append(latency)
            merged.shadow_latencies.append(shadow_latency)

    if event_log is not None:
        merge_events(ordered, event_log)
    return merged
