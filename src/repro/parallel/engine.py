"""Sharded client-mode replay across worker processes.

:class:`ParallelPrefetchSimulator` is a drop-in replacement for
:class:`~repro.sim.engine.PrefetchSimulator` whose :meth:`run` partitions
the test-day requests into per-client shards
(:mod:`repro.parallel.sharding`), replays each shard in a worker process
(:mod:`repro.parallel.worker`) and reduces the per-shard aggregates back
into one result (:mod:`repro.parallel.merge`).  The merge is constructed
so the result is **bit-identical** to the serial engine's — the
equivalence suite under ``tests/parallel/`` pins that contract.

Fallbacks, all logged under the ``repro.parallel`` logger:

* ``workers <= 1`` (after resolving ``0`` to the CPU count), or a single
  shard — the serial engine runs directly;
* the process pool fails (unpicklable model, missing OS support for
  multiprocessing, a broken pool) — the same shard/merge pipeline runs
  in-process, deterministically, sharing the parent's read-only objects;
* proxy topology (:meth:`run_proxy`) — clients share one proxy cache, so
  shard replays would diverge from serial; the engine detects the
  coupling and replays serially with a logged reason.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Mapping, Sequence

from repro.parallel.merge import merge_outcomes, merge_used_paths
from repro.parallel.sharding import shard_by_client, shard_client_kinds
from repro.parallel.worker import ShardOutcome, ShardTask, replay_shard
from repro.sim.engine import PrefetchSimulator
from repro.sim.metrics import SimulationResult
from repro.trace.record import Request

logger = logging.getLogger("repro.parallel")


def resolve_workers(workers: int) -> int:
    """Effective worker count: ``0`` means one per CPU core."""
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


class ParallelPrefetchSimulator(PrefetchSimulator):
    """A :class:`PrefetchSimulator` that shards client-mode replay.

    Constructed exactly like the serial engine; ``config.workers``
    selects the parallelism (1 = serial, 0 = one worker per core).
    Results are bit-identical to the serial engine for every topology:
    client mode by the shard/merge construction, proxy mode because it
    falls back to serial replay.
    """

    def _build_tasks(
        self,
        shards: Sequence[Sequence[Request]],
        kind_subsets: Sequence[Mapping[str, str]],
    ) -> list[ShardTask]:
        return [
            ShardTask(
                index=index,
                model=self.model,
                url_sizes=self.url_sizes,
                latency_model=self.latency_model,
                config=self.config,
                popularity=self.popularity,
                requests=list(shard),
                client_kinds=dict(kind_subsets[index]),
                want_events=self.event_log is not None,
            )
            for index, shard in enumerate(shards)
        ]

    @staticmethod
    def _execute(
        tasks: Sequence[ShardTask], workers: int
    ) -> list[ShardOutcome]:
        """Run tasks in a process pool, or in-process when that fails.

        Worker processes receive pickled copies of the model; failures to
        pickle (or to start a pool at all) degrade to a deterministic
        in-process replay of the same shard pipeline, which shares the
        parent's read-only objects and produces identical outcomes.
        """
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(replay_shard, task) for task in tasks]
                return [future.result() for future in futures]
        except Exception as exc:  # noqa: BLE001 - deliberate broad fallback
            logger.warning(
                "process-pool replay failed (%s: %s); falling back to "
                "in-process shard replay",
                type(exc).__name__,
                exc,
            )
            return [replay_shard(task) for task in tasks]

    # -- client mode ---------------------------------------------------------

    def run(
        self,
        requests: Sequence[Request],
        *,
        client_kinds: Mapping[str, str] | None = None,
    ) -> SimulationResult:
        """Sharded client-mode replay, bit-identical to the serial engine."""
        workers = resolve_workers(self.config.workers)
        if workers <= 1:
            return super().run(requests, client_kinds=client_kinds)
        plan = shard_by_client(requests, workers)
        if plan.shard_count <= 1:
            logger.debug(
                "only %d client shard(s); replaying serially", plan.shard_count
            )
            return super().run(requests, client_kinds=client_kinds)

        tasks = self._build_tasks(
            plan.shards, shard_client_kinds(plan, client_kinds)
        )
        outcomes = self._execute(tasks, min(workers, len(tasks)))
        merged = merge_outcomes(
            outcomes,
            model_name=self.model.name if self.model is not None else "none",
            collect_latencies=self.config.collect_latencies,
            event_log=self.event_log,
        )
        if self.model is not None:
            # Reproduce the serial run's post-state: usage marks are the
            # union of what every shard's predictions touched.
            self.model.reset_usage()
            self.model.mark_used_paths(merge_used_paths(outcomes))
        return self._finish_result(merged)

    # -- proxy mode ----------------------------------------------------------

    def run_proxy(
        self,
        requests: Sequence[Request],
        *,
        clients: Sequence[str] | None = None,
    ) -> SimulationResult:
        """Proxy-mode replay; always serial (shared-proxy coupling).

        Every client reads and fills the same proxy cache, so per-client
        shards would observe different proxy contents than a serial
        replay — the engine refuses to parallelise rather than silently
        diverge.
        """
        if resolve_workers(self.config.workers) > 1:
            logger.warning(
                "proxy topology shares one proxy cache across clients; "
                "replaying serially (workers=%d ignored)",
                self.config.workers,
            )
        return super().run_proxy(requests, clients=clients)
