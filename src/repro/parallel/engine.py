"""Sharded client-mode replay across worker processes.

:class:`ParallelPrefetchSimulator` is a drop-in replacement for
:class:`~repro.sim.engine.PrefetchSimulator` whose :meth:`run` partitions
the test-day requests into per-client shards
(:mod:`repro.parallel.sharding`), replays each shard in a worker process
(:mod:`repro.parallel.worker`) and reduces the per-shard aggregates back
into one result (:mod:`repro.parallel.merge`).  The merge is constructed
so the result is **bit-identical** to the serial engine's — the
equivalence suite under ``tests/parallel/`` pins that contract.

Supervised recovery: shard replays are deterministic, side-effect-free
functions of their task, so any failed dispatch can be re-run anywhere
without changing the merged result.  The engine exploits that — each
shard has a replay deadline; a worker that crashes (raises, dies, is
SIGTERMed) or hangs past the deadline is abandoned and the shard retried
on a replacement pool with exponential backoff, and once the retry budget
is spent the shard replays in-process, which cannot fail independently.
The merge therefore stays **bit-identical** to a serial run through any
number of worker failures (``tests/resilience/`` pins this under injected
crashes and hangs).

Fallbacks, all logged under the ``repro.parallel`` logger:

* ``workers <= 1`` (after resolving ``0`` to the CPU count), or a single
  shard — the serial engine runs directly;
* the process pool fails entirely (unpicklable model, missing OS support
  for multiprocessing) — the same shard/merge pipeline runs in-process,
  deterministically, sharing the parent's read-only objects;
* proxy topology (:meth:`run_proxy`) — clients share one proxy cache, so
  shard replays would diverge from serial; the engine detects the
  coupling and replays serially with a logged reason.

Interrupts: worker processes ignore SIGINT and exit silently on SIGTERM
(:func:`repro.parallel.worker.quiet_worker`); a KeyboardInterrupt in the
parent shuts the pool down and surfaces as one typed
:class:`~repro.errors.ReplayInterrupted` instead of a traceback per
worker.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro import params
from repro.errors import ReplayInterrupted
from repro.parallel.merge import merge_outcomes, merge_used_paths
from repro.parallel.sharding import shard_client_kinds, shard_requests
from repro.parallel.worker import (
    ShardOutcome,
    ShardTask,
    quiet_worker,
    replay_shard,
)
from repro.resilience import faults
from repro.sim.engine import PrefetchSimulator
from repro.sim.metrics import SimulationResult
from repro.trace.columnar import RequestBatch
from repro.trace.record import Request

logger = logging.getLogger("repro.parallel")


@dataclass
class ReplayRecoveryStats:
    """What the supervisor observed during one sharded replay."""

    shard_crashes: int = 0
    shard_hangs: int = 0
    shard_retries: int = 0
    in_process_fallbacks: int = 0
    retry_rounds: int = 0

    @property
    def failures(self) -> int:
        return self.shard_crashes + self.shard_hangs


def resolve_workers(workers: int) -> int:
    """Effective worker count: ``0`` means one per CPU core."""
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


class ParallelPrefetchSimulator(PrefetchSimulator):
    """A :class:`PrefetchSimulator` that shards client-mode replay.

    Constructed exactly like the serial engine; ``config.workers``
    selects the parallelism (1 = serial, 0 = one worker per core).
    Results are bit-identical to the serial engine for every topology:
    client mode by the shard/merge construction (preserved through worker
    crash/hang recovery — see :class:`ReplayRecoveryStats` on
    :attr:`recovery`), proxy mode because it falls back to serial replay.

    The three supervision knobs default to the :mod:`repro.params`
    constants and can be overridden per instance (``None`` = use the
    params default)::

        engine.shard_timeout_s = 2.0   # per-shard replay deadline
        engine.shard_retries = 1       # replacement-worker retries
        engine.retry_backoff_s = 0.0   # exponential backoff base
    """

    #: Per-shard deadline / retry budget / backoff base; ``None`` reads
    #: the ``params`` default at run time.
    shard_timeout_s: float | None = None
    shard_retries: int | None = None
    retry_backoff_s: float | None = None

    #: Stats of the most recent sharded :meth:`run` (reset per run).
    recovery: ReplayRecoveryStats | None = None

    def _build_tasks(
        self,
        shards: "Sequence[Sequence[Request] | RequestBatch]",
        kind_subsets: Sequence[Mapping[str, str]],
    ) -> list[ShardTask]:
        return [
            ShardTask(
                index=index,
                model=self.model,
                url_sizes=self.url_sizes,
                latency_model=self.latency_model,
                config=self.config,
                popularity=self.popularity,
                requests=(
                    shard if isinstance(shard, RequestBatch) else list(shard)
                ),
                client_kinds=dict(kind_subsets[index]),
                want_events=self.event_log is not None,
                fault_plan=faults.active_plan(),
            )
            for index, shard in enumerate(shards)
        ]

    def _execute(
        self, tasks: Sequence[ShardTask], workers: int
    ) -> list[ShardOutcome]:
        """Run tasks under supervision: deadlines, retries, last resort.

        Each dispatch round runs the still-pending shards on a fresh pool
        of replacement workers; a shard whose future raises (worker
        crashed, was SIGTERMed, or its task failed to pickle) or exceeds
        the per-shard deadline (worker hung) is collected for the next
        round after an exponential backoff.  When the retry budget is
        spent — or no pool can be started at all — the remaining shards
        replay in-process with faults disarmed, which is deterministic
        and cannot fail independently, so the merged result is identical
        whichever path each shard took.
        """
        stats = self.recovery = ReplayRecoveryStats()
        timeout = (
            self.shard_timeout_s
            if self.shard_timeout_s is not None
            else params.PARALLEL_SHARD_TIMEOUT_S
        )
        retries = (
            self.shard_retries
            if self.shard_retries is not None
            else params.PARALLEL_SHARD_RETRIES
        )
        backoff = (
            self.retry_backoff_s
            if self.retry_backoff_s is not None
            else params.PARALLEL_RETRY_BACKOFF_S
        )
        outcomes: dict[int, ShardOutcome] = {}
        pending = list(tasks)
        for round_no in range(retries + 1):
            if not pending:
                break
            if round_no:
                stats.retry_rounds += 1
                stats.shard_retries += len(pending)
                delay = backoff * (2 ** (round_no - 1))
                if delay > 0:
                    time.sleep(delay)
            dispatched = [replace(task, attempt=round_no) for task in pending]
            pending = self._dispatch_round(
                dispatched, workers, timeout, stats, outcomes
            )
        if pending:
            logger.warning(
                "%d shard(s) still failing after %d retr%s; falling back "
                "to in-process shard replay",
                len(pending),
                retries,
                "y" if retries == 1 else "ies",
            )
            stats.in_process_fallbacks += len(pending)
            for task in pending:
                outcomes[task.index] = replay_shard(
                    replace(task, fault_plan=None)
                )
        return [outcomes[task.index] for task in tasks]

    @staticmethod
    def _dispatch_round(
        tasks: Sequence[ShardTask],
        workers: int,
        timeout: float,
        stats: ReplayRecoveryStats,
        outcomes: dict[int, ShardOutcome],
    ) -> list[ShardTask]:
        """One pool dispatch of ``tasks``; returns the shards to retry."""
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(tasks)), initializer=quiet_worker
            )
        except Exception as exc:  # noqa: BLE001 - any pool failure degrades
            logger.warning(
                "cannot start a worker pool (%s: %s); shards will be "
                "replayed in-process",
                type(exc).__name__,
                exc,
            )
            return list(tasks)
        failed: list[ShardTask] = []
        abandoned_hung_worker = False
        try:
            submitted = [(pool.submit(replay_shard, task), task) for task in tasks]
            for future, task in submitted:
                try:
                    outcomes[task.index] = future.result(timeout=timeout)
                except FuturesTimeoutError:
                    # The worker is wedged; nothing can cancel a running
                    # task, so abandon the pool after the round and let a
                    # replacement replay the shard.
                    abandoned_hung_worker = True
                    stats.shard_hangs += 1
                    failed.append(task)
                    future.cancel()
                    logger.warning(
                        "shard %d exceeded its %.1fs replay deadline "
                        "(attempt %d); retrying on a replacement worker",
                        task.index,
                        timeout,
                        task.attempt,
                    )
                except Exception as exc:  # noqa: BLE001 - any crash retries
                    stats.shard_crashes += 1
                    failed.append(task)
                    logger.warning(
                        "shard %d worker failed (%s: %s, attempt %d); "
                        "retrying on a replacement worker",
                        task.index,
                        type(exc).__name__,
                        exc,
                        task.attempt,
                    )
        except (KeyboardInterrupt, SystemExit) as exc:
            pool.shutdown(wait=False, cancel_futures=True)
            raise ReplayInterrupted(
                "parallel replay interrupted; worker pool shut down"
            ) from exc
        pool.shutdown(wait=not abandoned_hung_worker, cancel_futures=True)
        return failed

    # -- client mode ---------------------------------------------------------

    def run(
        self,
        requests: "Sequence[Request] | RequestBatch",
        *,
        client_kinds: Mapping[str, str] | None = None,
    ) -> SimulationResult:
        """Sharded client-mode replay, bit-identical to the serial engine.

        A columnar :class:`~repro.trace.columnar.RequestBatch` shards by
        row ranges — workers receive a few array pickles instead of a
        request-object list — and replays to the same merged result.
        """
        workers = resolve_workers(self.config.workers)
        if workers <= 1:
            return super().run(requests, client_kinds=client_kinds)
        plan = shard_requests(requests, workers)
        if plan.shard_count <= 1:
            logger.debug(
                "only %d client shard(s); replaying serially", plan.shard_count
            )
            return super().run(requests, client_kinds=client_kinds)

        tasks = self._build_tasks(
            plan.shards, shard_client_kinds(plan, client_kinds)
        )
        outcomes = self._execute(tasks, min(workers, len(tasks)))
        merged = merge_outcomes(
            outcomes,
            model_name=self.model.name if self.model is not None else "none",
            collect_latencies=self.config.collect_latencies,
            event_log=self.event_log,
        )
        if self.model is not None:
            # Reproduce the serial run's post-state: usage marks are the
            # union of what every shard's predictions touched.
            self.model.reset_usage()
            self.model.mark_used_paths(merge_used_paths(outcomes))
        return self._finish_result(merged)

    # -- proxy mode ----------------------------------------------------------

    def run_proxy(
        self,
        requests: Sequence[Request],
        *,
        clients: Sequence[str] | None = None,
    ) -> SimulationResult:
        """Proxy-mode replay; always serial (shared-proxy coupling).

        Every client reads and fills the same proxy cache, so per-client
        shards would observe different proxy contents than a serial
        replay — the engine refuses to parallelise rather than silently
        diverge.
        """
        if resolve_workers(self.config.workers) > 1:
            logger.warning(
                "proxy topology shares one proxy cache across clients; "
                "replaying serially (workers=%d ignored)",
                self.config.workers,
            )
        return super().run_proxy(requests, clients=clients)
