"""Shared-memory multi-process serving: N workers, one model segment.

One Python process tops out at one core; the paper's "low storage" claim
would be squandered by giving each worker process its own copy of the
model.  This module scales :class:`~repro.serve.server.PrefetchServer`
across processes while keeping **exactly one** copy of the model in
memory:

* The supervisor serialises the fitted model once with
  :func:`~repro.core.serialize.model_to_buffer` into a read-only
  ``multiprocessing.shared_memory`` segment.  Every worker maps that
  segment and reconstructs the model **zero-copy** — the trie arrays are
  read-only views straight into shared pages, so worker RSS grows by the
  page tables, not the model.
* All workers accept on one port.  On kernels with ``SO_REUSEPORT``
  (Linux, modern BSDs) each worker binds its own listening socket and the
  kernel load-balances connections; elsewhere the supervisor binds one
  listening socket that the forked workers inherit and ``accept`` on
  jointly.
* Hot swaps are generation-flips.  A tiny fixed-size *control block*
  (its own shared segment) holds ``(generation, segment-name)`` behind a
  seqlock.  Publishing a rebuild writes a fresh segment, bumps the
  generation, and unlinks the old name; each worker notices the new
  generation at its next request dispatch, remaps, and atomically
  republishes into its local :class:`~repro.serve.state.ModelRef` with
  the generation as the version — so ``model_version`` in responses is
  globally consistent across workers.
* The supervisor owns the session window: workers forward completed
  sessions over their pipe, the supervisor folds them and runs
  read-copy-update rebuilds through
  :meth:`~repro.serve.updater.ModelUpdater.refresh_sync` (same breaker,
  same deadline as single-process serving).  Crashed workers are reaped
  and respawned behind a per-slot :class:`~repro.resilience.CircuitBreaker`
  with exponential backoff, the supervised-recovery discipline the chaos
  suite established.

Client affinity: a keep-alive connection stays with one worker, so a
client that keeps one connection (the load generator, any sane prefetch
agent) gets exact session continuity.  Clients that reconnect per request
may land on another worker and start a fresh context there — the same
trade every ``SO_REUSEPORT`` deployment makes.

``tests/serve/test_multiproc.py`` pins the lifecycle and crash recovery;
``tests/differential/`` proves the worker prediction path agrees
prediction-for-prediction with the in-process paths.
"""

from __future__ import annotations

import asyncio
import json
import logging
import multiprocessing
import multiprocessing.connection
import os
import signal
import socket
import struct
import threading
import time
from dataclasses import dataclass, field, replace
from multiprocessing import resource_tracker, shared_memory
from typing import Callable
from urllib.parse import urlsplit

from repro import params
from repro.core.base import PPMModel
from repro.core.online import RollingModelManager
from repro.core.popularity import PopularityTable
from repro.core.serialize import model_from_buffer, model_to_buffer
from repro.kernel import predict_table
from repro.errors import ServeError, WalError
from repro.resilience.breaker import CircuitBreaker
from repro.serve.server import (
    _PROMETHEUS,
    PrefetchServer,
    _error_body,
    _json_body,
)
from repro.serve.snapshot import SnapshotManager
from repro.serve.state import ClientSessionTracker, ModelRef
from repro.serve.updater import ModelUpdater, default_model_factory
from repro.serve.wal import ReportJournal, read_journal, recovery_sessions

logger = logging.getLogger("repro.serve")

# -- control block ------------------------------------------------------------
#
# One tiny shared segment tells every worker which model segment is
# current.  Layout (little-endian u64s):
#
#   offset 0   seq        seqlock: odd while the supervisor is writing
#   offset 8   generation monotonically increasing model generation
#   offset 16  name_len   length of the segment name that follows
#   offset 24  name       segment name, NUL-padded to 128 bytes
#
# Readers retry while ``seq`` is odd or changes across the read — the
# classic seqlock, torn reads impossible without any cross-process lock.

_CONTROL_NAME_CAP = 128
_CONTROL_SIZE = 24 + _CONTROL_NAME_CAP
_U64 = struct.Struct("<Q")
_GEN_NAME = struct.Struct("<QQ")


def _control_write(buf, generation: int, name: str) -> None:
    encoded = name.encode("ascii")
    if len(encoded) > _CONTROL_NAME_CAP:
        raise ServeError(f"segment name too long: {name!r}")
    seq = _U64.unpack_from(buf, 0)[0]
    _U64.pack_into(buf, 0, seq + 1)  # odd: write in progress
    _GEN_NAME.pack_into(buf, 8, generation, len(encoded))
    buf[24 : 24 + _CONTROL_NAME_CAP] = encoded.ljust(_CONTROL_NAME_CAP, b"\x00")
    _U64.pack_into(buf, 0, seq + 2)  # even: stable


def _control_read(buf) -> tuple[int, str]:
    """The current ``(generation, segment name)``, seqlock-consistent."""
    for _ in range(10_000):
        seq_before = _U64.unpack_from(buf, 0)[0]
        if seq_before % 2:
            time.sleep(0.0002)
            continue
        generation, name_len = _GEN_NAME.unpack_from(buf, 8)
        name = bytes(buf[24 : 24 + name_len]).decode("ascii")
        if _U64.unpack_from(buf, 0)[0] == seq_before:
            return generation, name
    raise ServeError("model control block never stabilised")


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    Python's resource tracker registers *every* ``SharedMemory`` — even
    attach-only handles.  Workers share the supervisor's tracker process
    (fork), and its cache is a *set*: a worker's attach-register collapses
    into the supervisor's create-register, so any later unregister from
    the worker would strip the one authoritative entry (and the
    supervisor's final ``unlink`` would then double-unregister).  The fix
    is to not let attachments register at all.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _reuseport_available() -> bool:
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


# -- worker process -----------------------------------------------------------


@dataclass
class _WorkerSpec:
    """Everything one worker needs, passed by reference across ``fork``."""

    index: int
    host: str
    port: int
    control_name: str
    conn: multiprocessing.connection.Connection
    listen_socket: socket.socket | None
    idle_timeout_s: float
    max_context_length: int
    default_threshold: float
    request_timeout_s: float
    max_inflight: int
    retry_after_s: float
    housekeeping_interval_s: float
    stats_interval_s: float = 1.0
    supervisor_timeout_s: float = 60.0


class _WorkerServer(PrefetchServer):
    """One worker: a :class:`PrefetchServer` over the shared segment.

    Differences from the single-process server, all forced by the model
    being a read-only mapping owned by another process:

    * never folds or rebuilds — completed sessions go up the pipe;
    * remaps to the latest generation at dispatch time (and on the
      housekeeping tick), publishing into its ``ModelRef`` with
      ``version=generation``;
    * ``/admin/refresh`` and ``/admin/snapshot`` proxy to the supervisor;
      ``/admin/reload`` is refused;
    * ``/metrics`` reports the aggregated cluster view.
    """

    def __init__(
        self,
        spec: _WorkerSpec,
        control: shared_memory.SharedMemory,
        model: PPMModel,
        generation: int,
        segment: shared_memory.SharedMemory,
    ) -> None:
        super().__init__(
            model,
            host=spec.host,
            port=spec.port,
            idle_timeout_s=spec.idle_timeout_s,
            max_context_length=spec.max_context_length,
            default_threshold=spec.default_threshold,
            request_timeout_s=spec.request_timeout_s,
            max_inflight=spec.max_inflight,
            retry_after_s=spec.retry_after_s,
            housekeeping_interval_s=spec.housekeeping_interval_s,
        )
        self._spec = spec
        self._control = control
        # Re-anchor the ref at the supervisor's generation so every
        # worker's model_version matches the cluster generation.
        self.ref = ModelRef(model, version=generation)
        self.tracker = ClientSessionTracker(
            self.ref,
            idle_timeout_s=spec.idle_timeout_s,
            max_context_length=spec.max_context_length,
        )
        self._segments: dict[int, shared_memory.SharedMemory] = {
            generation: segment
        }
        self._pipe_lock = asyncio.Lock()
        self.remaps_total = 0
        # Fork inherits the parent's compile counter; snapshot it so the
        # stats report only compiles performed *in this worker* — which
        # must stay zero, since the compiled prediction table ships
        # precompiled inside the model segment.
        self._table_compiles_baseline = predict_table.COMPILE_COUNT

    # -- socket ---------------------------------------------------------------

    async def _create_server(self) -> asyncio.AbstractServer:
        if self._spec.listen_socket is not None:
            # Inherited-socket fallback: all workers accept on the one
            # listening socket the supervisor bound before forking.
            return await asyncio.start_server(
                self._handle_connection, sock=self._spec.listen_socket
            )
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self._spec.host, self._spec.port))
            sock.listen(128)
            sock.setblocking(False)
        except OSError:
            sock.close()
            raise
        return await asyncio.start_server(self._handle_connection, sock=sock)

    # -- generation tracking ---------------------------------------------------

    def _maybe_remap(self) -> None:
        """Adopt the supervisor's latest segment if the generation moved."""
        generation, name = _control_read(self._control.buf)
        if generation == self.ref.version:
            return
        for _ in range(100):
            try:
                segment = _attach(name)
                break
            except FileNotFoundError:
                # Lost the race with a concurrent publish+unlink: the
                # control block already points somewhere newer.
                time.sleep(0.005)
                generation, name = _control_read(self._control.buf)
                if generation == self.ref.version:
                    return
        else:
            raise ServeError(f"cannot attach model segment {name!r}")
        model = model_from_buffer(segment.buf)
        self.ref.publish(model, version=generation)
        self._segments[generation] = segment
        self.remaps_total += 1
        self._close_stale_segments()

    def _close_stale_segments(self) -> None:
        current = self.ref.version
        for generation in [g for g in self._segments if g < current]:
            try:
                self._segments[generation].close()
            except BufferError:
                # Some client cursor still references the old model's
                # views; its next request resyncs and frees them — the
                # next housekeeping tick retries the close.
                continue
            del self._segments[generation]

    # -- pipe protocol ---------------------------------------------------------

    async def _pipe_send(self, message: tuple) -> None:
        async with self._pipe_lock:
            await asyncio.to_thread(self._spec.conn.send, message)

    async def _pipe_request(self, message: tuple) -> tuple:
        def _roundtrip() -> tuple:
            self._spec.conn.send(message)
            if not self._spec.conn.poll(self._spec.supervisor_timeout_s):
                raise ServeError("supervisor did not answer in time")
            return self._spec.conn.recv()

        async with self._pipe_lock:
            return await asyncio.to_thread(_roundtrip)

    async def _forward_sessions(self) -> None:
        sessions = self.tracker.drain_completed()
        if sessions:
            await self._pipe_send(("sessions", self._spec.index, sessions))

    def _local_stats(self) -> dict:
        return {
            "requests_total": dict(self.requests_total),
            "errors_total": self.errors_total,
            "predictions_total": self.predictions_total,
            "shed_total": self.shed_total,
            "request_timeouts_total": self.request_timeouts_total,
            "active_clients": self.tracker.active_clients,
            "observed_clicks_total": self.tracker.observed_clicks,
            "sessions_completed_total": self.tracker.completed_sessions,
            "cursor_resyncs_total": self.tracker.resyncs,
            "remaps_total": self.remaps_total,
            "table_compiles_total": (
                predict_table.COMPILE_COUNT - self._table_compiles_baseline
            ),
            "generation": self.ref.version,
            "uptime_s": round(time.time() - self._started_at, 3),
        }

    # -- overridden lifecycle --------------------------------------------------

    async def _housekeeping_loop(self) -> None:
        """Expire, forward, remap — never fold into the shared mapping."""
        last_stats = time.monotonic()
        while True:
            await asyncio.sleep(self.housekeeping_interval_s)
            self._maybe_remap()
            self.tracker.expire_idle()
            await self._forward_sessions()
            now = time.monotonic()
            if now - last_stats >= self._spec.stats_interval_s:
                await self._pipe_send(
                    ("stats", self._spec.index, self._local_stats())
                )
                last_stats = now
            self._close_stale_segments()

    async def stop(self) -> None:
        if self._housekeeping is not None:
            self._housekeeping.cancel()
            try:
                await self._housekeeping
            except asyncio.CancelledError:
                pass
            self._housekeeping = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        self.tracker.expire_all()
        await self._forward_sessions()
        await self._pipe_send(("stats", self._spec.index, self._local_stats()))

    # -- overridden surface ----------------------------------------------------

    def _fast_eligible(self, target: str) -> bool:
        # The cluster /metrics view needs an async pipe round-trip to the
        # supervisor, so it must stay on the coroutine lane.
        return super()._fast_eligible(target) and not target.startswith(
            "/metrics"
        )

    def _dispatch_fast(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, str, bytes]:
        # Same generation check as the coroutine lane: any request
        # dispatched after a publish is answered by the new model.
        self._maybe_remap()
        return super()._dispatch_fast(method, target, body)

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, str, bytes]:
        # Generation check up front: any request dispatched after a
        # publish is answered by the new model — the zero-stale guarantee
        # the hot-swap tests measure.
        self._maybe_remap()
        if urlsplit(target).path == "/metrics":
            self.requests_total["/metrics"] = (
                self.requests_total.get("/metrics", 0) + 1
            )
            return await self._handle_cluster_metrics()
        return await super()._dispatch(method, target, body)

    def _handle_healthz(self) -> tuple[int, str, bytes]:
        status, content_type, payload = super()._handle_healthz()
        doc = json.loads(payload)
        doc["worker"] = self._spec.index
        doc["generation"] = self.ref.version
        return status, content_type, json.dumps(
            doc, separators=(",", ":")
        ).encode()

    async def _handle_admin(self, path: str) -> tuple[int, str, bytes]:
        if path == "/admin/refresh":
            self.tracker.expire_idle()
            await self._forward_sessions()
            _tag, version, error = await self._pipe_request(
                ("refresh", self._spec.index)
            )
            if version is None:
                return _error_body(400, error or "nothing to rebuild")
            self._maybe_remap()
            return _json_body(200, {"ok": True, "model_version": version})
        if path == "/admin/snapshot":
            _tag, version, snap_path, error = await self._pipe_request(
                ("snapshot", self._spec.index)
            )
            if version is None:
                return _error_body(
                    400 if "without a snapshot path" in (error or "") else 500,
                    error or "snapshot failed",
                )
            return _json_body(
                200, {"ok": True, "path": snap_path, "model_version": version}
            )
        if path == "/admin/reload":
            return _error_body(
                400,
                "reload is not supported in multi-process mode; "
                "use /admin/refresh",
            )
        return _error_body(404, f"unknown admin endpoint {path!r}")

    async def _handle_cluster_metrics(self) -> tuple[int, str, bytes]:
        _tag, cluster = await self._pipe_request(
            ("metrics", self._spec.index, self._local_stats())
        )
        per_worker: dict = cluster["workers"]
        lines = [
            "# HELP repro_mp_requests_total Requests handled, by path, "
            "summed across workers.",
            "# TYPE repro_mp_requests_total counter",
        ]
        path_totals: dict[str, int] = {}
        for stats in per_worker.values():
            for req_path, count in stats.get("requests_total", {}).items():
                path_totals[req_path] = path_totals.get(req_path, 0) + count
        for req_path in sorted(path_totals):
            lines.append(
                f'repro_mp_requests_total{{path="{req_path}"}} '
                f"{path_totals[req_path]}"
            )

        def summed(key: str) -> int:
            return sum(stats.get(key, 0) for stats in per_worker.values())

        gauges = [
            ("repro_mp_workers", "Configured worker processes.",
             cluster["worker_count"]),
            ("repro_mp_workers_reporting", "Workers with recent stats.",
             len(per_worker)),
            ("repro_mp_generation", "Current model generation.",
             cluster["generation"]),
            ("repro_mp_model_segment_bytes",
             "Size of the one shared model segment all workers map.",
             cluster["segment_bytes"]),
            ("repro_mp_predictions_total", "Prediction URLs returned.",
             summed("predictions_total")),
            ("repro_mp_errors_total", "Responses with status >= 400.",
             summed("errors_total")),
            ("repro_mp_active_clients", "Clients with an open session.",
             summed("active_clients")),
            ("repro_mp_observed_clicks_total", "Clicks reported.",
             summed("observed_clicks_total")),
            ("repro_mp_sessions_completed_total", "Sessions completed.",
             summed("sessions_completed_total")),
            ("repro_mp_remaps_total", "Worker segment remaps.",
             summed("remaps_total")),
            ("repro_mp_table_compiles_total",
             "Prediction-table compiles performed inside workers "
             "(always 0: tables ship precompiled in the segment).",
             summed("table_compiles_total")),
            ("repro_mp_worker_deaths_total",
             "Workers that exited unexpectedly.",
             cluster["worker_deaths_total"]),
            ("repro_mp_respawns_total", "Workers respawned.",
             cluster["respawns_total"]),
            ("repro_mp_folded_sessions_total",
             "Sessions folded into the supervisor's model.",
             cluster["folded_sessions_total"]),
            ("repro_mp_pending_sessions",
             "Sessions awaiting the next supervisor fold.",
             cluster["pending_sessions"]),
            ("repro_mp_refresh_total",
             "Read-copy-update rebuilds published.",
             cluster["refresh_total"]),
            ("repro_mp_refresh_failures_total",
             "Rebuilds that raised or stalled.",
             cluster["refresh_failures_total"]),
        ]
        wal_stats = cluster.get("wal")
        if wal_stats:
            gauges.extend(
                [
                    ("repro_wal_appended_records_total",
                     "Records appended to the supervisor's report journal.",
                     wal_stats["appended_records_total"]),
                    ("repro_wal_session_batches_total",
                     "Piped-up session batches journalled before folding.",
                     wal_stats["session_batches_total"]),
                    ("repro_wal_fsync_total", "Journal fsync calls.",
                     wal_stats["fsync_total"]),
                    ("repro_wal_rotations_total", "Journal segments sealed.",
                     wal_stats["rotations_total"]),
                    ("repro_wal_write_errors_total",
                     "Journal appends or fsyncs that failed.",
                     wal_stats["write_errors_total"]),
                    ("repro_wal_compacted_segments_total",
                     "Sealed segments deleted after a covering snapshot.",
                     wal_stats["compacted_segments_total"]),
                ]
            )
        for name, help_text, value in gauges:
            kind = "counter" if name.endswith("_total") else "gauge"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {value}")
        for index in sorted(per_worker):
            stats = per_worker[index]
            lines.append(
                f'repro_mp_worker_predictions_total{{worker="{index}"}} '
                f"{stats.get('predictions_total', 0)}"
            )
            lines.append(
                f'repro_mp_worker_generation{{worker="{index}"}} '
                f"{stats.get('generation', 0)}"
            )
        return 200, _PROMETHEUS, ("\n".join(lines) + "\n").encode()


def _worker_main(spec: _WorkerSpec) -> None:  # pragma: no cover - subprocess
    """Entry point of a forked worker process."""
    # The fork inherits the parent's signal dispositions — including any
    # pending test-harness SIGALRM — so reset to a clean slate: alarms
    # off, SIGINT ignored (the supervisor owns Ctrl-C), SIGTERM handled
    # by the loop below for a graceful drain.
    signal.alarm(0)
    signal.signal(signal.SIGALRM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        asyncio.run(_worker_async(spec))
    except Exception as exc:  # noqa: BLE001 - reported to the supervisor
        try:
            spec.conn.send(
                ("boot_error", spec.index, f"{type(exc).__name__}: {exc}")
            )
        except (OSError, ValueError):
            pass
        os._exit(1)
    os._exit(0)


async def _worker_async(spec: _WorkerSpec) -> None:  # pragma: no cover
    control = _attach(spec.control_name)
    generation, name = _control_read(control.buf)
    segment = _attach(name)
    model = model_from_buffer(segment.buf)
    server = _WorkerServer(spec, control, model, generation, segment)
    stop = asyncio.Event()
    asyncio.get_running_loop().add_signal_handler(signal.SIGTERM, stop.set)
    await server.start()
    await server._pipe_send(("ready", spec.index))
    await stop.wait()
    await server.stop()


# -- supervisor ---------------------------------------------------------------


@dataclass
class _WorkerSlot:
    """Supervisor-side state of one worker position."""

    index: int
    spec: _WorkerSpec
    process: multiprocessing.process.BaseProcess | None = None
    ready: threading.Event = field(default_factory=threading.Event)
    spawned_at: float = 0.0
    deaths: int = 0
    next_spawn_at: float = 0.0
    breaker: CircuitBreaker | None = None


class MultiprocServer:
    """Supervise N shared-memory worker processes on one port.

    The multi-process twin of :class:`~repro.serve.server.PrefetchServer`
    — same construction surface (model or bootstrap sessions, session
    semantics, refresh/snapshot cadences) plus:

    Parameters
    ----------
    workers:
        Worker process count (>= 1).
    socket_mode:
        ``"reuseport"`` — each worker binds the port with
        ``SO_REUSEPORT`` and the kernel balances connections;
        ``"inherit"`` — the supervisor binds one listening socket the
        forked workers share; ``"auto"`` (default) picks ``reuseport``
        when the platform supports it.
    worker_breaker_failures / worker_breaker_cooldown_s /
    respawn_backoff_s:
        Crash-recovery supervision per worker slot (defaults from
        :mod:`repro.params`).

    ``start()`` and ``stop()`` are synchronous: the supervisor has no
    event loop, just a pipe-service thread.  Requires the ``fork`` start
    method (specs, sockets and pipes pass by inheritance).
    """

    def __init__(
        self,
        model: PPMModel | None = None,
        *,
        bootstrap_sessions: "list | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        socket_mode: str = "auto",
        idle_timeout_s: float = params.SESSION_IDLE_TIMEOUT_S,
        max_context_length: int = params.DEFAULT_MAX_CONTEXT_LENGTH,
        model_factory: Callable[[PopularityTable], PPMModel] | None = None,
        window_days: int = 7,
        fold_interval_s: float = params.SERVE_FOLD_INTERVAL_S,
        refresh_interval_s: float | None = None,
        snapshot_path: str | None = None,
        snapshot_interval_s: float | None = None,
        housekeeping_interval_s: float = params.SERVE_HOUSEKEEPING_INTERVAL_S,
        default_threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
        request_timeout_s: float = params.SERVE_REQUEST_TIMEOUT_S,
        max_inflight: int = params.SERVE_MAX_INFLIGHT,
        retry_after_s: float = params.SERVE_RETRY_AFTER_S,
        worker_breaker_failures: int = params.SERVE_WORKER_BREAKER_FAILURES,
        worker_breaker_cooldown_s: float = (
            params.SERVE_WORKER_BREAKER_COOLDOWN_S
        ),
        respawn_backoff_s: float = params.SERVE_WORKER_RESPAWN_BACKOFF_S,
        respawn_backoff_max_s: float = (
            params.SERVE_WORKER_RESPAWN_BACKOFF_MAX_S
        ),
        startup_timeout_s: float = 30.0,
        wal_dir: str | None = None,
        wal_fsync: str = params.SERVE_WAL_FSYNC,
        wal_fsync_interval_s: float = params.SERVE_WAL_FSYNC_INTERVAL_S,
        wal_segment_max_bytes: int = params.SERVE_WAL_SEGMENT_MAX_BYTES,
        wal_segment_max_age_s: float = params.SERVE_WAL_SEGMENT_MAX_AGE_S,
    ) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if socket_mode not in ("auto", "reuseport", "inherit"):
            raise ServeError(f"unknown socket_mode {socket_mode!r}")
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.workers = workers
        self.socket_mode = socket_mode
        manager = None
        if model is None:
            if not bootstrap_sessions:
                raise ServeError(
                    "MultiprocServer needs a fitted model or bootstrap_sessions"
                )
            manager = RollingModelManager(
                model_factory or default_model_factory,
                window_days=window_days,
                refit_every=1,
            )
            model = manager.advance_day(list(bootstrap_sessions))
        self.ref = ModelRef(model)
        self.updater = ModelUpdater(
            self.ref,
            model_factory=model_factory,
            window_days=window_days,
            manager=manager,
        )
        self.wal = (
            ReportJournal(
                wal_dir,
                fsync=wal_fsync,
                fsync_interval_s=wal_fsync_interval_s,
                segment_max_bytes=wal_segment_max_bytes,
                segment_max_age_s=wal_segment_max_age_s,
            )
            if wal_dir
            else None
        )
        self.snapshots = (
            SnapshotManager(
                self.ref,
                snapshot_path,
                wal=self.wal,
                updater=self.updater,
            )
            if snapshot_path
            else None
        )
        self.last_recovery: dict | None = None
        self.wal_session_batches_total = 0
        self.wal_append_failures_total = 0
        self.idle_timeout_s = idle_timeout_s
        self.max_context_length = max_context_length
        self.fold_interval_s = fold_interval_s
        self.refresh_interval_s = refresh_interval_s
        self.snapshot_interval_s = snapshot_interval_s
        self.housekeeping_interval_s = housekeeping_interval_s
        self.default_threshold = default_threshold
        self.request_timeout_s = request_timeout_s
        self.max_inflight = max_inflight
        self.retry_after_s = retry_after_s
        self.worker_breaker_failures = worker_breaker_failures
        self.worker_breaker_cooldown_s = worker_breaker_cooldown_s
        self.respawn_backoff_s = respawn_backoff_s
        self.respawn_backoff_max_s = respawn_backoff_max_s
        self.startup_timeout_s = startup_timeout_s
        self._ctx = None
        self._control: shared_memory.SharedMemory | None = None
        self._segment: shared_memory.SharedMemory | None = None
        self._generation = 0
        self.segment_bytes = 0
        self._anchor_socket: socket.socket | None = None
        self._listen_socket: socket.socket | None = None
        self._slots: list[_WorkerSlot] = []
        self._worker_stats: dict[int, dict] = {}
        self._supervisor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._publish_lock = threading.Lock()
        self.worker_deaths_total = 0
        self.respawns_total = 0
        self.sessions_received_total = 0

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def generation(self) -> int:
        return self._generation

    def recover_journal(self, boundary: int | None = None) -> dict | None:
        """Fold the journal left by a previous process into the model.

        The supervisor has no session tracker, so recovered reports are
        grouped into completed sessions (idle-gap rule) and folded along
        with the journalled session batches and the snapshot carry.  Call
        before :meth:`start` — the model segment the workers map is
        published at start, so recovery must land first.  Returns the
        recovery stats (kept on :attr:`last_recovery`), or ``None``
        without a journal.
        """
        if self.wal is None:
            return None
        if self._control is not None:
            raise ServeError("recover_journal must run before start()")
        recovery = read_journal(self.wal.directory, boundary=boundary)
        sessions = recovery_sessions(
            recovery, idle_timeout_s=self.idle_timeout_s
        )
        self.updater.add_sessions(sessions)
        folded = self.updater.fold_pending()
        self.last_recovery = {
            **recovery.stats(),
            "sessions_recovered": len(sessions),
            "sessions_folded": folded,
        }
        if recovery.records or recovery.truncated_tails:
            logger.info(
                "journal recovery: %d records across %d segments -> %d "
                "sessions folded; %d torn tails truncated, %d corrupt "
                "frames",
                recovery.records_replayed,
                recovery.segments_scanned,
                folded,
                recovery.truncated_tails,
                recovery.corrupt_frames,
            )
        return self.last_recovery

    def start(self) -> "MultiprocServer":
        if self._control is not None:
            raise ServeError("server already started")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ServeError(
                "multi-process serving requires the 'fork' start method"
            )
        self._ctx = multiprocessing.get_context("fork")
        self._control = shared_memory.SharedMemory(
            create=True, size=_CONTROL_SIZE
        )
        self._control.buf[:_CONTROL_SIZE] = b"\x00" * _CONTROL_SIZE
        self._generation = self.ref.version
        self._publish_segment(self._generation)
        mode = self.socket_mode
        if mode == "auto":
            mode = "reuseport" if _reuseport_available() else "inherit"
        elif mode == "reuseport" and not _reuseport_available():
            raise ServeError("SO_REUSEPORT is not available on this platform")
        self._effective_socket_mode = mode
        if mode == "reuseport":
            # The anchor is bound but never listens: it pins the (possibly
            # ephemeral) port for the workers' own SO_REUSEPORT binds
            # without joining the kernel's accept balancing, which only
            # spreads connections over *listening* sockets.
            anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            anchor.bind((self.host, self._requested_port))
            self._anchor_socket = anchor
            self.port = anchor.getsockname()[1]
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self._requested_port))
            listener.listen(128)
            listener.setblocking(False)
            self._listen_socket = listener
            self.port = listener.getsockname()[1]
        for index in range(self.workers):
            spec = _WorkerSpec(
                index=index,
                host=self.host,
                port=self.port,
                control_name=self._control.name,
                conn=None,  # type: ignore[arg-type] - set per spawn
                listen_socket=self._listen_socket,
                idle_timeout_s=self.idle_timeout_s,
                max_context_length=self.max_context_length,
                default_threshold=self.default_threshold,
                request_timeout_s=self.request_timeout_s,
                max_inflight=self.max_inflight,
                retry_after_s=self.retry_after_s,
                housekeeping_interval_s=self.housekeeping_interval_s,
            )
            slot = _WorkerSlot(
                index=index,
                spec=spec,
                breaker=CircuitBreaker(
                    failure_threshold=self.worker_breaker_failures,
                    cooldown_s=self.worker_breaker_cooldown_s,
                ),
            )
            self._slots.append(slot)
            self._spawn(slot)
        self._await_boot()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-mp-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def _await_boot(self) -> None:
        deadline = time.monotonic() + self.startup_timeout_s
        for slot in self._slots:
            while not slot.ready.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not slot.spec.conn.poll(
                    max(0.05, remaining)
                ):
                    self._abort_boot()
                    raise ServeError(
                        f"worker {slot.index} did not become ready within "
                        f"{self.startup_timeout_s:.0f}s"
                    )
                try:
                    message = slot.spec.conn.recv()
                except (EOFError, OSError):
                    self._abort_boot()
                    raise ServeError(
                        f"worker {slot.index} died during startup"
                    ) from None
                if message[0] == "boot_error":
                    self._abort_boot()
                    raise ServeError(
                        f"worker {message[1]} failed to start: {message[2]}"
                    )
                self._handle_message(slot, message)

    def _abort_boot(self) -> None:
        self._stopping.set()
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                slot.process.terminate()
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(timeout=5)
        self._cleanup_shared()

    def _spawn(self, slot: _WorkerSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        slot.spec = replace(slot.spec, conn=child_conn)
        process = self._ctx.Process(
            target=_worker_main,
            args=(slot.spec,),
            name=f"repro-serve-worker-{slot.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        # The supervisor talks over the parent end from here on.
        slot.spec = replace(slot.spec, conn=parent_conn)
        slot.process = process
        slot.spawned_at = time.monotonic()
        slot.ready.clear()

    def run(self) -> None:  # pragma: no cover - interactive entry point
        """Blocking entry point for the CLI: serve until SIGTERM/SIGINT.

        Both signals drain cleanly — workers are terminated (they flush
        their open sessions up the pipe on SIGTERM), the final fold and
        snapshot run, the journal is synced and closed — matching the
        single-process server's graceful path.
        """
        self.start()
        print(
            f"repro serve: {self.workers} workers "
            f"({self._effective_socket_mode}) on http://{self.host}:{self.port}"
        )
        stopping = threading.Event()

        def _on_signal(signum, frame) -> None:
            stopping.set()

        previous: dict[int, object] = {}
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, _on_signal)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        try:
            stopping.wait()
            print("repro serve: signal received, shutting down cleanly")
        except KeyboardInterrupt:
            pass
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.stop()

    def stop(self) -> None:
        if self._control is None:
            return
        self._stopping.set()
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                slot.process.terminate()
        if self._supervisor is not None:
            self._supervisor.join(timeout=15)
            self._supervisor = None
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(timeout=10)
                if slot.process.is_alive():  # pragma: no cover - stuck worker
                    slot.process.kill()
                    slot.process.join(timeout=5)
                slot.process = None
        # Workers forward their open sessions on the way out; pick those
        # final messages up before folding one last time.
        for slot in self._slots:
            try:
                while slot.spec.conn.poll(0):
                    message = slot.spec.conn.recv()
                    if message[0] in ("sessions", "stats"):
                        self._handle_message(slot, message)
            except (EOFError, OSError):
                pass
        folded = self.updater.fold_pending()
        snapshot_version = None
        if self.snapshots is not None:
            snapshot_version = asyncio.run(self.snapshots.snapshot_once())
        if self.wal is not None:
            try:
                self.wal.sync()
            except WalError as exc:  # pragma: no cover - dying disk
                logger.warning("final journal sync failed: %s", exc)
            self.wal.close()
        logger.info(
            "shutdown flush: %d sessions folded, snapshot %s, journal %s",
            folded,
            f"v{snapshot_version}" if snapshot_version is not None
            else "skipped" if self.snapshots is None else "failed",
            f"synced ({self.wal.appended_records_total} records)"
            if self.wal is not None
            else "disabled",
        )
        self._cleanup_shared()

    def _cleanup_shared(self) -> None:
        if self._segment is not None:
            self._segment.close()
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._segment = None
        if self._control is not None:
            self._control.close()
            try:
                self._control.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._control = None
        if self._anchor_socket is not None:
            self._anchor_socket.close()
            self._anchor_socket = None
        if self._listen_socket is not None:
            self._listen_socket.close()
            self._listen_socket = None

    # -- publication -----------------------------------------------------------

    def _publish_segment(self, generation: int) -> None:
        """Write the current model into a fresh segment and flip to it."""
        with self._publish_lock:
            buf = model_to_buffer(self.ref.model)
            segment = shared_memory.SharedMemory(create=True, size=len(buf))
            segment.buf[: len(buf)] = buf
            old = self._segment
            self._segment = segment
            self.segment_bytes = len(buf)
            self._generation = generation
            _control_write(self._control.buf, generation, segment.name)
            if old is not None:
                # Workers that already mapped the old segment keep their
                # mapping (POSIX keeps unlinked memory alive while
                # mapped); late attachers retry through the control
                # block and land on the new name.
                old.close()
                try:
                    old.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def _refresh_and_publish(self) -> tuple[int | None, str | None]:
        version = self.updater.refresh_sync()
        if version is None:
            return None, "no sessions retained; nothing to rebuild"
        if version != self._generation:
            self._publish_segment(version)
        return self._generation, None

    # -- supervision loop ------------------------------------------------------

    def _supervise(self) -> None:
        last_fold = last_refresh = last_snapshot = time.monotonic()
        while not self._stopping.is_set():
            conns = {
                slot.spec.conn: slot
                for slot in self._slots
                if slot.process is not None
            }
            if conns:
                try:
                    readable = multiprocessing.connection.wait(
                        list(conns), timeout=0.2
                    )
                except OSError:  # pragma: no cover - closed mid-wait
                    readable = []
            else:
                time.sleep(0.2)
                readable = []
            for conn in readable:
                slot = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    continue  # death handled by the reaper below
                self._handle_message(slot, message)
            self._reap_and_respawn()
            if self.wal is not None:
                self.wal.tick()
            now = time.monotonic()
            if now - last_fold >= self.fold_interval_s:
                self.updater.fold_pending()
                last_fold = now
            if (
                self.refresh_interval_s is not None
                and now - last_refresh >= self.refresh_interval_s
            ):
                self._refresh_and_publish()
                last_refresh = now
            if (
                self.snapshots is not None
                and self.snapshot_interval_s is not None
                and now - last_snapshot >= self.snapshot_interval_s
            ):
                asyncio.run(self.snapshots.snapshot_once())
                last_snapshot = now

    def _handle_message(self, slot: _WorkerSlot, message: tuple) -> None:
        tag = message[0]
        if tag == "ready":
            slot.ready.set()
        elif tag == "sessions":
            sessions = list(message[2])
            if self.wal is not None:
                # Journal before folding: a supervisor crash after this
                # point replays the batch from the journal.  A failed
                # append still folds (the live model must not drop piped
                # work) — the batch just loses crash durability, which
                # the counter and the degraded log line surface.
                try:
                    self.wal.append_sessions(sessions)
                    self.wal_session_batches_total += 1
                except WalError as exc:
                    self.wal_append_failures_total += 1
                    logger.warning(
                        "journal append of %d piped sessions failed (%s); "
                        "batch folded without crash durability",
                        len(sessions),
                        exc,
                    )
            self.updater.add_sessions(sessions)
            self.sessions_received_total += len(sessions)
        elif tag == "stats":
            self._worker_stats[message[1]] = message[2]
            if (
                slot.process is not None
                and time.monotonic() - slot.spawned_at > 2.0
            ):
                # Two seconds of life is our "the respawn took": clears
                # the slot's failure streak so one crash long ago does
                # not count against a future one.
                slot.breaker.record_success()
                slot.deaths = 0
        elif tag == "refresh":
            version, error = self._refresh_and_publish()
            self._reply(slot, ("refresh", version, error))
        elif tag == "metrics":
            self._worker_stats[message[1]] = message[2]
            self._reply(slot, ("metrics", self._cluster_stats()))
        elif tag == "snapshot":
            if self.snapshots is None:
                self._reply(
                    slot,
                    ("snapshot", None, None,
                     "server started without a snapshot path"),
                )
            else:
                version = asyncio.run(self.snapshots.snapshot_once())
                if version is None:
                    self._reply(
                        slot,
                        ("snapshot", None, None,
                         "snapshot write failed after retries; last-good "
                         "snapshot retained"),
                    )
                else:
                    self._reply(
                        slot,
                        ("snapshot", version, self.snapshots.path, None),
                    )
        elif tag == "boot_error":  # pragma: no cover - raced into the loop
            logger.error("worker %s failed to boot: %s", message[1], message[2])

    @staticmethod
    def _reply(slot: _WorkerSlot, message: tuple) -> None:
        try:
            slot.spec.conn.send(message)
        except (OSError, BrokenPipeError):  # pragma: no cover - worker died
            pass

    def _cluster_stats(self) -> dict:
        return {
            "workers": dict(self._worker_stats),
            "worker_count": self.workers,
            "generation": self._generation,
            "segment_bytes": self.segment_bytes,
            "worker_deaths_total": self.worker_deaths_total,
            "respawns_total": self.respawns_total,
            "folded_sessions_total": self.updater.folded_sessions_total,
            "pending_sessions": self.updater.pending_sessions,
            "refresh_total": self.updater.refresh_total,
            "refresh_failures_total": self.updater.refresh_failures_total,
            "wal": (
                {
                    **self.wal.stats(),
                    "session_batches_total": self.wal_session_batches_total,
                    "append_failures_total": self.wal_append_failures_total,
                }
                if self.wal is not None
                else None
            ),
        }

    def _reap_and_respawn(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            process = slot.process
            if process is None or process.is_alive():
                continue
            process.join()
            slot.process = None
            slot.ready.clear()
            if self._stopping.is_set():
                continue
            self.worker_deaths_total += 1
            slot.deaths += 1
            slot.breaker.record_failure()
            backoff = min(
                self.respawn_backoff_s * (2 ** (slot.deaths - 1)),
                self.respawn_backoff_max_s,
            )
            slot.next_spawn_at = now + backoff
            logger.warning(
                "worker %d exited unexpectedly (code %s); respawn in %.2fs "
                "(breaker %s, %d consecutive deaths)",
                slot.index,
                process.exitcode,
                backoff,
                slot.breaker.state,
                slot.deaths,
            )
        for slot in self._slots:
            if (
                slot.process is None
                and not self._stopping.is_set()
                and now >= slot.next_spawn_at
                and slot.breaker.allow()
            ):
                self._spawn(slot)
                self.respawns_total += 1
