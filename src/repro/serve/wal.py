"""Durable write-ahead report journal: zero-loss crash recovery.

Snapshots persist the model every few minutes
(:data:`repro.params.SERVE_SNAPSHOT_INTERVAL_S`); everything reported
since the last one dies with the process.  This module closes that gap
with the classic database answer — a write-ahead log: every report is
appended (and flushed to the operating system) *before* it is
acknowledged, so a crash, OOM-kill or ``kill -9`` loses at most the
requests that were never answered ``200``.

Format
------
A journal is a directory of segment files ``wal-<seq>.log``.  Each
segment starts with an 8-byte header (``RPWL`` magic + u32 format
version, validated through :mod:`repro.validation`) followed by records
framed as ``<u32 length><u32 crc32><payload>`` — the same CRC-32 the
snapshot/buffer planes use.  Payloads are compact JSON:

``{"k": "r", "c": client, "u": url, "t": ts}``
    One acknowledged report (the single-process server's unit of
    durability).
``{"k": "s", "sessions": [[client, [[url, ts], ...]], ...]}``
    A batch of completed sessions (what the multi-process supervisor
    journals before folding piped-up sessions).
``{"k": "c", "b": boundary, "open": [...], "pending": [...]}``
    A *carry* record written at a snapshot boundary: the open-session
    and pending-fold state that the model snapshot does **not** cover.
    Valid only for the snapshot whose stored boundary matches ``b`` —
    carries from failed snapshot attempts are skipped at recovery
    because everything they duplicate is still present as ordinary
    records in the retained segments.

Durability policy (:data:`repro.params.SERVE_WAL_FSYNC`): every append
is flushed to the file descriptor (page cache) before the caller acks,
which is already crash-proof against *process* death; ``fsync`` guards
against machine/power failure — ``"off"`` never syncs, ``"interval"``
(default) syncs at most every ``SERVE_WAL_FSYNC_INTERVAL_S`` seconds,
``"batch"`` syncs before every acknowledgement.

Rotation & compaction: the active segment is sealed and a new one
opened when it exceeds ``SERVE_WAL_SEGMENT_MAX_BYTES`` or
``SERVE_WAL_SEGMENT_MAX_AGE_S``.  A *successful* snapshot stores the
rotation boundary inside the snapshot document and then deletes the
sealed segments below it — compaction is pure space reclamation, never
a correctness step, so a failed snapshot simply leaves segments (and an
orphaned carry) behind for the next attempt.

Recovery (:func:`read_journal`): segments below the snapshot's boundary
are skipped (already inside the model); the rest replay in order.  A
segment scan stops at the first torn or corrupt frame (torn-tail
tolerant: a record half-written at the moment of death truncates
logically, it never poisons the journal) but later *segments* still
replay — an append error mid-run seals the damaged segment and rotates,
so a valid frame never follows a torn one within a segment.

Injection points (``repro.resilience``): ``wal.write_error`` fails an
append before any byte is written; ``wal.torn_tail`` tears an append
mid-frame (sealing the segment, as a crash would); ``wal.fsync_stall``
sleeps inside fsync.
"""

from __future__ import annotations

import json
import logging
import os
import re
import struct
import time
from dataclasses import dataclass, field
from json.encoder import encode_basestring_ascii as _json_string
from math import isfinite
from typing import Callable

from repro import params
from repro.errors import ServeError, WalError
from repro.resilience.faults import fire
from repro.trace.record import Request
from repro.trace.sessions import Session
from repro.validation import checksum

logger = logging.getLogger("repro.serve")

WAL_MAGIC = b"RPWL"
WAL_VERSION = 1

_HEADER = struct.Struct("<4sI")  # magic, format version
_FRAME = struct.Struct("<II")  # payload length, payload crc32

#: Upper bound on one record's payload; a length field above it is
#: treated as corruption (a bit flip in the length must not make the
#: reader attempt a gigabyte allocation).
_MAX_RECORD_BYTES = 16 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")

_FSYNC_POLICIES = ("off", "interval", "batch")


__all__ = [
    "ReportJournal",
    "WalRecovery",
    "WalError",
    "read_journal",
    "replay_into_tracker",
    "recovery_sessions",
    "list_segments",
    "segment_name",
]


def segment_name(seq: int) -> str:
    return f"wal-{seq:08d}.log"


def list_segments(directory: str) -> list[tuple[int, str]]:
    """``(seq, path)`` for every segment file, ascending by sequence."""
    found: list[tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort()
    return found


def _encode_sessions(sessions: list[Session]) -> list:
    return [
        [s.client, [[r.url, r.timestamp] for r in s.requests]]
        for s in sessions
    ]


def _decode_sessions(encoded: list) -> list[Session]:
    sessions = []
    for client, clicks in encoded:
        if not clicks:
            continue
        sessions.append(
            Session(
                client=client,
                requests=tuple(
                    Request(client=client, timestamp=ts, url=url, size=0)
                    for url, ts in clicks
                ),
            )
        )
    return sessions


class ReportJournal:
    """Append-only, CRC-framed, segment-rotating report journal.

    Single-writer by design: every append happens on the serving event
    loop (or the supervisor's pipe-service thread), so no internal
    locking is needed — the same discipline the tracker and updater
    already follow.

    Parameters
    ----------
    directory:
        Journal directory (created if missing).  Existing segments are
        never appended to: each process lifetime opens a fresh segment
        above the highest sequence found, so a crash's torn tail stays
        sealed where recovery can truncate it.
    fsync / fsync_interval_s:
        Durability policy, see the module docstring.
    segment_max_bytes / segment_max_age_s:
        Rotation thresholds for the active segment.
    clock:
        Monotonic clock, injectable for the age-rotation tests.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: str = params.SERVE_WAL_FSYNC,
        fsync_interval_s: float = params.SERVE_WAL_FSYNC_INTERVAL_S,
        segment_max_bytes: int = params.SERVE_WAL_SEGMENT_MAX_BYTES,
        segment_max_age_s: float = params.SERVE_WAL_SEGMENT_MAX_AGE_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            known = ", ".join(_FSYNC_POLICIES)
            raise ServeError(
                f"unknown wal fsync policy {fsync!r}; expected one of {known}"
            )
        if segment_max_bytes < 64:
            raise ServeError(
                f"segment_max_bytes must be >= 64, got {segment_max_bytes}"
            )
        self.directory = directory
        self.fsync_policy = fsync
        self.fsync_interval_s = fsync_interval_s
        self.segment_max_bytes = segment_max_bytes
        self.segment_max_age_s = segment_max_age_s
        self._clock = clock
        self._file = None
        self._size = 0
        self._opened_at = 0.0
        self._last_fsync = clock()
        self._dirty = False
        self.appended_records_total = 0
        self.appended_bytes_total = 0
        self.fsync_total = 0
        self.rotations_total = 0
        self.write_errors_total = 0
        self.compacted_segments_total = 0
        self.consecutive_write_errors = 0
        os.makedirs(directory, exist_ok=True)
        existing = list_segments(directory)
        self.active_seq = (existing[-1][0] + 1) if existing else 1
        self._open_segment(self.active_seq)

    # -- segment lifecycle -----------------------------------------------------

    def _open_segment(self, seq: int) -> None:
        path = os.path.join(self.directory, segment_name(seq))
        handle = open(path, "xb", buffering=0)
        handle.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION))
        self._file = handle
        self._size = _HEADER.size
        self._opened_at = self._clock()
        self.active_seq = seq

    def rotate(self) -> int:
        """Seal the active segment, open the next; returns the new seq.

        The snapshot manager calls this to establish a boundary: every
        record below the returned sequence is in sealed segments that a
        successful snapshot (plus its carry record) fully covers.
        """
        self._seal(fsync=self.fsync_policy != "off")
        self.rotations_total += 1
        self._open_segment(self.active_seq + 1)
        return self.active_seq

    def _seal(self, *, fsync: bool) -> None:
        handle = self._file
        if handle is None:
            return
        self._file = None
        try:
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        except OSError:
            pass
        finally:
            try:
                handle.close()
            except OSError:
                pass
        self._dirty = False

    def close(self) -> None:
        """Flush, sync and close the active segment (idempotent)."""
        self._seal(fsync=self.fsync_policy != "off")

    @property
    def closed(self) -> bool:
        return self._file is None

    # -- appends ---------------------------------------------------------------

    def append_report(self, client: str, url: str, timestamp: float) -> None:
        """Journal one report; the caller acks only after this returns.

        This is the serving hot path — one call per acknowledged
        ``POST /report`` — so the payload is framed by hand (the C
        string escaper plus ``repr`` of the float, which is exactly what
        ``json.dumps`` emits for finite floats) instead of encoding a
        dict.  Anything unusual falls back to the generic encoder.
        """
        if type(timestamp) is float and isfinite(timestamp):
            self._append_payload(
                b'{"k":"r","c":%s,"u":%s,"t":%s}'
                % (
                    _json_string(client).encode(),
                    _json_string(url).encode(),
                    repr(timestamp).encode(),
                )
            )
        else:
            self._append({"k": "r", "c": client, "u": url, "t": timestamp})

    def append_sessions(self, sessions: list[Session]) -> None:
        """Journal a batch of completed sessions (supervisor path)."""
        if sessions:
            self._append({"k": "s", "sessions": _encode_sessions(sessions)})

    def append_carry(
        self,
        boundary: int,
        open_sessions: list,
        pending_sessions: list[Session],
    ) -> None:
        """Journal the snapshot-boundary carry record.

        ``open_sessions`` uses the already-encoded
        ``[client, [[url, ts], ...]]`` shape (see
        :meth:`~repro.serve.state.ClientSessionTracker.open_session_state`);
        ``pending_sessions`` are Session objects awaiting the next fold.
        Recovery applies the carry only when the restored snapshot's
        stored boundary equals ``boundary``.
        """
        self._append(
            {
                "k": "c",
                "b": boundary,
                "open": list(open_sessions),
                "pending": _encode_sessions(pending_sessions),
            }
        )

    def _append(self, record: dict) -> None:
        self._append_payload(json.dumps(record, separators=(",", ":")).encode())

    def _append_payload(self, payload: bytes) -> None:
        if self._file is None:
            raise WalError("report journal is closed")
        frame = _FRAME.pack(len(payload), checksum(payload)) + payload
        if fire("wal.write_error"):
            self.write_errors_total += 1
            self.consecutive_write_errors += 1
            raise WalError("injected journal write error")
        torn = fire("wal.torn_tail")
        try:
            if torn is not None:
                self._file.write(frame[: max(1, len(frame) // 2)])
                raise OSError("injected torn append")
            # The segment is unbuffered: one write(2) puts the frame in
            # the page cache, which is the crash-durability guarantee.
            written = self._file.write(frame)
            while written < len(frame):  # short writes are theoretical
                written += self._file.write(memoryview(frame)[written:])
        except OSError as exc:
            # The segment may now end in a partial frame; recovery
            # truncates it, but a valid frame must never follow it —
            # seal the damaged segment and move on to a fresh one.
            self.write_errors_total += 1
            self.consecutive_write_errors += 1
            self._seal(fsync=False)
            self.rotations_total += 1
            try:
                self._open_segment(self.active_seq + 1)
            except OSError:
                # Disk truly gone: later appends fail loudly on the
                # closed journal; /healthz reports degraded meanwhile.
                logger.error(
                    "journal cannot open a fresh segment in %s",
                    self.directory,
                )
            raise WalError(f"journal append failed: {exc}") from exc
        self._size += len(frame)
        self.appended_records_total += 1
        self.appended_bytes_total += len(frame)
        self.consecutive_write_errors = 0
        self._dirty = True
        if self.fsync_policy == "batch":
            self._do_fsync()
        elif (
            self.fsync_policy == "interval"
            and self._clock() - self._last_fsync >= self.fsync_interval_s
        ):
            self._do_fsync()
        if self._size >= self.segment_max_bytes:
            self.rotate()

    # -- periodic work ---------------------------------------------------------

    def _do_fsync(self) -> None:
        spec = fire("wal.fsync_stall")
        if spec is not None:
            time.sleep(spec.delay_s)
        try:
            os.fsync(self._file.fileno())
        except OSError as exc:
            self.write_errors_total += 1
            raise WalError(f"journal fsync failed: {exc}") from exc
        self.fsync_total += 1
        self._last_fsync = self._clock()
        self._dirty = False

    def sync(self) -> None:
        """Force an fsync of the active segment now (shutdown path)."""
        if self._file is not None and self._dirty:
            self._do_fsync()

    def tick(self) -> None:
        """Housekeeping: age-based rotation and interval fsync.

        Swallows sync errors (they are counted and re-surface on the
        next append) so the caller's housekeeping loop never dies.
        """
        if self._file is None:
            return
        now = self._clock()
        if (
            self._size > _HEADER.size
            and now - self._opened_at >= self.segment_max_age_s
        ):
            self.rotate()
            return
        if (
            self.fsync_policy == "interval"
            and self._dirty
            and now - self._last_fsync >= self.fsync_interval_s
        ):
            try:
                self._do_fsync()
            except WalError:
                pass

    # -- compaction ------------------------------------------------------------

    def compact(self, boundary: int) -> int:
        """Delete sealed segments below ``boundary``; returns the count.

        Only called after a snapshot storing ``boundary`` has been
        verified on disk — every deleted record is inside the model (or
        its carry).  Deletion failures are logged and retried by the
        next snapshot's compaction; correctness never depends on them.
        """
        removed = 0
        for seq, path in list_segments(self.directory):
            if seq >= boundary:
                break
            try:
                os.unlink(path)
                removed += 1
            except OSError as exc:  # pragma: no cover - exotic perms
                logger.warning("journal compaction cannot remove %s: %s",
                               path, exc)
        self.compacted_segments_total += removed
        return removed

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "appended_records_total": self.appended_records_total,
            "appended_bytes_total": self.appended_bytes_total,
            "fsync_total": self.fsync_total,
            "rotations_total": self.rotations_total,
            "write_errors_total": self.write_errors_total,
            "compacted_segments_total": self.compacted_segments_total,
            "active_segment": self.active_seq,
            "fsync_policy": self.fsync_policy,
        }


# -- recovery ------------------------------------------------------------------


@dataclass
class WalRecovery:
    """What one :func:`read_journal` scan found and decided.

    ``records`` is the replayable stream in append order — carries that
    do not match the snapshot boundary are already filtered out.
    """

    boundary: int | None = None
    records: list[dict] = field(default_factory=list)
    segments_scanned: int = 0
    segments_skipped: int = 0
    corrupt_segments: int = 0
    empty_segments: int = 0
    truncated_tails: int = 0
    corrupt_frames: int = 0
    carry_applied: int = 0
    carry_skipped: int = 0
    bytes_scanned: int = 0

    @property
    def records_replayed(self) -> int:
        return len(self.records)

    def stats(self) -> dict:
        return {
            "boundary": self.boundary,
            "records_replayed": self.records_replayed,
            "segments_scanned": self.segments_scanned,
            "segments_skipped": self.segments_skipped,
            "corrupt_segments": self.corrupt_segments,
            "empty_segments": self.empty_segments,
            "truncated_tails": self.truncated_tails,
            "corrupt_frames": self.corrupt_frames,
            "carry_applied": self.carry_applied,
            "carry_skipped": self.carry_skipped,
            "bytes_scanned": self.bytes_scanned,
        }


def _scan_segment(path: str, recovery: WalRecovery, boundary: int | None) -> None:
    """Append ``path``'s valid record prefix to ``recovery`` (never raises)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        recovery.corrupt_segments += 1
        return
    recovery.bytes_scanned += len(data)
    if not data:
        recovery.empty_segments += 1
        return
    if len(data) < _HEADER.size:
        recovery.truncated_tails += 1
        return
    magic, version = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC or version != WAL_VERSION:
        recovery.corrupt_segments += 1
        return
    offset = _HEADER.size
    size = len(data)
    while offset < size:
        if size - offset < _FRAME.size:
            recovery.truncated_tails += 1
            return
        length, stored_crc = _FRAME.unpack_from(data, offset)
        if length > _MAX_RECORD_BYTES:
            recovery.corrupt_frames += 1
            return
        start = offset + _FRAME.size
        end = start + length
        if end > size:
            recovery.truncated_tails += 1
            return
        payload = data[start:end]
        if checksum(payload) != stored_crc:
            recovery.corrupt_frames += 1
            return
        try:
            record = json.loads(payload)
        except ValueError:
            recovery.corrupt_frames += 1
            return
        if not isinstance(record, dict) or "k" not in record:
            recovery.corrupt_frames += 1
            return
        offset = end
        if record["k"] == "c":
            if boundary is not None and record.get("b") == boundary:
                recovery.carry_applied += 1
                recovery.records.append(record)
            else:
                # A carry from a failed (or different) snapshot attempt:
                # everything it duplicates is still present as ordinary
                # records in the retained segments, so applying it would
                # double-count.
                recovery.carry_skipped += 1
        else:
            recovery.records.append(record)


def read_journal(directory: str, *, boundary: int | None = None) -> WalRecovery:
    """Scan a journal directory into a replayable :class:`WalRecovery`.

    ``boundary`` is the value stored inside the restored snapshot (None
    when there is no snapshot, or a pre-WAL one): segments below it are
    already folded into the snapshot and are skipped; carry records are
    applied only when their stored boundary matches.  Deterministic and
    crash-free on any damage — torn tails truncate, corrupt frames stop
    their segment, tampered headers skip their segment.
    """
    recovery = WalRecovery(boundary=boundary)
    for seq, path in list_segments(directory):
        if boundary is not None and seq < boundary:
            recovery.segments_skipped += 1
            continue
        recovery.segments_scanned += 1
        _scan_segment(path, recovery, boundary)
    return recovery


def replay_into_tracker(recovery: WalRecovery, tracker, updater) -> dict:
    """Replay recovered records through a live tracker/updater pair.

    The single-process boot path: ``"r"`` records re-observe through the
    :class:`~repro.serve.state.ClientSessionTracker` (open sessions come
    back *open*, with their context, and idle gaps split sessions
    exactly as they did live); session batches and carries feed the
    updater.  Ends with a fold so the recovered state is in the model
    before the first request lands.
    """
    reports = 0
    session_batches = 0
    for record in recovery.records:
        kind = record["k"]
        if kind == "r":
            tracker.observe(record["c"], record["u"], record["t"])
            reports += 1
        elif kind == "s":
            updater.add_sessions(_decode_sessions(record["sessions"]))
            session_batches += 1
        elif kind == "c":
            for client, clicks in record["open"]:
                for url, ts in clicks:
                    tracker.observe(client, url, ts)
            updater.add_sessions(_decode_sessions(record["pending"]))
    updater.add_sessions(tracker.drain_completed())
    folded = updater.fold_pending()
    return {
        "reports": reports,
        "session_batches": session_batches,
        "sessions_folded": folded,
        "open_clients": tracker.active_clients,
    }


def recovery_sessions(
    recovery: WalRecovery,
    *,
    idle_timeout_s: float = params.SESSION_IDLE_TIMEOUT_S,
) -> list[Session]:
    """Recovered records as completed sessions (multi-process boot path).

    The supervisor has no tracker, so ``"r"`` records are grouped into
    sessions per client with the paper's idle-gap rule and everything is
    folded as completed work; open-session continuity is a
    single-process luxury the worker model cannot offer anyway (workers
    die with their open sessions).
    """
    sessions: list[Session] = []
    open_clicks: dict[str, list[tuple[str, float]]] = {}

    def flush(client: str) -> None:
        clicks = open_clicks.pop(client, None)
        if clicks:
            sessions.append(
                Session(
                    client=client,
                    requests=tuple(
                        Request(client=client, timestamp=ts, url=url, size=0)
                        for url, ts in clicks
                    ),
                )
            )

    for record in recovery.records:
        kind = record["k"]
        if kind == "r":
            client, url, ts = record["c"], record["u"], record["t"]
            clicks = open_clicks.get(client)
            if clicks and ts - clicks[-1][1] > idle_timeout_s:
                flush(client)
            open_clicks.setdefault(client, []).append((url, ts))
        elif kind == "s":
            sessions.extend(_decode_sessions(record["sessions"]))
        elif kind == "c":
            sessions.extend(_decode_sessions(record["open"]))
            sessions.extend(_decode_sessions(record["pending"]))
    for client in sorted(open_clicks):
        flush(client)
    return sessions
