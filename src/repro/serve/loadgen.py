"""Trace-driven load generator for the prediction server.

Replays a synthetic trace (:mod:`repro.synth`) against a running server
over persistent keep-alive connections and reports throughput and latency
percentiles — the serving twin of the offline replay benchmarks.

Each page view of the trace becomes one client interaction.  Two modes:

* ``combined`` (default) — one ``POST /report?...&predict=1`` per click:
  the response already carries the predictions for the updated context,
  so every request is a prediction request (the low-latency deployment
  pattern, and what ``BENCH_serve.json``'s predictions/sec measures).
* ``paired`` — ``POST /report`` followed by ``GET /predict``, exercising
  the two-endpoint surface.

Clients are partitioned across connections, so each client's clicks
arrive in order (the tracker's sessions are real access sessions) while
connections drive the server concurrently.  ``--refresh-mid-run`` fires
one ``POST /admin/refresh`` halfway through — with the zero-failure
assertion this demonstrates the read-copy-update hot swap under load.

Fault tolerance: the replay loop is written for an unreliable server.  A
connection reset, short read, garbage response or per-request timeout
counts **one** failed request, the worker reconnects and keeps replaying
— the report always gets written.  A ``503`` (the server shedding load or
timing a request out) is not a failure: the worker honours ``Retry-After``
and resends the same frame, counting a ``retried_503``; only a frame that
stays 503 through the whole retry budget is recorded as failed.  The
``client.slow_report`` and ``client.corrupt_report`` injection points
(:mod:`repro.resilience`) let a chaos run delay a client mid-session or
send a malformed frame the server must answer with 400.

``--spawn`` boots an in-process :class:`~repro.serve.server.ServerThread`
trained on the head of the generated trace and replays the tail against
it: the self-contained mode the CI smoke job and the committed
``benchmarks/results/BENCH_serve.json`` use.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Sequence
from urllib.parse import quote

from repro import params
from repro.errors import ServeError
from repro.resilience.faults import fire
from repro.synth.generator import generate_trace
from repro.trace.dataset import Trace

#: (client, prebuilt request frames) — one frame list per page view.
_Event = tuple[str, list[bytes]]

#: Everything a flaky transport can throw at one request/response
#: exchange: resets and refused reconnects (OSError covers
#: ConnectionError), short reads, per-request timeouts (asyncio's own on
#: 3.10, the builtin on 3.11+), and garbage where a status line should be.
_TRANSPORT_ERRORS = (
    OSError,
    EOFError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
    TimeoutError,
    ValueError,
)

#: What ``client.corrupt_report`` puts on the wire: a request line the
#: server cannot parse (no method/target/version split), answered with
#: 400 and a connection close.
_CORRUPT_FRAME = b"report-click-without-a-protocol\r\n\r\n"

_VERSION_MARKER = b'"model_version":'


def _model_version(body: bytes) -> int | None:
    """The ``model_version`` field of a response body, parsed cheaply."""
    marker = body.find(_VERSION_MARKER)
    if marker < 0:
        return None
    start = marker + len(_VERSION_MARKER)
    end = start
    while end < len(body) and body[end : end + 1].isdigit():
        end += 1
    return int(body[start:end]) if end > start else None


def _percentile(sorted_values: Sequence[float], quantile: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, round(quantile * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _frames_for(
    client: str, url: str, timestamp: float, *, mode: str, threshold_arg: str
) -> list[bytes]:
    """The request frames one page view becomes, for either mode."""
    quoted_client = quote(client, safe="")
    quoted_url = quote(url, safe="")
    report = (
        f"POST /report?client={quoted_client}&url={quoted_url}&ts={timestamp:.3f}"
    )
    if mode == "combined":
        return [
            (
                f"{report}&predict=1{threshold_arg} HTTP/1.1\r\n"
                f"Host: loadgen\r\nContent-Length: 0\r\n\r\n"
            ).encode()
        ]
    return [
        (
            f"{report} HTTP/1.1\r\nHost: loadgen\r\n"
            f"Content-Length: 0\r\n\r\n"
        ).encode(),
        (
            f"GET /predict?client={quoted_client}{threshold_arg} HTTP/1.1\r\n"
            f"Host: loadgen\r\n\r\n"
        ).encode(),
    ]


def _build_events(
    trace: Trace,
    *,
    mode: str,
    threshold: float,
    max_events: int | None,
) -> list[_Event]:
    """Pre-encode every request frame so the replay loop only does I/O."""
    events: list[_Event] = []
    threshold_arg = f"&threshold={threshold}"
    for request in trace.requests:
        events.append(
            (
                request.client,
                _frames_for(
                    request.client,
                    request.url,
                    request.timestamp,
                    mode=mode,
                    threshold_arg=threshold_arg,
                ),
            )
        )
        if max_events is not None and len(events) >= max_events:
            break
    return events


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, bytes, float | None]:
    # One readuntil for the whole head (the server always speaks CRLF)
    # instead of a readline per header line: the client loop shares one
    # CPU with the server under test, so harness overhead directly caps
    # the measured throughput.
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionError("server closed the connection") from None
        raise
    lines = head[:-4].split(b"\r\n")
    status = int(lines[0].split(b" ", 2)[1])
    length = 0
    retry_after: float | None = None
    for line in lines[1:]:
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
        elif line.lower().startswith(b"retry-after:"):
            retry_after = float(line.split(b":", 1)[1])
    body = await reader.readexactly(length) if length else b""
    return status, body, retry_after


class _WorkerStats:
    __slots__ = (
        "latencies",
        "failed",
        "predictions",
        "non_empty",
        "predict_requests",
        "retried_503",
        "reconnects",
        "injected_faults",
        "stale",
    )

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.failed = 0
        self.predictions = 0
        self.non_empty = 0
        self.predict_requests = 0
        self.retried_503 = 0
        self.reconnects = 0
        self.injected_faults = 0
        self.stale = 0


async def _iter_events(events: "list[_Event] | asyncio.Queue"):
    """Async view over a worker's event source: a list or a live queue.

    The queue form is how streaming replays feed workers — a producer
    routes events in as they are generated and closes each queue with a
    ``None`` sentinel, so a worker never knows (or buffers) the whole
    stream.
    """
    if isinstance(events, list):
        for event in events:
            yield event
        return
    while True:
        event = await events.get()
        if event is None:
            return
        yield event


async def _worker(
    host: str,
    port: int,
    events: "list[_Event] | asyncio.Queue",
    stats: _WorkerStats,
    shared: dict,
    *,
    request_timeout_s: float = 30.0,
    retry_503: int = 8,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)

    async def reconnect() -> None:
        # Returns with a fresh connection or raises OSError (server gone).
        nonlocal reader, writer
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
        reader, writer = await asyncio.open_connection(host, port)
        stats.reconnects += 1

    async def exchange(frame: bytes) -> tuple[int, bytes, float | None]:
        writer.write(frame)
        await writer.drain()
        # asyncio.timeout arms one timer handle; wait_for would wrap the
        # read in a fresh Task per request (3.11), which at this request
        # rate is measurable harness overhead.
        async with asyncio.timeout(request_timeout_s):
            return await _read_response(reader)

    async def deliver(frame: bytes) -> bool:
        """One frame, retried through 503 backoffs; False = transport died.

        Counts its own failures (non-200, or 503s through the whole
        budget); the caller only handles the broken-transport case.
        """
        for _ in range(retry_503 + 1):
            # Snapshot the published floor *before* the send: any
            # prediction answered after this instant must come from a
            # model at least this new, or a hot swap leaked a stale
            # generation (the single replay loop makes the ordering
            # sound).
            floor = shared.get("refresh_version", 0)
            start = time.perf_counter()
            status, body, retry_after = await exchange(frame)
            stats.latencies.append(time.perf_counter() - start)
            if status == 503:
                stats.retried_503 += 1
                await asyncio.sleep(min(retry_after or 0.05, 1.0))
                continue
            if status != 200:
                stats.failed += 1
            elif body.startswith(b'{"client"'):
                stats.predict_requests += 1
                count = body.count(b'"url"')
                stats.predictions += count
                if count:
                    stats.non_empty += 1
                version = _model_version(body)
                if version is not None and version < floor:
                    stats.stale += 1
            return True
        stats.failed += 1  # 503 through the whole retry budget
        return True

    try:
        async for _client, frames in _iter_events(events):
            spec = fire("client.slow_report")
            if spec is not None:
                await asyncio.sleep(spec.delay_s)
            if fire("client.corrupt_report"):
                stats.injected_faults += 1
                try:
                    status, _body, _retry = await exchange(_CORRUPT_FRAME)
                    if status != 400:
                        stats.failed += 1
                except _TRANSPORT_ERRORS:
                    stats.failed += 1
                # The server closes the connection after a malformed
                # request line, so a reconnect is always due here.
                try:
                    await reconnect()
                except OSError:
                    stats.failed += len(frames)
                    return
            for frame in frames:
                try:
                    await deliver(frame)
                except _TRANSPORT_ERRORS:
                    stats.failed += 1
                    try:
                        await reconnect()
                    except OSError:
                        return  # server gone; the report still writes
            shared["processed"] += 1
            if (
                shared["refresh_at"] is not None
                and not shared["refresh_done"]
                and shared["processed"] >= shared["refresh_at"]
            ):
                shared["refresh_done"] = True
                try:
                    status, body, _retry = await exchange(
                        b"POST /admin/refresh HTTP/1.1\r\nHost: loadgen\r\n"
                        b"Content-Length: 0\r\n\r\n"
                    )
                    if status != 200:
                        stats.failed += 1
                    else:
                        version = _model_version(body)
                        if version is not None:
                            shared["refresh_version"] = max(
                                shared.get("refresh_version", 0), version
                            )
                except _TRANSPORT_ERRORS:
                    stats.failed += 1
                    try:
                        await reconnect()
                    except OSError:
                        return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass


async def _replay(
    host: str,
    port: int,
    events: list[_Event],
    *,
    connections: int,
    refresh_mid_run: bool,
    request_timeout_s: float = 30.0,
    retry_503: int = 8,
) -> tuple[list[_WorkerStats], float, dict]:
    # Partition whole clients across connections so each client's click
    # order survives; round-robin by first appearance balances load.
    assignment: dict[str, int] = {}
    buckets: list[list[_Event]] = [[] for _ in range(connections)]
    for event in events:
        client = event[0]
        worker = assignment.setdefault(client, len(assignment) % connections)
        buckets[worker].append(event)
    shared = {
        "processed": 0,
        "refresh_at": len(events) // 2 if refresh_mid_run else None,
        "refresh_done": False,
        "refresh_version": 0,
    }
    stats = [_WorkerStats() for _ in range(connections)]
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _worker(
                host,
                port,
                bucket,
                stat,
                shared,
                request_timeout_s=request_timeout_s,
                retry_503=retry_503,
            )
            for bucket, stat in zip(buckets, stats)
            if bucket
        )
    )
    elapsed = time.perf_counter() - started
    return stats, elapsed, shared


async def _replay_stream(
    host: str,
    port: int,
    records,
    *,
    connections: int,
    mode: str,
    threshold: float,
    refresh_at: int | None,
    request_timeout_s: float = 30.0,
    retry_503: int = 8,
    queue_depth: int = 256,
) -> tuple[list[_WorkerStats], float, dict]:
    """Drive workers from a live record iterator instead of a list.

    A producer task walks the (synchronous, lazily generated) record
    stream, encodes each page view and routes it to a per-connection
    queue using the same partition policy as :func:`_replay` — whole
    clients stick to one connection, assigned round-robin by first
    appearance — so per-client click order is preserved and peak memory
    is bounded by ``connections * queue_depth`` events, never by the
    stream length.
    """
    threshold_arg = f"&threshold={threshold}"
    queues: list[asyncio.Queue] = [
        asyncio.Queue(maxsize=queue_depth) for _ in range(connections)
    ]
    assignment: dict[str, int] = {}

    async def produce() -> None:
        for index, record in enumerate(records):
            worker = assignment.setdefault(
                record.client, len(assignment) % connections
            )
            frames = _frames_for(
                record.client,
                record.url,
                record.timestamp,
                mode=mode,
                threshold_arg=threshold_arg,
            )
            await queues[worker].put((record.client, frames))
            if index % 64 == 0:
                # Generation outruns serving; yield even while the
                # queues still have room so workers are never starved
                # behind a tight producer loop.
                await asyncio.sleep(0)
        for queue in queues:
            await queue.put(None)

    shared = {
        "processed": 0,
        "refresh_at": refresh_at,
        "refresh_done": False,
        "refresh_version": 0,
    }
    stats = [_WorkerStats() for _ in range(connections)]
    started = time.perf_counter()
    await asyncio.gather(
        produce(),
        *(
            _worker(
                host,
                port,
                queue,
                stat,
                shared,
                request_timeout_s=request_timeout_s,
                retry_503=retry_503,
            )
            for queue, stat in zip(queues, stats)
        ),
    )
    elapsed = time.perf_counter() - started
    return stats, elapsed, shared


def run_loadgen(
    url: str | None = None,
    *,
    profile: str = "nasa-like",
    workload: str | None = None,
    workload_params: dict | None = None,
    events: int | None = None,
    train_events: int = 2_000,
    days: int = 1,
    train_days: int = 2,
    seed: int = 7,
    scale: float = 1.0,
    connections: int = 8,
    mode: str = "combined",
    max_events: int | None = None,
    threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
    refresh_mid_run: bool = False,
    spawn: bool = False,
    workers: int = 1,
    request_timeout_s: float = 30.0,
    wal_dir: str | None = None,
    wal_fsync: str = params.SERVE_WAL_FSYNC,
    out: str | None = None,
) -> dict:
    """Generate traffic, replay it, and return the benchmark report dict.

    Exactly one of ``url`` (an already-running server, e.g.
    ``http://127.0.0.1:8080``) or ``spawn=True`` (boot an in-process
    server) must be given.  With ``spawn=True`` and ``workers > 1`` the
    spawned server is a :class:`~repro.serve.multiproc.MultiprocServer`
    — N processes over one shared-memory model segment.  With ``out``,
    the report is also written as JSON (the ``BENCH_serve.json``
    artifact).

    Two traffic sources:

    * default — a :mod:`repro.synth` ``profile`` trace, fully
      materialised and pre-encoded (``days``/``train_days`` select the
      replay and bootstrap windows);
    * ``workload`` — a registered streaming workload
      (:mod:`repro.workloads`) driven **live**: ``events`` page views
      are generated, encoded and served on the fly through bounded
      queues, so arbitrarily long non-stationary runs never hold the
      stream in memory.  With ``spawn=True`` the first ``train_events``
      records of the same stream bootstrap the server before the replay
      begins.
    """
    if mode not in ("combined", "paired"):
        raise ServeError(f"unknown loadgen mode {mode!r}")
    if connections < 1:
        raise ServeError(f"connections must be >= 1, got {connections}")
    if workers < 1:
        raise ServeError(f"workers must be >= 1, got {workers}")
    if (url is None) == (not spawn):
        raise ServeError("pass a server url or spawn=True (exactly one)")
    if workload is None:
        if events is not None:
            raise ServeError("events=N only applies to workload replays")
    else:
        if events is None or events < 1:
            raise ServeError(
                "a workload replay needs events=N (how many page views "
                "to generate and serve)"
            )
        if spawn and train_events < 1:
            raise ServeError(
                f"train_events must be >= 1, got {train_events}"
            )

    handle = None
    mp_server = None
    record_source = None
    event_list: list[_Event] | None = None
    bootstrap_sessions: list | None = None

    if workload is not None:
        import itertools

        from repro.workloads import create_workload

        stream = create_workload(
            workload, seed=seed, scale=scale, **(workload_params or {})
        )
        if spawn:
            # One stream: its head bootstraps the server, its tail is
            # replayed live — the classic warm-up-then-serve shape.
            source = stream.events(train_events + events)
            head = list(itertools.islice(source, train_events))
            bootstrap_sessions = list(
                Trace(head, name=stream.name or "workload").sessions
            )
            record_source = source
        else:
            record_source = stream.events(events)
    elif spawn:
        trace = generate_trace(profile, days=train_days + days, seed=seed, scale=scale)
        split = trace.split(train_days=train_days, test_days=days)
        replay = Trace(
            [r for r in trace.records if trace.day_of(r.timestamp) >= train_days],
            name=trace.name,
        )
        # Bootstrapping through the server seeds the updater's rolling
        # window with the training day, so a mid-run /admin/refresh has a
        # real window to rebuild from.
        bootstrap_sessions = list(split.train_sessions)
    else:
        trace = generate_trace(profile, days=days, seed=seed, scale=scale)
        replay = trace

    if spawn:
        from repro.serve.server import PrefetchServer, ServerThread

        wal_kwargs = (
            {"wal_dir": wal_dir, "wal_fsync": wal_fsync}
            if wal_dir is not None
            else {}
        )
        if workers > 1:
            from repro.serve.multiproc import MultiprocServer

            mp_server = MultiprocServer(
                bootstrap_sessions=bootstrap_sessions,
                workers=workers,
                **wal_kwargs,
            )
            mp_server.start()
            host, port = mp_server.host, mp_server.port
        else:
            server = PrefetchServer(
                bootstrap_sessions=bootstrap_sessions, **wal_kwargs
            )
            handle = ServerThread(server).start()
            host, port = handle.host, handle.port
    else:
        stripped = url.removeprefix("http://")
        host, _, port_text = stripped.rstrip("/").partition(":")
        try:
            port = int(port_text)
        except ValueError:
            if handle is not None:
                handle.stop()
            raise ServeError(f"server url needs host:port, got {url!r}") from None

    if record_source is None:
        event_list = _build_events(
            replay, mode=mode, threshold=threshold, max_events=max_events
        )
        if not event_list:
            if handle is not None:
                handle.stop()
            if mp_server is not None:
                mp_server.stop()
            raise ServeError("generated trace produced no replay events")

    try:
        if record_source is not None:
            stats, elapsed, shared = asyncio.run(
                _replay_stream(
                    host,
                    port,
                    record_source,
                    connections=connections,
                    mode=mode,
                    threshold=threshold,
                    refresh_at=events // 2 if refresh_mid_run else None,
                    request_timeout_s=request_timeout_s,
                )
            )
        else:
            stats, elapsed, shared = asyncio.run(
                _replay(
                    host,
                    port,
                    event_list,
                    connections=connections,
                    refresh_mid_run=refresh_mid_run,
                    request_timeout_s=request_timeout_s,
                )
            )
    finally:
        if handle is not None:
            handle.stop()
        if mp_server is not None:
            mp_server.stop()

    latencies = sorted(lat for stat in stats for lat in stat.latencies)
    predict_requests = sum(stat.predict_requests for stat in stats)
    report = {
        "config": {
            "profile": None if workload else profile,
            "workload": workload,
            "workload_params": workload_params or {},
            "streamed": workload is not None,
            "days": None if workload else days,
            "train_days": train_days if spawn and workload is None else None,
            "train_events": train_events if spawn and workload else None,
            "seed": seed,
            "scale": scale,
            "connections": connections,
            "mode": mode,
            "threshold": threshold,
            "spawn": spawn,
            "workers": workers,
            "wal": wal_dir is not None,
            "wal_fsync": wal_fsync if wal_dir is not None else None,
            "segment_bytes": mp_server.segment_bytes if mp_server else None,
            "refresh_mid_run": refresh_mid_run,
            "events": events if workload else len(event_list),
        },
        "requests_total": len(latencies),
        "failed_requests": sum(stat.failed for stat in stats),
        "retried_503": sum(stat.retried_503 for stat in stats),
        "reconnects": sum(stat.reconnects for stat in stats),
        "injected_client_faults": sum(stat.injected_faults for stat in stats),
        "predict_requests": predict_requests,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(len(latencies) / elapsed, 1) if elapsed else 0.0,
        "predictions_per_s": (
            round(predict_requests / elapsed, 1) if elapsed else 0.0
        ),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p95": round(_percentile(latencies, 0.95) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
            "mean": round(sum(latencies) / len(latencies) * 1e3, 3)
            if latencies
            else 0.0,
            "max": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
        },
        "prediction_urls_returned": sum(stat.predictions for stat in stats),
        "non_empty_prediction_responses": sum(stat.non_empty for stat in stats),
        "refresh_triggered": bool(shared["refresh_done"]),
        "refresh_version": shared["refresh_version"],
        "stale_predictions": sum(stat.stale for stat in stats),
    }
    if out:
        directory = os.path.dirname(os.path.abspath(out))
        os.makedirs(directory, exist_ok=True)
        with open(out, "w", encoding="utf-8") as handle_file:
            json.dump(report, handle_file, indent=2, sort_keys=True)
            handle_file.write("\n")
    return report


def format_report(report: dict) -> str:
    """A compact human-readable rendering of a loadgen report."""
    latency = report["latency_ms"]
    lines = [
        f"requests          {report['requests_total']}"
        f"  (failed {report['failed_requests']})",
        f"elapsed           {report['elapsed_s']:.2f}s",
        f"throughput        {report['requests_per_s']:.0f} req/s"
        f"  ({report['predictions_per_s']:.0f} predictions/s)",
        f"latency ms        p50 {latency['p50']:.2f}  p95 {latency['p95']:.2f}"
        f"  p99 {latency['p99']:.2f}  max {latency['max']:.2f}",
        f"prediction urls   {report['prediction_urls_returned']}"
        f"  (non-empty responses {report['non_empty_prediction_responses']})",
    ]
    if report["config"]["refresh_mid_run"]:
        lines.append(
            f"mid-run refresh   {report['refresh_triggered']}"
            f"  (stale predictions {report.get('stale_predictions', 0)})"
        )
    if report.get("retried_503") or report.get("reconnects"):
        lines.append(
            f"resilience        503 retries {report.get('retried_503', 0)}"
            f"  reconnects {report.get('reconnects', 0)}"
            f"  injected faults {report.get('injected_client_faults', 0)}"
        )
    return "\n".join(lines)
