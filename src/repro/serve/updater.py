"""Live model maintenance behind the prediction server.

The paper's maintenance story (Section 2.2) has two tempos, and this module
gives the server both:

* **Cheap in-place folds** — completed sessions are folded into the live
  model with :func:`repro.core.online.update_model` between rebuilds.
  Folds mutate the published model on the event loop; prediction cursors
  notice the model's mutation counter move and resync themselves, so
  in-flight clients keep predicting correctly.
* **Read-copy-update refreshes** — a full rebuild over the retained
  session window runs in a worker thread through a
  :class:`~repro.core.online.RollingModelManager` (``refit_every=1``, so a
  refresh always constructs a *new* model and re-ranks popularity) and is
  then published with one atomic :meth:`~repro.serve.state.ModelRef.publish`
  swap.  Request handlers never block on a refresh and never observe a
  half-built model.

Sessions folded since the last refresh are also retained in the pending
day, so a refresh loses nothing that was folded in the meantime.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from repro.core.base import PPMModel
from repro.core.online import RollingModelManager, update_model
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.errors import ModelError
from repro.serve.state import ModelRef
from repro.trace.sessions import Session


def default_model_factory(popularity: PopularityTable) -> PPMModel:
    """The served model of choice: the paper's PB-PPM."""
    return PopularityBasedPPM(popularity)


class ModelUpdater:
    """Folds completed sessions into the live model and publishes rebuilds.

    Parameters
    ----------
    ref:
        The :class:`ModelRef` refreshes publish into (and folds mutate
        through).
    model_factory:
        Builds the refresh model from a popularity table; defaults to
        PB-PPM.
    window_days:
        Training days the rolling manager retains for refreshes; each
        refresh treats the sessions completed since the previous one as
        one "day".
    manager:
        An already-seeded :class:`RollingModelManager` to adopt (the
        server's bootstrap path fits the initial model through the manager
        so the first refresh window already contains the bootstrap day);
        default: a fresh one.
    """

    def __init__(
        self,
        ref: ModelRef,
        *,
        model_factory: Callable[[PopularityTable], PPMModel] | None = None,
        window_days: int = 7,
        manager: RollingModelManager | None = None,
    ) -> None:
        self.ref = ref
        self._manager = manager or RollingModelManager(
            model_factory or default_model_factory,
            window_days=window_days,
            refit_every=1,
        )
        self._pending: list[Session] = []
        self._day: list[Session] = []
        self._refresh_lock = asyncio.Lock()
        self.folded_sessions_total = 0
        self.fold_batches_total = 0
        self.fold_failures_total = 0
        self.refresh_total = 0
        self.last_refresh_duration_s = 0.0

    # -- bootstrap ------------------------------------------------------------

    def seed(self, sessions: list[Session]) -> PPMModel:
        """Fit the first model from bootstrap sessions (synchronous).

        Seeds the rolling window with the bootstrap day and returns the
        fitted model; the caller publishes it (or hands it to the server
        constructor).
        """
        return self._manager.advance_day(sessions)

    @property
    def pending_sessions(self) -> int:
        """Sessions waiting for the next fold."""
        return len(self._pending)

    @property
    def window_days_retained(self) -> int:
        return self._manager.days_retained

    # -- cheap fold path -------------------------------------------------------

    def add_sessions(self, sessions: list[Session]) -> None:
        """Queue completed sessions for the next fold."""
        self._pending.extend(sessions)

    def fold_pending(self) -> int:
        """Fold queued sessions into the live model, in place.

        Runs on the event loop — folds are cheap suffix inserts.  Models
        without an incremental path (LRS-PPM) keep the sessions queued for
        the next refresh only.  Returns the number of sessions folded.
        """
        if not self._pending:
            return 0
        batch = self._pending
        self._pending = []
        self._day.extend(batch)
        try:
            update_model(self.ref.model, batch)
        except ModelError:
            self.fold_failures_total += 1
            return 0
        self.folded_sessions_total += len(batch)
        self.fold_batches_total += 1
        return len(batch)

    # -- read-copy-update refresh ---------------------------------------------

    async def refresh(self) -> int | None:
        """Rebuild from the session window off-loop and publish the result.

        The sessions completed since the previous refresh advance the
        rolling window as one day; the rebuild (popularity re-rank
        included) runs in a worker thread against data the event loop no
        longer touches, then the finished model is swapped in atomically.
        Returns the published version, or None when there was nothing to
        rebuild from (never clobbers the live model with an empty one).
        """
        async with self._refresh_lock:
            day = self._day + self._pending
            self._day = []
            self._pending = []
            if not day and self._manager.days_retained == 0:
                return None
            if not day and self._manager.model is self.ref.model:
                # Nothing new and the live model already is the manager's
                # latest rebuild: a re-publish would only force every
                # client cursor to resync for no change.
                return self.ref.version
            started = time.perf_counter()
            model = await asyncio.to_thread(self._manager.advance_day, day)
            self.last_refresh_duration_s = time.perf_counter() - started
            self.refresh_total += 1
            return self.ref.publish(model)
