"""Live model maintenance behind the prediction server.

The paper's maintenance story (Section 2.2) has two tempos, and this module
gives the server both:

* **Cheap in-place folds** — completed sessions are folded into the live
  model with :func:`repro.core.online.update_model` between rebuilds.
  Folds mutate the published model on the event loop; prediction cursors
  notice the model's mutation counter move and resync themselves, so
  in-flight clients keep predicting correctly.
* **Read-copy-update refreshes** — a full rebuild over the retained
  session window runs in a worker thread through a
  :class:`~repro.core.online.RollingModelManager` (``refit_every=1``, so a
  refresh always constructs a *new* model and re-ranks popularity) and is
  then published with one atomic :meth:`~repro.serve.state.ModelRef.publish`
  swap.  Request handlers never block on a refresh and never observe a
  half-built model.

Sessions folded since the last refresh are also retained in the pending
day, so a refresh loses nothing that was folded in the meantime.

Supervised recovery: every rebuild runs under a deadline
(:data:`~repro.params.SERVE_REBUILD_TIMEOUT_S`) and behind a
:class:`~repro.resilience.CircuitBreaker`.  A rebuild that raises has its
day's sessions requeued and counts a breaker failure; one that stalls past
the deadline is abandoned (the thread finishes in the background, guarded
by a lock so it cannot race a later rebuild) and counts a failure too.
Either way the last-good model keeps serving — the swap simply never
happens — and once the failure streak trips the breaker, refresh attempts
are skipped entirely until the cooldown elapses.  Injection points:
``rebuild.exception`` and ``rebuild.stall``.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from typing import Callable

from repro import params
from repro.core.base import PPMModel
from repro.core.online import RollingModelManager, update_model
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.errors import ModelError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import fire
from repro.serve.state import ModelRef
from repro.trace.sessions import Session

logger = logging.getLogger("repro.serve")


def default_model_factory(popularity: PopularityTable) -> PPMModel:
    """The served model of choice: the paper's PB-PPM."""
    return PopularityBasedPPM(popularity)


class ModelUpdater:
    """Folds completed sessions into the live model and publishes rebuilds.

    Parameters
    ----------
    ref:
        The :class:`ModelRef` refreshes publish into (and folds mutate
        through).
    model_factory:
        Builds the refresh model from a popularity table; defaults to
        PB-PPM.
    window_days:
        Training days the rolling manager retains for refreshes; each
        refresh treats the sessions completed since the previous one as
        one "day".
    manager:
        An already-seeded :class:`RollingModelManager` to adopt (the
        server's bootstrap path fits the initial model through the manager
        so the first refresh window already contains the bootstrap day);
        default: a fresh one.
    rebuild_timeout_s / breaker:
        Supervision of the rebuild path: the per-rebuild deadline, and
        the circuit breaker that converts a failure streak into a
        cooling-off period (defaults from :mod:`repro.params`).
    """

    def __init__(
        self,
        ref: ModelRef,
        *,
        model_factory: Callable[[PopularityTable], PPMModel] | None = None,
        window_days: int = 7,
        manager: RollingModelManager | None = None,
        rebuild_timeout_s: float = params.SERVE_REBUILD_TIMEOUT_S,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.ref = ref
        self._manager = manager or RollingModelManager(
            model_factory or default_model_factory,
            window_days=window_days,
            refit_every=1,
        )
        self._pending: list[Session] = []
        self._day: list[Session] = []
        self._refresh_lock = asyncio.Lock()
        # refresh_sync's counterpart to _refresh_lock for callers that
        # live on a plain thread (the multi-process supervisor).
        self._sync_lock = threading.Lock()
        # Serialises manager access between a rebuild thread and any
        # rebuild abandoned after a stall that is still running.
        self._manager_lock = threading.Lock()
        self.rebuild_timeout_s = rebuild_timeout_s
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=params.SERVE_BREAKER_FAILURES,
            cooldown_s=params.SERVE_BREAKER_COOLDOWN_S,
        )
        self.folded_sessions_total = 0
        self.fold_batches_total = 0
        self.fold_failures_total = 0
        self.refresh_total = 0
        self.refresh_failures_total = 0
        self.refresh_timeouts_total = 0
        self.refresh_skipped_total = 0
        self.last_refresh_duration_s = 0.0
        self.last_refresh_error: str | None = None

    # -- bootstrap ------------------------------------------------------------

    def seed(self, sessions: list[Session]) -> PPMModel:
        """Fit the first model from bootstrap sessions (synchronous).

        Seeds the rolling window with the bootstrap day and returns the
        fitted model; the caller publishes it (or hands it to the server
        constructor).
        """
        return self._manager.advance_day(sessions)

    @property
    def pending_sessions(self) -> int:
        """Sessions waiting for the next fold."""
        return len(self._pending)

    def pending_snapshot(self) -> list[Session]:
        """The sessions queued for the next fold (not yet in the model).

        The write-ahead journal's snapshot-boundary carry captures these:
        a snapshot taken between ``add_sessions`` and ``fold_pending``
        does not contain them, so they must replay from the journal.
        Sessions already folded (``_day``) *are* in the dumped model and
        are deliberately excluded.
        """
        return list(self._pending)

    @property
    def window_days_retained(self) -> int:
        return self._manager.days_retained

    # -- cheap fold path -------------------------------------------------------

    def add_sessions(self, sessions: list[Session]) -> None:
        """Queue completed sessions for the next fold."""
        self._pending.extend(sessions)

    def fold_pending(self) -> int:
        """Fold queued sessions into the live model, in place.

        Runs on the event loop — folds are cheap suffix inserts.  Models
        without an incremental path (LRS-PPM) keep the sessions queued for
        the next refresh only.  Returns the number of sessions folded.
        """
        if not self._pending:
            return 0
        batch = self._pending
        self._pending = []
        self._day.extend(batch)
        try:
            update_model(self.ref.model, batch)
        except ModelError:
            self.fold_failures_total += 1
            return 0
        self.folded_sessions_total += len(batch)
        self.fold_batches_total += 1
        return len(batch)

    # -- read-copy-update refresh ---------------------------------------------

    def _build_day(self, day: list[Session]) -> PPMModel:
        """The worker-thread body of one rebuild (faults fire in here).

        Both injected faults fire *before* the manager is touched, so the
        refresh path can requeue the day on failure without double-folding
        anything.  The manager lock keeps a rebuild abandoned after a
        stall from racing the next one.
        """
        with self._manager_lock:
            spec = fire("rebuild.stall")
            if spec is not None:
                time.sleep(spec.delay_s)
            if fire("rebuild.exception"):
                raise ModelError("injected rebuild failure")
            return self._manager.advance_day(day)

    async def refresh(self) -> int | None:
        """Rebuild from the session window off-loop and publish the result.

        The sessions completed since the previous refresh advance the
        rolling window as one day; the rebuild (popularity re-rank
        included) runs in a worker thread against data the event loop no
        longer touches, then the finished model is swapped in atomically.
        Returns the published version, or None when there was nothing to
        rebuild from (never clobbers the live model with an empty one).

        Failure behaviour: while the breaker is open the rebuild is not
        even attempted and the current version is returned (the last-good
        model keeps serving).  A rebuild that raises requeues its day and
        records a breaker failure; one that exceeds
        :attr:`rebuild_timeout_s` is abandoned to finish in the
        background — its day is already owned by that thread, so it is
        *not* requeued — and records a failure likewise.
        """
        async with self._refresh_lock:
            if not self.breaker.allow():
                self.refresh_skipped_total += 1
                logger.warning(
                    "model rebuild skipped: circuit breaker %s "
                    "(%d consecutive failures); serving last-good model v%d",
                    self.breaker.state,
                    self.breaker.consecutive_failures,
                    self.ref.version,
                )
                return self.ref.version
            day = self._day + self._pending
            self._day = []
            self._pending = []
            if not day and self._manager.days_retained == 0:
                self.breaker.record_success()
                return None
            if not day and self._manager.model is self.ref.model:
                # Nothing new and the live model already is the manager's
                # latest rebuild: a re-publish would only force every
                # client cursor to resync for no change.
                self.breaker.record_success()
                return self.ref.version
            started = time.perf_counter()
            try:
                model = await asyncio.wait_for(
                    asyncio.to_thread(self._build_day, day),
                    timeout=self.rebuild_timeout_s,
                )
            except asyncio.TimeoutError:
                # The thread is still running; _manager_lock guards it.
                # Its day advances the window when it finishes, so the
                # sessions surface in the *next* successful rebuild.
                self.refresh_timeouts_total += 1
                self.refresh_failures_total += 1
                self.last_refresh_error = (
                    f"rebuild exceeded {self.rebuild_timeout_s:.1f}s deadline"
                )
                self.breaker.record_failure()
                logger.error(
                    "model rebuild stalled past %.1fs; abandoned "
                    "(breaker %s), serving last-good model v%d",
                    self.rebuild_timeout_s,
                    self.breaker.state,
                    self.ref.version,
                )
                return self.ref.version
            except Exception as exc:  # noqa: BLE001 - rebuilds may raise anything
                self._day = day + self._day
                self.refresh_failures_total += 1
                self.last_refresh_error = f"{type(exc).__name__}: {exc}"
                self.breaker.record_failure()
                logger.error(
                    "model rebuild failed (%s); day requeued (breaker %s), "
                    "serving last-good model v%d",
                    self.last_refresh_error,
                    self.breaker.state,
                    self.ref.version,
                )
                return self.ref.version
            self.last_refresh_duration_s = time.perf_counter() - started
            self.refresh_total += 1
            self.last_refresh_error = None
            self.breaker.record_success()
            return self.ref.publish(model)

    def refresh_sync(self) -> int | None:
        """:meth:`refresh` for callers living on a plain thread.

        The multi-process supervisor runs refreshes from its pipe-service
        thread, where ``asyncio.run`` per call would rebind the asyncio
        refresh lock to a new loop every time.  Semantics are identical:
        same breaker gating, same deadline (enforced with a joined worker
        thread), same requeue-on-exception behaviour, same no-op paths.
        """
        with self._sync_lock:
            if not self.breaker.allow():
                self.refresh_skipped_total += 1
                logger.warning(
                    "model rebuild skipped: circuit breaker %s "
                    "(%d consecutive failures); serving last-good model v%d",
                    self.breaker.state,
                    self.breaker.consecutive_failures,
                    self.ref.version,
                )
                return self.ref.version
            day = self._day + self._pending
            self._day = []
            self._pending = []
            if not day and self._manager.days_retained == 0:
                self.breaker.record_success()
                return None
            if not day and self._manager.model is self.ref.model:
                self.breaker.record_success()
                return self.ref.version
            started = time.perf_counter()
            outcome: list[tuple[str, object]] = []

            def _run() -> None:
                try:
                    outcome.append(("ok", self._build_day(day)))
                except Exception as exc:  # noqa: BLE001 - reported below
                    outcome.append(("err", exc))

            worker = threading.Thread(
                target=_run, name="repro-refresh-sync", daemon=True
            )
            worker.start()
            worker.join(self.rebuild_timeout_s)
            if worker.is_alive():
                # Abandoned like the async path: the thread holds
                # _manager_lock and its day advances the window when it
                # finishes, so nothing is requeued here.
                self.refresh_timeouts_total += 1
                self.refresh_failures_total += 1
                self.last_refresh_error = (
                    f"rebuild exceeded {self.rebuild_timeout_s:.1f}s deadline"
                )
                self.breaker.record_failure()
                logger.error(
                    "model rebuild stalled past %.1fs; abandoned "
                    "(breaker %s), serving last-good model v%d",
                    self.rebuild_timeout_s,
                    self.breaker.state,
                    self.ref.version,
                )
                return self.ref.version
            kind, value = outcome[0]
            if kind == "err":
                self._day = day + self._day
                self.refresh_failures_total += 1
                self.last_refresh_error = f"{type(value).__name__}: {value}"
                self.breaker.record_failure()
                logger.error(
                    "model rebuild failed (%s); day requeued (breaker %s), "
                    "serving last-good model v%d",
                    self.last_refresh_error,
                    self.breaker.state,
                    self.ref.version,
                )
                return self.ref.version
            self.last_refresh_duration_s = time.perf_counter() - started
            self.refresh_total += 1
            self.last_refresh_error = None
            self.breaker.record_success()
            assert isinstance(value, PPMModel)
            return self.ref.publish(value)
