"""The online prefetch prediction server (stdlib asyncio, HTTP/1.1).

Exposes the paper's model as the deployable component related work calls a
"predictive prefetching engine": clients report their clicks, the server
answers with prefetch candidates, and the model keeps learning while it
serves.

Surface
-------
``POST /report``
    One access event: ``?client=<id>&url=<path>[&ts=<seconds>]``.  With
    ``&predict=1`` the response carries the predictions for the updated
    context (one round trip per click — the low-latency path the load
    generator measures by default).
``GET /predict``
    Prefetch candidates: ``?client=<id>[&threshold=<p>][&limit=<n>]``.
``GET /healthz``
    Liveness JSON: model version, node count, active clients, uptime.
``GET /metrics``
    Prometheus text-format counters and gauges.
``POST /admin/snapshot`` / ``POST /admin/reload``
    Persist the live model now / swap in the on-disk snapshot.
``POST /admin/refresh``
    Force a read-copy-update rebuild from the retained session window.

Concurrency model: one asyncio event loop runs every request handler, the
housekeeping tick (idle expiry, incremental folds, scheduled refreshes and
snapshots) and the model swaps; rebuild and file-write work is pushed to
worker threads.  A request grabs one ``(model, version)`` snapshot from
the :class:`~repro.serve.state.ModelRef` and computes against it alone, so
predictions during a swap come from exactly the old or the new model —
never a mix (``tests/serve/test_hotswap.py`` pins this).

:class:`ServerThread` runs the whole server on a background thread with
its own loop — the embedding used by the tests, the load generator's
``--spawn`` mode and the CI smoke job.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from typing import Awaitable, Callable
from urllib.parse import parse_qsl, unquote, urlsplit

from repro import params
from repro.core.base import PPMModel
from repro.core.popularity import PopularityTable
from repro.errors import ReproError, ServeError, WalError
from repro.resilience.faults import fire
from repro.serve.snapshot import SnapshotManager
from repro.serve.state import ClientSessionTracker, ModelRef
from repro.serve.updater import ModelUpdater
from repro.serve.wal import ReportJournal, read_journal, replay_into_tracker

logger = logging.getLogger("repro.serve")

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _json_body(status: int, payload: dict) -> tuple[int, str, bytes]:
    return status, _JSON, json.dumps(payload, separators=(",", ":")).encode()


def _split_target(target: str) -> tuple[str, dict[str, str]]:
    """Fast-lane twin of ``urlsplit`` + ``parse_qsl``.

    The common request target — ``&``-separated pairs, percent-escapes
    only inside values — is handled with string splits and at most one
    ``unquote`` per escaped field, instead of ``parse_qsl``'s
    unconditional decode of every key and value.  Plus-as-space or a
    fragment falls back to the stdlib parsers.  Matches
    ``dict(parse_qsl(urlsplit(target).query))`` exactly: blank values and
    bare keys are dropped, the last duplicate wins.
    """
    if "+" in target or "#" in target:
        split = urlsplit(target)
        return split.path, dict(parse_qsl(split.query))
    path, _, qs = target.partition("?")
    query: dict[str, str] = {}
    if qs:
        for pair in qs.split("&"):
            key, eq, value = pair.partition("=")
            if eq and value:
                if "%" in value:
                    value = unquote(value)
                if "%" in key:
                    key = unquote(key)
                query[key] = value
    return path, query


def _error_body(status: int, message: str) -> tuple[int, str, bytes]:
    return _json_body(status, {"error": message})


#: Memoised JSON fragments, one per distinct Prediction tuple.  Bounded so
#: an adversarial URL stream cannot grow it without limit; at the bound the
#: cache stops filling and misses just pay the json.dumps they always did.
_PREDICTION_FRAGMENT_LIMIT = 100_000
_prediction_fragments: dict = {}


def _prediction_fragment(p) -> str:
    fragment = _prediction_fragments.get(p)
    if fragment is None:
        fragment = json.dumps(
            {
                "url": p.url,
                "probability": round(p.probability, 6),
                "order": p.order,
                "source": p.source,
            },
            separators=(",", ":"),
        )
        if len(_prediction_fragments) < _PREDICTION_FRAGMENT_LIMIT:
            _prediction_fragments[p] = fragment
    return fragment


class PrefetchServer:
    """Serve predictions from a fitted model over HTTP.

    Parameters
    ----------
    model:
        The fitted model to publish initially (e.g. a restored snapshot).
        May be None when ``bootstrap_sessions`` is given instead: the
        initial model is then fitted through the updater's rolling
        manager, so the first refresh window already holds the bootstrap
        day.
    bootstrap_sessions:
        Training sessions to fit the initial model from (used when
        ``model`` is None).
    host / port:
        Bind address; port 0 picks a free port (read :attr:`port` after
        :meth:`start`).
    idle_timeout_s / max_context_length:
        Session semantics, passed to the tracker (paper defaults).
    model_factory:
        Refresh model builder, passed to the updater (default PB-PPM).
    window_days:
        Session-window days the updater retains for refreshes.
    fold_interval_s:
        How often completed sessions are folded into the live model.
    refresh_interval_s:
        Scheduled read-copy-update rebuild cadence; None leaves refreshes
        to ``POST /admin/refresh``.
    snapshot_path / snapshot_interval_s:
        Snapshot file and cadence; the path alone enables the admin
        surface and a final snapshot on shutdown.
    wal_dir:
        Directory of the write-ahead report journal
        (:class:`~repro.serve.wal.ReportJournal`).  When set, every
        ``POST /report`` is journalled *before* it is acknowledged, so
        an acked report survives any crash; call
        :meth:`recover_journal` after construction (the CLI boot path
        does) to replay what a previous process journalled.  Snapshots
        establish journal boundaries and compact covered segments.
    wal_fsync / wal_fsync_interval_s:
        The journal's fsync policy (``off`` / ``interval`` / ``batch``)
        and the ``interval`` policy's cadence.
    wal_segment_max_bytes / wal_segment_max_age_s:
        Journal segment rotation thresholds.
    housekeeping_interval_s:
        Base tick of the background task.
    request_timeout_s / max_inflight / retry_after_s:
        Overload protection: a dispatch that exceeds the timeout, or
        arrives while ``max_inflight`` requests are already being
        handled, is answered ``503`` with a ``Retry-After`` header
        instead of queueing without bound (defaults from
        :mod:`repro.params`).  ``/admin/*`` requests are exempt from the
        per-request deadline (they run under their own supervised
        rebuild/snapshot deadlines) but still count against — and are
        shed by — the in-flight bound.
    """

    def __init__(
        self,
        model: PPMModel | None = None,
        *,
        bootstrap_sessions: "list | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout_s: float = params.SESSION_IDLE_TIMEOUT_S,
        max_context_length: int = params.DEFAULT_MAX_CONTEXT_LENGTH,
        model_factory: Callable[[PopularityTable], PPMModel] | None = None,
        window_days: int = 7,
        fold_interval_s: float = params.SERVE_FOLD_INTERVAL_S,
        refresh_interval_s: float | None = None,
        snapshot_path: str | None = None,
        snapshot_interval_s: float | None = None,
        housekeeping_interval_s: float = params.SERVE_HOUSEKEEPING_INTERVAL_S,
        default_threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
        request_timeout_s: float = params.SERVE_REQUEST_TIMEOUT_S,
        max_inflight: int = params.SERVE_MAX_INFLIGHT,
        retry_after_s: float = params.SERVE_RETRY_AFTER_S,
        wal_dir: str | None = None,
        wal_fsync: str = params.SERVE_WAL_FSYNC,
        wal_fsync_interval_s: float = params.SERVE_WAL_FSYNC_INTERVAL_S,
        wal_segment_max_bytes: int = params.SERVE_WAL_SEGMENT_MAX_BYTES,
        wal_segment_max_age_s: float = params.SERVE_WAL_SEGMENT_MAX_AGE_S,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        manager = None
        if model is None:
            if not bootstrap_sessions:
                raise ServeError(
                    "PrefetchServer needs a fitted model or bootstrap_sessions"
                )
            from repro.core.online import RollingModelManager
            from repro.serve.updater import default_model_factory

            manager = RollingModelManager(
                model_factory or default_model_factory,
                window_days=window_days,
                refit_every=1,
            )
            model = manager.advance_day(list(bootstrap_sessions))
        self.ref = ModelRef(model)
        self.tracker = ClientSessionTracker(
            self.ref,
            idle_timeout_s=idle_timeout_s,
            max_context_length=max_context_length,
        )
        self.updater = ModelUpdater(
            self.ref,
            model_factory=model_factory,
            window_days=window_days,
            manager=manager,
        )
        self.wal = (
            ReportJournal(
                wal_dir,
                fsync=wal_fsync,
                fsync_interval_s=wal_fsync_interval_s,
                segment_max_bytes=wal_segment_max_bytes,
                segment_max_age_s=wal_segment_max_age_s,
            )
            if wal_dir
            else None
        )
        self.snapshots = (
            SnapshotManager(
                self.ref,
                snapshot_path,
                wal=self.wal,
                tracker=self.tracker,
                updater=self.updater,
            )
            if snapshot_path
            else None
        )
        self.last_recovery: dict | None = None
        self.wal_rejected_reports_total = 0
        self.fold_interval_s = fold_interval_s
        self.refresh_interval_s = refresh_interval_s
        self.snapshot_interval_s = snapshot_interval_s
        self.housekeeping_interval_s = housekeeping_interval_s
        self.default_threshold = default_threshold
        if max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {max_inflight}")
        self.request_timeout_s = request_timeout_s
        self.max_inflight = max_inflight
        self.retry_after_s = retry_after_s
        self._inflight = 0
        self._server: asyncio.AbstractServer | None = None
        self._housekeeping: asyncio.Task | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._started_at = 0.0
        self.requests_total: dict[str, int] = {}
        self.errors_total = 0
        self.predictions_total = 0
        self.shed_total = 0
        self.request_timeouts_total = 0

    # -- lifecycle -----------------------------------------------------------

    def recover_journal(self, boundary: int | None = None) -> dict | None:
        """Replay the journal left by a previous process (boot path).

        ``boundary`` is the value :func:`~repro.serve.snapshot.
        restore_snapshot_state` read from the restored snapshot (``None``
        without one).  Records re-observe through the tracker — open
        sessions come back open — and everything completed is folded into
        the model before the first request lands.  Call before
        :meth:`start`; returns the recovery stats dict (also kept on
        :attr:`last_recovery` for ``/metrics``), or ``None`` when the
        server has no journal.
        """
        if self.wal is None:
            return None
        recovery = read_journal(self.wal.directory, boundary=boundary)
        replayed = replay_into_tracker(recovery, self.tracker, self.updater)
        self.last_recovery = {**recovery.stats(), **replayed}
        if recovery.records or recovery.truncated_tails:
            logger.info(
                "journal recovery: %d records replayed (%d reports, %d "
                "session batches) across %d segments; %d torn tails "
                "truncated, %d corrupt frames; %d sessions folded, %d "
                "clients restored open",
                recovery.records_replayed,
                replayed["reports"],
                replayed["session_batches"],
                recovery.segments_scanned,
                recovery.truncated_tails,
                recovery.corrupt_frames,
                replayed["sessions_folded"],
                replayed["open_clients"],
            )
        return self.last_recovery

    async def start(self) -> None:
        """Bind, start accepting, and launch the housekeeping task."""
        if self._server is not None:
            raise ServeError("server already started")
        self._server = await self._create_server()
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        self._housekeeping = asyncio.create_task(self._housekeeping_loop())

    async def _create_server(self) -> asyncio.AbstractServer:
        """Bind the listening socket (overridden by the multi-process
        workers, which accept on SO_REUSEPORT or inherited sockets)."""
        return await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def stop(self) -> None:
        """Stop accepting, complete open sessions, final fold + snapshot."""
        if self._housekeeping is not None:
            self._housekeeping.cancel()
            try:
                await self._housekeeping
            except asyncio.CancelledError:
                pass
            self._housekeeping = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        expired = self.tracker.expire_all()
        self.updater.add_sessions(self.tracker.drain_completed())
        folded = self.updater.fold_pending()
        snapshot_version = None
        if self.snapshots is not None:
            snapshot_version = await self.snapshots.snapshot_once()
        if self.wal is not None:
            # Everything journalled is now either folded into the model
            # (and, when a snapshot path is configured, covered by the
            # final snapshot) or sealed in segments recovery will replay;
            # sync so even a power cut right after exit loses nothing.
            try:
                self.wal.sync()
            except WalError as exc:  # pragma: no cover - dying disk
                logger.warning("final journal sync failed: %s", exc)
            self.wal.close()
        logger.info(
            "shutdown flush: %d open sessions completed, %d sessions "
            "folded, snapshot %s, journal %s",
            expired,
            folded,
            f"v{snapshot_version}" if snapshot_version is not None
            else "skipped" if self.snapshots is None else "failed",
            f"synced ({self.wal.appended_records_total} records)"
            if self.wal is not None
            else "disabled",
        )

    async def _housekeeping_loop(self) -> None:
        last_fold = last_refresh = last_snapshot = time.monotonic()
        while True:
            await asyncio.sleep(self.housekeeping_interval_s)
            now = time.monotonic()
            # Idle expiry runs in observed (trace) time so replays expire
            # correctly; a live deployment's report timestamps are wall
            # time, making the two clocks coincide.
            self.tracker.expire_idle()
            self.updater.add_sessions(self.tracker.drain_completed())
            if self.wal is not None:
                self.wal.tick()
            if now - last_fold >= self.fold_interval_s:
                self.updater.fold_pending()
                last_fold = now
            if (
                self.refresh_interval_s is not None
                and now - last_refresh >= self.refresh_interval_s
            ):
                await self.updater.refresh()
                last_refresh = now
            if (
                self.snapshots is not None
                and self.snapshot_interval_s is not None
                and now - last_snapshot >= self.snapshot_interval_s
            ):
                await self.snapshots.snapshot_once()
                last_snapshot = now

    def run(self) -> None:  # pragma: no cover - interactive entry point
        """Blocking entry point for the CLI: serve until SIGTERM/SIGINT.

        Both signals shut down gracefully: stop accepting, complete open
        sessions, fold, final snapshot, sync and close the journal —
        parity with the multi-process supervisor, and the log line from
        :meth:`stop` records what was flushed.
        """

        async def _main() -> None:
            await self.start()
            print(f"repro serve: listening on http://{self.host}:{self.port}")
            stopping = asyncio.Event()
            loop = asyncio.get_running_loop()
            installed: list[signal.Signals] = []
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, stopping.set)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread / platforms without support
            try:
                await stopping.wait()
                print("repro serve: signal received, shutting down cleanly")
            finally:
                for sig in installed:
                    loop.remove_signal_handler(sig)
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                headers: dict[str, str] = {}
                if params.SERVE_FAST_DISPATCH:
                    # One readuntil for the whole head instead of one
                    # readline per header line; identical framing for
                    # CRLF clients (every client in this repo), and the
                    # slow lane below remains bug-for-bug available by
                    # flipping the flag.
                    try:
                        head = await reader.readuntil(b"\r\n\r\n")
                    except asyncio.IncompleteReadError as exc:
                        if exc.partial:
                            self.errors_total += 1
                            await self._write_response(
                                writer,
                                *_error_body(400, "malformed request line"),
                                close=True,
                            )
                        break
                    except asyncio.LimitOverrunError:
                        self.errors_total += 1
                        await self._write_response(
                            writer,
                            *_error_body(400, "request head too large"),
                            close=True,
                        )
                        break
                    lines = head[:-4].split(b"\r\n")
                    request_line = lines[0]
                    for line in lines[1:]:
                        name, _, value = (
                            line.decode("latin-1").partition(":")
                        )
                        headers[name.strip().lower()] = value.strip()
                else:
                    request_line = await reader.readline()
                    if not request_line:
                        break
                    request_line = request_line.rstrip(b"\r\n")
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n", b""):
                            break
                        name, _, value = line.decode("latin-1").partition(":")
                        headers[name.strip().lower()] = value.strip()
                try:
                    method, target, _ = (
                        request_line.decode("latin-1").split(" ", 2)
                    )
                except ValueError:
                    self.errors_total += 1
                    await self._write_response(
                        writer, *_error_body(400, "malformed request line"), close=True
                    )
                    break
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length else b""
                close = headers.get("connection", "").lower() == "close"
                retry_after: float | None = None
                if self._inflight >= self.max_inflight:
                    # Bounded-queue load shedding: refuse fast and
                    # honestly rather than queueing without limit.
                    self.shed_total += 1
                    retry_after = self.retry_after_s
                    status, content_type, payload = _error_body(
                        503, "server overloaded; retry later"
                    )
                else:
                    self._inflight += 1
                    try:
                        if (
                            params.SERVE_FAST_DISPATCH
                            and params.FAULT_PLAN is None
                            and self._fast_eligible(target)
                        ):
                            # Data-plane fast lane: these handlers are
                            # synchronous, so the wait_for deadline could
                            # never preempt them — skip the per-request
                            # task + timer and dispatch inline.  A fault
                            # plan re-enables the slow lane so injected
                            # stalls still trip the deadline.
                            status, content_type, payload = (
                                self._dispatch_fast(method.upper(), target, body)
                            )
                        elif target.startswith("/admin"):
                            # The ops plane is exempt from the data-plane
                            # deadline: cancelling a refresh mid-flight
                            # would corrupt its breaker bookkeeping, and
                            # rebuild/snapshot stalls already run under
                            # their own supervised deadlines.
                            status, content_type, payload = await self._dispatch(
                                method.upper(), target, body
                            )
                        else:
                            status, content_type, payload = (
                                await asyncio.wait_for(
                                    self._dispatch(method.upper(), target, body),
                                    timeout=self.request_timeout_s,
                                )
                            )
                    except asyncio.TimeoutError:
                        self.request_timeouts_total += 1
                        retry_after = self.retry_after_s
                        status, content_type, payload = _error_body(
                            503,
                            f"request exceeded {self.request_timeout_s:.1f}s"
                            " deadline",
                        )
                    except ReproError as exc:
                        status, content_type, payload = _error_body(
                            400, str(exc)
                        )
                    except Exception as exc:  # pragma: no cover - defensive
                        status, content_type, payload = _error_body(
                            500, f"{type(exc).__name__}: {exc}"
                        )
                    finally:
                        self._inflight -= 1
                if status >= 400:
                    self.errors_total += 1
                await self._write_response(
                    writer,
                    status,
                    content_type,
                    payload,
                    close=close,
                    retry_after=retry_after,
                )
                if close:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
        *,
        close: bool,
        retry_after: float | None = None,
    ) -> None:
        reason = _STATUS_REASONS.get(status, "Unknown")
        connection = "close" if close else "keep-alive"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        if retry_after is not None:
            head += f"Retry-After: {max(1, round(retry_after))}\r\n"
        head += f"Connection: {connection}\r\n\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, str, bytes]:
        spec = fire("serve.slow_request")
        if spec is not None:
            # Injected handler stall: holds an in-flight slot (driving the
            # shed path) and overruns the request deadline.
            await asyncio.sleep(spec.delay_s)
        split = urlsplit(target)
        path = split.path
        query = dict(parse_qsl(split.query))
        self.requests_total[path] = self.requests_total.get(path, 0) + 1
        if path == "/report":
            if method != "POST":
                return _error_body(405, "use POST /report")
            return self._handle_report(query, body)
        if path == "/predict":
            if method != "GET":
                return _error_body(405, "use GET /predict")
            return self._handle_predict(query)
        if path == "/healthz":
            return self._handle_healthz()
        if path == "/metrics":
            return self._handle_metrics()
        if path.startswith("/admin/"):
            if method != "POST":
                return _error_body(405, "admin endpoints use POST")
            return await self._handle_admin(path)
        return _error_body(404, f"unknown path {path!r}")

    def _fast_eligible(self, target: str) -> bool:
        """Whether ``target`` may take the synchronous fast lane.

        The ops plane never does; the multi-process workers additionally
        exclude ``/metrics`` (their cluster view needs an async pipe
        round-trip to the supervisor).
        """
        return not target.startswith("/admin")

    def _dispatch_fast(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, str, bytes]:
        """Synchronous data-plane twin of :meth:`_dispatch`.

        Routes exactly the non-admin surface (``/admin/*`` never reaches
        this — the connection loop sends it down the slow lane) with the
        same handlers, counters and error responses; the only differences
        are the fast target parser and the absence of the per-request
        task.  Gated by :data:`repro.params.SERVE_FAST_DISPATCH`.
        """
        path, query = _split_target(target)
        self.requests_total[path] = self.requests_total.get(path, 0) + 1
        if path == "/report":
            if method != "POST":
                return _error_body(405, "use POST /report")
            return self._handle_report(query, body)
        if path == "/predict":
            if method != "GET":
                return _error_body(405, "use GET /predict")
            return self._handle_predict(query)
        if path == "/healthz":
            return self._handle_healthz()
        if path == "/metrics":
            return self._handle_metrics()
        return _error_body(404, f"unknown path {path!r}")

    # -- handlers --------------------------------------------------------------

    def _handle_report(
        self, query: dict[str, str], body: bytes
    ) -> tuple[int, str, bytes]:
        if not query and body:
            try:
                query = json.loads(body)
            except ValueError:
                return _error_body(400, "body is not valid JSON")
        client = query.get("client")
        url = query.get("url")
        if not client or not url:
            return _error_body(400, "report needs client= and url=")
        ts = query.get("ts")
        try:
            timestamp = float(ts) if ts is not None else time.time()
        except ValueError:
            return _error_body(400, f"bad ts: {ts!r}")
        if self.wal is not None:
            # Write-ahead: the report reaches the journal before the
            # tracker, so an acked report is durable by the time the 200
            # leaves.  A failed append refuses the report (503, the
            # client retries) against a journal that is still intact —
            # the tracker never saw the click, so no state diverges.
            try:
                self.wal.append_report(client, url, timestamp)
            except WalError as exc:
                self.wal_rejected_reports_total += 1
                return _error_body(503, f"report not journalled: {exc}")
        clicks = self.tracker.observe(client, url, timestamp)
        if query.get("predict"):
            return self._predict_payload(client, query)
        return _json_body(200, {"ok": True, "session_clicks": clicks})

    def _handle_predict(self, query: dict[str, str]) -> tuple[int, str, bytes]:
        client = query.get("client")
        if not client:
            return _error_body(400, "predict needs client=")
        return self._predict_payload(client, query)

    def _predict_payload(
        self, client: str, query: dict[str, str]
    ) -> tuple[int, str, bytes]:
        try:
            threshold = float(query.get("threshold") or self.default_threshold)
            limit = int(query["limit"]) if "limit" in query else None
        except ValueError:
            return _error_body(400, "bad threshold= or limit=")
        predictions, version = self.tracker.predict(
            client, threshold=threshold, limit=limit
        )
        self.predictions_total += len(predictions)
        if params.SERVE_FAST_DISPATCH:
            # Byte-identical fast assembly: the per-prediction fragments
            # are memoised (compiled-table rows hand back the same
            # Prediction tuples request after request), so the hot path
            # skips the dict building and most of the json.dumps work.
            body = (
                '{"client":%s,"model_version":%d,"predictions":[%s]}'
                % (
                    json.dumps(client),
                    version,
                    ",".join(map(_prediction_fragment, predictions)),
                )
            ).encode()
            return 200, _JSON, body
        return _json_body(
            200,
            {
                "client": client,
                "model_version": version,
                "predictions": [
                    {
                        "url": p.url,
                        "probability": round(p.probability, 6),
                        "order": p.order,
                        "source": p.source,
                    }
                    for p in predictions
                ],
            },
        )

    def _degraded_reasons(self) -> list[str]:
        """Why the server is in a degraded (but live) state, if at all."""
        reasons = []
        breaker = self.updater.breaker
        if breaker.state != "closed":
            reasons.append(f"rebuild-breaker-{breaker.state}")
        if self.snapshots is not None and self.snapshots.consecutive_failures:
            reasons.append("snapshot-writes-failing")
        if self.wal is not None and (
            self.wal.closed or self.wal.consecutive_write_errors
        ):
            reasons.append("wal-appends-failing")
        if self._inflight >= self.max_inflight:
            reasons.append("shedding-load")
        return reasons

    def _handle_healthz(self) -> tuple[int, str, bytes]:
        model, version = self.ref.get()
        degraded = self._degraded_reasons()
        return _json_body(
            200,
            {
                # Degraded is still alive: the last-good model keeps
                # serving, so orchestrators must not kill the process —
                # they should alert instead.
                "status": "degraded" if degraded else "ok",
                "degraded_reasons": degraded,
                "model": type(model).__name__,
                "model_version": version,
                "model_nodes": model.node_count,
                "active_clients": self.tracker.active_clients,
                "uptime_s": round(time.time() - self._started_at, 3),
            },
        )

    def _handle_metrics(self) -> tuple[int, str, bytes]:
        model, version = self.ref.get()
        lines = [
            "# HELP repro_serve_requests_total Requests handled, by path.",
            "# TYPE repro_serve_requests_total counter",
        ]
        for path in sorted(self.requests_total):
            lines.append(
                f'repro_serve_requests_total{{path="{path}"}} '
                f"{self.requests_total[path]}"
            )
        tracker = self.tracker
        updater = self.updater
        gauges: list[tuple[str, str, float]] = [
            ("repro_serve_model_version", "Published model version.", version),
            ("repro_serve_model_nodes", "Node count of the live model.",
             model.node_count),
            ("repro_serve_active_clients", "Clients with an open session.",
             tracker.active_clients),
            ("repro_serve_observed_clicks_total", "Clicks reported.",
             tracker.observed_clicks),
            ("repro_serve_sessions_completed_total",
             "Sessions closed by idle expiry or click cap.",
             tracker.completed_sessions),
            ("repro_serve_cursor_resyncs_total",
             "Client cursors rebuilt after a model swap.", tracker.resyncs),
            ("repro_predict_cache_hits_total",
             "Predictions answered from the per-client memo (same cursor "
             "position, same model generation).",
             tracker.predict_cache_hits),
            ("repro_predict_cache_misses_total",
             "Predictions recomputed because the cursor moved, the model "
             "flipped, or the ask changed.",
             tracker.predict_cache_misses),
            ("repro_serve_predictions_total", "Prediction URLs returned.",
             self.predictions_total),
            ("repro_serve_errors_total", "Responses with status >= 400.",
             self.errors_total),
            ("repro_serve_folded_sessions_total",
             "Sessions folded into the live model.",
             updater.folded_sessions_total),
            ("repro_serve_refresh_total", "Read-copy-update rebuilds published.",
             updater.refresh_total),
            ("repro_serve_pending_sessions", "Sessions awaiting the next fold.",
             updater.pending_sessions),
            ("repro_serve_uptime_seconds", "Seconds since start().",
             round(time.time() - self._started_at, 3)),
            ("repro_serve_shed_total",
             "Requests shed with 503 (in-flight bound hit).",
             self.shed_total),
            ("repro_serve_request_timeouts_total",
             "Requests abandoned at the dispatch deadline.",
             self.request_timeouts_total),
            ("repro_serve_inflight_requests", "Requests being handled now.",
             self._inflight),
            ("repro_serve_refresh_failures_total",
             "Model rebuilds that raised or stalled (last-good retained).",
             updater.refresh_failures_total),
            ("repro_serve_refresh_timeouts_total",
             "Model rebuilds abandoned at the rebuild deadline.",
             updater.refresh_timeouts_total),
            ("repro_serve_refresh_skipped_total",
             "Rebuild attempts skipped while the breaker was open.",
             updater.refresh_skipped_total),
            ("repro_serve_breaker_opened_total",
             "Times the rebuild circuit breaker opened.",
             updater.breaker.opened_total),
            ("repro_serve_breaker_open",
             "1 while the rebuild breaker is open or half-open.",
             0 if updater.breaker.state == "closed" else 1),
        ]
        plan = params.FAULT_PLAN
        if plan is not None:
            gauges.append(
                ("repro_serve_faults_injected_total",
                 "Faults fired by the installed fault plan (all sites).",
                 sum(plan.fires.values()))
            )
        if self.snapshots is not None:
            gauges.extend(
                [
                    ("repro_serve_snapshot_total", "Snapshots written.",
                     self.snapshots.snapshot_total),
                    ("repro_serve_snapshot_retries_total",
                     "Snapshot write attempts that were retried.",
                     self.snapshots.snapshot_retries_total),
                    ("repro_serve_snapshot_failures_total",
                     "Snapshot cadence ticks that exhausted every retry.",
                     self.snapshots.snapshot_failures_total),
                ]
            )
        if self.wal is not None:
            wal = self.wal
            gauges.extend(
                [
                    ("repro_wal_appended_records_total",
                     "Records appended to the report journal.",
                     wal.appended_records_total),
                    ("repro_wal_appended_bytes_total",
                     "Frame bytes appended to the report journal.",
                     wal.appended_bytes_total),
                    ("repro_wal_fsync_total", "Journal fsync calls.",
                     wal.fsync_total),
                    ("repro_wal_rotations_total",
                     "Journal segments sealed (size, age or snapshot "
                     "boundary).",
                     wal.rotations_total),
                    ("repro_wal_write_errors_total",
                     "Journal appends or fsyncs that failed.",
                     wal.write_errors_total),
                    ("repro_wal_rejected_reports_total",
                     "Reports refused with 503 because the journal "
                     "append failed.",
                     self.wal_rejected_reports_total),
                    ("repro_wal_compacted_segments_total",
                     "Sealed segments deleted after a covering snapshot.",
                     wal.compacted_segments_total),
                    ("repro_wal_active_segment",
                     "Sequence number of the segment being appended to.",
                     wal.active_seq),
                ]
            )
            if self.last_recovery is not None:
                recovery = self.last_recovery
                gauges.extend(
                    [
                        ("repro_wal_recovery_records_replayed",
                         "Journal records replayed at the last boot.",
                         recovery["records_replayed"]),
                        ("repro_wal_recovery_segments_scanned",
                         "Journal segments scanned at the last boot.",
                         recovery["segments_scanned"]),
                        ("repro_wal_recovery_truncated_tails",
                         "Torn segment tails truncated at the last boot.",
                         recovery["truncated_tails"]),
                        ("repro_wal_recovery_corrupt_frames",
                         "Corrupt (bit-flipped) frames that stopped a "
                         "segment scan at the last boot.",
                         recovery["corrupt_frames"]),
                        ("repro_wal_recovery_carry_applied",
                         "Snapshot-boundary carry records applied at the "
                         "last boot.",
                         recovery["carry_applied"]),
                    ]
                )
        for name, help_text, value in gauges:
            kind = "counter" if name.endswith("_total") else "gauge"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {value}")
        return 200, _PROMETHEUS, ("\n".join(lines) + "\n").encode()

    async def _handle_admin(self, path: str) -> tuple[int, str, bytes]:
        if path == "/admin/refresh":
            # Pick up everything completed so far, so the rebuild reflects
            # the state at the moment of the request rather than whenever
            # housekeeping last drained.
            self.tracker.expire_idle()
            self.updater.add_sessions(self.tracker.drain_completed())
            version = await self.updater.refresh()
            if version is None:
                return _error_body(400, "no sessions retained; nothing to rebuild")
            return _json_body(200, {"ok": True, "model_version": version})
        if path == "/admin/snapshot":
            if self.snapshots is None:
                return _error_body(400, "server started without a snapshot path")
            version = await self.snapshots.snapshot_once()
            if version is None:
                return _error_body(
                    500,
                    "snapshot write failed after retries; last-good "
                    "snapshot retained",
                )
            return _json_body(
                200,
                {"ok": True, "path": self.snapshots.path, "model_version": version},
            )
        if path == "/admin/reload":
            if self.snapshots is None:
                return _error_body(400, "server started without a snapshot path")
            version = self.snapshots.reload()
            return _json_body(200, {"ok": True, "model_version": version})
        return _error_body(404, f"unknown admin endpoint {path!r}")


class ServerThread:
    """Run a :class:`PrefetchServer` on a dedicated thread and event loop.

    The embedding for tests, benchmarks and ``repro loadgen --spawn``::

        handle = ServerThread(PrefetchServer(model))
        handle.start()              # returns once the port is bound
        ... requests against handle.url ...
        handle.stop()               # clean shutdown, thread joined

    ``call(coro_factory)`` schedules a coroutine on the server loop and
    waits for its result — how tests drive folds and refreshes
    deterministically.
    """

    def __init__(self, server: PrefetchServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # pragma: no cover - bind failures
            self._startup_error = exc
            self._started.set()
            raise
        self._started.set()
        await self._stop_event.wait()
        await self.server.stop()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise ServeError(f"server failed to start: {self._startup_error}")
        return self

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def call(self, factory: Callable[[], Awaitable]):
        """Run ``factory()`` on the server loop; return its result."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(factory(), self._loop)
        return future.result(timeout=60)

    def stop(self) -> None:
        if self._loop is None or self._stop_event is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=60)
