"""Model snapshots: periodic persistence, restore-on-boot, quarantine.

A prediction server folds sessions into its model continuously; a crash
between nightly rebuilds must not lose that state.  This module writes the
published model to disk through :mod:`repro.core.serialize` and restores
it on boot.

Consistency: the JSON document is produced *on the event loop* (so no fold
can interleave with the tree walk) and only the file write runs in a
worker thread; the write goes to a temporary file in the same directory,
is **verified to parse back**, and only then atomically renamed over the
target — so a torn or interrupted write can never replace the last-good
snapshot.  Failed writes are retried with exponential backoff
(:data:`repro.params.SERVE_SNAPSHOT_RETRIES`), and when the budget is
spent the server keeps serving and keeps the previous snapshot on disk:
persistence degrades, predictions never do.

Boot: :func:`restore_snapshot` is the forgiving entry point — a corrupt
snapshot file is *quarantined* (renamed to ``<path>.corrupt-<seq>``,
monotonically numbered so repeated corruption never destroys an earlier
diagnostic artifact, retention capped at
:data:`repro.params.SERVE_QUARANTINE_KEEP`) and the server starts from
its bootstrap data instead of refusing to start, on the logic that a
live server relearns faster than an operator debugs a 3 a.m. boot loop.
:func:`load_snapshot` remains the strict variant for callers that want
the :class:`~repro.errors.ModelError`.

Durability beyond the snapshot cadence lives in the write-ahead journal
(:mod:`repro.serve.wal`).  When the manager is given a journal, every
snapshot establishes a *boundary*: the journal rotates, the open/pending
state the model dump does not cover is appended as a carry record, and
the boundary is stored inside the snapshot document (``"wal"`` key —
:func:`~repro.core.serialize.load_model` ignores unknown top-level
keys).  Only after the snapshot write is verified on disk are the sealed
segments below the boundary deleted — compaction is gated on success, so
a failed snapshot leaves every journal record (and the previous
snapshot's boundary) in place and loses nothing.

Injection points (``repro.resilience``): ``snapshot.io_error`` raises
mid-write; ``snapshot.torn_write`` truncates the temp file so the
verification step must catch it.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import re
import time
from typing import TYPE_CHECKING

from repro import params
from repro.core.base import PPMModel
from repro.core.serialize import dump_model, load_model, read_model
from repro.errors import ModelError, WalError
from repro.resilience.faults import fire
from repro.serve.state import ModelRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.updater import ModelUpdater
    from repro.serve.wal import ReportJournal

logger = logging.getLogger("repro.serve")

_QUARANTINE_RE = re.compile(r"\.corrupt-(\d+)$")


def write_snapshot(model: PPMModel, path: str) -> None:
    """Serialise ``model`` to ``path`` atomically (tmp + verify + rename)."""
    payload = dump_model(model)
    _write_payload(payload, path)


def _write_payload(payload: dict, path: str) -> None:
    """Write ``payload`` so ``path`` only ever holds a complete document.

    The temp file is re-read and parsed before the rename: a torn write
    (process killed mid-``json.dump``, full disk, injected
    ``snapshot.torn_write``) fails verification and leaves the previous
    snapshot untouched — the caller retries or gives up, but ``path``
    stays last-good either way.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            if fire("snapshot.io_error"):
                raise OSError("injected snapshot IO error")
            json.dump(payload, handle, separators=(",", ":"))
        spec = fire("snapshot.torn_write")
        if spec is not None:
            size = os.path.getsize(tmp_path)
            with open(tmp_path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        with open(tmp_path, "r", encoding="utf-8") as handle:
            json.load(handle)
    except (OSError, ValueError):
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    os.replace(tmp_path, path)


def load_snapshot(path: str) -> PPMModel:
    """Restore a model from a snapshot file (strict).

    Raises
    ------
    ModelError
        When the file is missing, unreadable, or not a valid model
        document — boot-restore fails with one clear error type.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return read_model(handle)
    except OSError as exc:
        raise ModelError(f"cannot read snapshot {path!r}: {exc}") from exc


def list_quarantined(path: str) -> list[tuple[int, str]]:
    """``(seq, path)`` for every quarantine file of ``path``, ascending."""
    directory = os.path.dirname(os.path.abspath(path))
    base = os.path.basename(path)
    found: list[tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if not name.startswith(base):
            continue
        match = _QUARANTINE_RE.search(name)
        if match and name == f"{base}.corrupt-{match.group(1)}":
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort()
    return found


def quarantine_snapshot(
    path: str, *, keep: int = params.SERVE_QUARANTINE_KEEP
) -> str:
    """Move a corrupt snapshot aside as ``<path>.corrupt-<seq>``.

    The sequence is monotonic over the quarantine files already present,
    so a second corruption never clobbers the first corpse; once more
    than ``keep`` are retained the oldest are deleted.  Returns the
    quarantine path.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    existing = list_quarantined(path)
    seq = (existing[-1][0] + 1) if existing else 1
    quarantine_path = f"{path}.corrupt-{seq:04d}"
    os.replace(path, quarantine_path)
    for _seq, old in existing[: max(0, len(existing) + 1 - keep)]:
        try:
            os.unlink(old)
        except OSError:  # pragma: no cover - exotic perms
            pass
    return quarantine_path


def restore_snapshot_state(path: str) -> tuple[PPMModel | None, int | None]:
    """Boot-time restore of ``(model, wal boundary)``, forgiving.

    One parse serves both: the document is loaded once, the model
    reconstructed from it, and the journal boundary read from the
    ``"wal"`` key (``None`` for pre-WAL snapshots — recovery then replays
    every journal segment, which is only correct because a boundary-less
    snapshot predates journaling entirely).  A missing file returns
    ``(None, None)``; a corrupt one is quarantined
    (``<path>.corrupt-<seq>``) with a warning and the server boots empty
    and relearns instead of crash-looping on damaged state.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return None, None
    except (OSError, ValueError) as exc:
        document = None
        error: Exception = ModelError(f"cannot read snapshot {path!r}: {exc}")
    if document is not None:
        try:
            model = load_model(document)
        except ModelError as exc:
            error = exc
        else:
            boundary = None
            wal_state = document.get("wal")
            if isinstance(wal_state, dict):
                raw = wal_state.get("boundary")
                if isinstance(raw, int):
                    boundary = raw
            return model, boundary
    try:
        quarantine_path = quarantine_snapshot(path)
    except OSError as rename_exc:  # pragma: no cover - exotic perms
        logger.warning(
            "snapshot %s is corrupt (%s) and could not be "
            "quarantined (%s); starting empty",
            path,
            error,
            rename_exc,
        )
        return None, None
    logger.warning(
        "snapshot %s is corrupt (%s); quarantined to %s, starting empty",
        path,
        error,
        quarantine_path,
    )
    return None, None


def restore_snapshot(path: str) -> PPMModel | None:
    """Boot-time model restore (the boundary-less veneer over
    :func:`restore_snapshot_state` — callers without a journal)."""
    return restore_snapshot_state(path)[0]


class SnapshotManager:
    """Periodic snapshots of the published model, with supervised retry.

    ``snapshot_once`` serialises on the calling (event-loop) thread and
    writes off-loop; a failed write is retried
    :data:`~repro.params.SERVE_SNAPSHOT_RETRIES` times with exponential
    backoff and then given up for this cadence tick — the last-good file
    stays on disk and :attr:`consecutive_failures` feeds the degraded
    state on ``/healthz``.  :attr:`snapshot_total`,
    :attr:`snapshot_retries_total` and :attr:`snapshot_failures_total`
    feed ``/metrics``.

    With a journal (``wal`` plus the ``tracker``/``updater`` whose
    uncovered state the carry captures), each snapshot rotates the
    journal to a boundary, journals the carry, embeds the boundary in
    the document, and compacts sealed segments below it **only after the
    write verified** — see the module docstring.
    """

    def __init__(
        self,
        ref: ModelRef,
        path: str,
        *,
        retries: int = params.SERVE_SNAPSHOT_RETRIES,
        backoff_s: float = params.SERVE_SNAPSHOT_BACKOFF_S,
        wal: "ReportJournal | None" = None,
        tracker=None,
        updater: "ModelUpdater | None" = None,
    ) -> None:
        if not path:
            raise ValueError("snapshot path must be non-empty")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.ref = ref
        self.path = path
        self.retries = retries
        self.backoff_s = backoff_s
        self.wal = wal
        self.tracker = tracker
        self.updater = updater
        self.snapshot_total = 0
        self.snapshot_retries_total = 0
        self.snapshot_failures_total = 0
        self.consecutive_failures = 0
        self.last_snapshot_time = 0.0
        self.last_snapshot_version = 0
        self.last_boundary: int | None = None
        self.last_error: str | None = None

    def _journal_boundary(self) -> int | None:
        """Rotate the journal and append the carry; the new boundary.

        Raises :class:`~repro.errors.WalError` when the carry cannot be
        journalled — the snapshot attempt is then abandoned, because a
        snapshot that stores a boundary whose carry is missing would
        compact away the open/pending state it failed to save.
        """
        boundary = self.wal.rotate()
        open_sessions = (
            self.tracker.open_session_state() if self.tracker is not None else []
        )
        pending = (
            self.updater.pending_snapshot() if self.updater is not None else []
        )
        self.wal.append_carry(boundary, open_sessions, pending)
        return boundary

    async def snapshot_once(self) -> int | None:
        """Write the current model; returns the version snapshotted.

        Returns ``None`` when every attempt failed — the server keeps
        running against the last-good on-disk snapshot (whose stored
        boundary still guards every journal segment it needs); the
        failure shows up in the counters, the log and the degraded
        health state.
        """
        model, version = self.ref.get()
        payload = dump_model(model)
        boundary: int | None = None
        if self.wal is not None:
            try:
                boundary = self._journal_boundary()
            except WalError as exc:
                self.last_error = f"WalError: {exc}"
                self.snapshot_failures_total += 1
                self.consecutive_failures += 1
                logger.error(
                    "snapshot skipped: cannot journal the carry record "
                    "(%s); last-good snapshot and journal retained",
                    exc,
                )
                return None
            payload["wal"] = {"boundary": boundary}
        for attempt in range(self.retries + 1):
            try:
                await asyncio.to_thread(_write_payload, payload, self.path)
            except (OSError, ValueError) as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                if attempt < self.retries:
                    self.snapshot_retries_total += 1
                    logger.warning(
                        "snapshot write to %s failed (%s); retry %d/%d",
                        self.path,
                        self.last_error,
                        attempt + 1,
                        self.retries,
                    )
                    await asyncio.sleep(self.backoff_s * (2**attempt))
                continue
            self.snapshot_total += 1
            self.consecutive_failures = 0
            self.last_error = None
            self.last_snapshot_time = time.time()
            self.last_snapshot_version = version
            if self.wal is not None and boundary is not None:
                # The snapshot (with its embedded boundary) is verified
                # on disk — every record below the boundary is covered,
                # so the sealed segments holding them are reclaimable.
                self.last_boundary = boundary
                self.wal.compact(boundary)
            return version
        self.snapshot_failures_total += 1
        self.consecutive_failures += 1
        logger.error(
            "snapshot write to %s failed after %d attempt(s) (%s); "
            "last-good snapshot retained",
            self.path,
            self.retries + 1,
            self.last_error,
        )
        return None

    def reload(self) -> int:
        """Replace the published model with the on-disk snapshot.

        Synchronous — the read and parse happen on the caller; use from
        the admin surface, which runs requests one at a time anyway.
        Returns the newly published version.
        """
        model = load_snapshot(self.path)
        return self.ref.publish(model)
