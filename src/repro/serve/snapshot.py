"""Model snapshots: periodic persistence, restore-on-boot, quarantine.

A prediction server folds sessions into its model continuously; a crash
between nightly rebuilds must not lose that state.  This module writes the
published model to disk through :mod:`repro.core.serialize` and restores
it on boot.

Consistency: the JSON document is produced *on the event loop* (so no fold
can interleave with the tree walk) and only the file write runs in a
worker thread; the write goes to a temporary file in the same directory,
is **verified to parse back**, and only then atomically renamed over the
target — so a torn or interrupted write can never replace the last-good
snapshot.  Failed writes are retried with exponential backoff
(:data:`repro.params.SERVE_SNAPSHOT_RETRIES`), and when the budget is
spent the server keeps serving and keeps the previous snapshot on disk:
persistence degrades, predictions never do.

Boot: :func:`restore_snapshot` is the forgiving entry point — a corrupt
snapshot file is *quarantined* (renamed to ``<path>.corrupt``) and the
server starts from its bootstrap data instead of refusing to start, on
the logic that a live server relearns faster than an operator debugs a
3 a.m. boot loop.  :func:`load_snapshot` remains the strict variant for
callers that want the :class:`~repro.errors.ModelError`.

Injection points (``repro.resilience``): ``snapshot.io_error`` raises
mid-write; ``snapshot.torn_write`` truncates the temp file so the
verification step must catch it.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import time

from repro import params
from repro.core.base import PPMModel
from repro.core.serialize import dump_model, read_model
from repro.errors import ModelError
from repro.resilience.faults import fire
from repro.serve.state import ModelRef

logger = logging.getLogger("repro.serve")


def write_snapshot(model: PPMModel, path: str) -> None:
    """Serialise ``model`` to ``path`` atomically (tmp + verify + rename)."""
    payload = dump_model(model)
    _write_payload(payload, path)


def _write_payload(payload: dict, path: str) -> None:
    """Write ``payload`` so ``path`` only ever holds a complete document.

    The temp file is re-read and parsed before the rename: a torn write
    (process killed mid-``json.dump``, full disk, injected
    ``snapshot.torn_write``) fails verification and leaves the previous
    snapshot untouched — the caller retries or gives up, but ``path``
    stays last-good either way.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            if fire("snapshot.io_error"):
                raise OSError("injected snapshot IO error")
            json.dump(payload, handle, separators=(",", ":"))
        spec = fire("snapshot.torn_write")
        if spec is not None:
            size = os.path.getsize(tmp_path)
            with open(tmp_path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        with open(tmp_path, "r", encoding="utf-8") as handle:
            json.load(handle)
    except (OSError, ValueError):
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    os.replace(tmp_path, path)


def load_snapshot(path: str) -> PPMModel:
    """Restore a model from a snapshot file (strict).

    Raises
    ------
    ModelError
        When the file is missing, unreadable, or not a valid model
        document — boot-restore fails with one clear error type.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return read_model(handle)
    except OSError as exc:
        raise ModelError(f"cannot read snapshot {path!r}: {exc}") from exc


def quarantine_snapshot(path: str) -> str:
    """Move a corrupt snapshot aside as ``<path>.corrupt``; returns the
    quarantine path (an existing quarantine file is overwritten — the
    newest corpse is the one worth debugging)."""
    quarantine_path = f"{path}.corrupt"
    os.replace(path, quarantine_path)
    return quarantine_path


def restore_snapshot(path: str) -> PPMModel | None:
    """Boot-time restore: forgiving where :func:`load_snapshot` is strict.

    Returns the restored model; ``None`` when there is no snapshot file
    *or* the file is corrupt — in the corrupt case the file is renamed to
    ``<path>.corrupt`` (kept for diagnosis) and a warning logged, so the
    server boots empty and relearns instead of crash-looping on damaged
    state.
    """
    if not os.path.exists(path):
        return None
    try:
        return load_snapshot(path)
    except ModelError as exc:
        try:
            quarantine_path = quarantine_snapshot(path)
        except OSError as rename_exc:  # pragma: no cover - exotic perms
            logger.warning(
                "snapshot %s is corrupt (%s) and could not be "
                "quarantined (%s); starting empty",
                path,
                exc,
                rename_exc,
            )
            return None
        logger.warning(
            "snapshot %s is corrupt (%s); quarantined to %s, starting empty",
            path,
            exc,
            quarantine_path,
        )
        return None


class SnapshotManager:
    """Periodic snapshots of the published model, with supervised retry.

    ``snapshot_once`` serialises on the calling (event-loop) thread and
    writes off-loop; a failed write is retried
    :data:`~repro.params.SERVE_SNAPSHOT_RETRIES` times with exponential
    backoff and then given up for this cadence tick — the last-good file
    stays on disk and :attr:`consecutive_failures` feeds the degraded
    state on ``/healthz``.  :attr:`snapshot_total`,
    :attr:`snapshot_retries_total` and :attr:`snapshot_failures_total`
    feed ``/metrics``.
    """

    def __init__(
        self,
        ref: ModelRef,
        path: str,
        *,
        retries: int = params.SERVE_SNAPSHOT_RETRIES,
        backoff_s: float = params.SERVE_SNAPSHOT_BACKOFF_S,
    ) -> None:
        if not path:
            raise ValueError("snapshot path must be non-empty")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.ref = ref
        self.path = path
        self.retries = retries
        self.backoff_s = backoff_s
        self.snapshot_total = 0
        self.snapshot_retries_total = 0
        self.snapshot_failures_total = 0
        self.consecutive_failures = 0
        self.last_snapshot_time = 0.0
        self.last_snapshot_version = 0
        self.last_error: str | None = None

    async def snapshot_once(self) -> int | None:
        """Write the current model; returns the version snapshotted.

        Returns ``None`` when every attempt failed — the server keeps
        running against the last-good on-disk snapshot; the failure shows
        up in the counters, the log and the degraded health state.
        """
        model, version = self.ref.get()
        payload = dump_model(model)
        for attempt in range(self.retries + 1):
            try:
                await asyncio.to_thread(_write_payload, payload, self.path)
            except (OSError, ValueError) as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                if attempt < self.retries:
                    self.snapshot_retries_total += 1
                    logger.warning(
                        "snapshot write to %s failed (%s); retry %d/%d",
                        self.path,
                        self.last_error,
                        attempt + 1,
                        self.retries,
                    )
                    await asyncio.sleep(self.backoff_s * (2**attempt))
                continue
            self.snapshot_total += 1
            self.consecutive_failures = 0
            self.last_error = None
            self.last_snapshot_time = time.time()
            self.last_snapshot_version = version
            return version
        self.snapshot_failures_total += 1
        self.consecutive_failures += 1
        logger.error(
            "snapshot write to %s failed after %d attempt(s) (%s); "
            "last-good snapshot retained",
            self.path,
            self.retries + 1,
            self.last_error,
        )
        return None

    def reload(self) -> int:
        """Replace the published model with the on-disk snapshot.

        Synchronous — the read and parse happen on the caller; use from
        the admin surface, which runs requests one at a time anyway.
        Returns the newly published version.
        """
        model = load_snapshot(self.path)
        return self.ref.publish(model)
