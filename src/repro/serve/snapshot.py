"""Model snapshots: periodic persistence and restore-on-boot.

A prediction server folds sessions into its model continuously; a crash
between nightly rebuilds must not lose that state.  This module writes the
published model to disk through :mod:`repro.core.serialize` and restores
it on boot.

Consistency: the JSON document is produced *on the event loop* (so no fold
can interleave with the tree walk) and only the file write runs in a
worker thread; the write goes to a temporary file in the same directory
followed by an atomic rename, so a crash mid-write leaves the previous
snapshot intact and a boot never sees a torn file.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.core.base import PPMModel
from repro.core.serialize import dump_model, read_model
from repro.errors import ModelError
from repro.serve.state import ModelRef


def write_snapshot(model: PPMModel, path: str) -> None:
    """Serialise ``model`` to ``path`` atomically (tmp file + rename)."""
    payload = dump_model(model)
    _write_payload(payload, path)


def _write_payload(payload: dict, path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp_path, path)


def load_snapshot(path: str) -> PPMModel:
    """Restore a model from a snapshot file.

    Raises
    ------
    ModelError
        When the file is missing, unreadable, or not a valid model
        document — boot-restore fails with one clear error type.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return read_model(handle)
    except OSError as exc:
        raise ModelError(f"cannot read snapshot {path!r}: {exc}") from exc


class SnapshotManager:
    """Periodic snapshots of the published model.

    ``snapshot_once`` serialises on the calling (event-loop) thread and
    writes off-loop; :attr:`last_snapshot_time` / :attr:`snapshot_total`
    feed ``/metrics``.
    """

    def __init__(self, ref: ModelRef, path: str) -> None:
        if not path:
            raise ValueError("snapshot path must be non-empty")
        self.ref = ref
        self.path = path
        self.snapshot_total = 0
        self.last_snapshot_time = 0.0
        self.last_snapshot_version = 0

    async def snapshot_once(self) -> int:
        """Write the current model; returns the version snapshotted."""
        model, version = self.ref.get()
        payload = dump_model(model)
        await asyncio.to_thread(_write_payload, payload, self.path)
        self.snapshot_total += 1
        self.last_snapshot_time = time.time()
        self.last_snapshot_version = version
        return version

    def reload(self) -> int:
        """Replace the published model with the on-disk snapshot.

        Synchronous — the read and parse happen on the caller; use from
        the admin surface, which runs requests one at a time anyway.
        Returns the newly published version.
        """
        model = load_snapshot(self.path)
        return self.ref.publish(model)
