"""Online prefetch prediction serving (stdlib asyncio HTTP).

The deployable layer over the paper's models: a prediction server with
live model updates and read-copy-update hot swaps
(:mod:`repro.serve.server`), per-client session tracking with the paper's
30-minute idle expiry (:mod:`repro.serve.state`), online maintenance
(:mod:`repro.serve.updater`), snapshots (:mod:`repro.serve.snapshot`),
a durable write-ahead report journal with crash recovery
(:mod:`repro.serve.wal`), shared-memory multi-process serving
(:mod:`repro.serve.multiproc`) and a trace-driven load generator
(:mod:`repro.serve.loadgen`).
"""

from repro.serve.loadgen import format_report, run_loadgen
from repro.serve.multiproc import MultiprocServer
from repro.serve.server import PrefetchServer, ServerThread
from repro.serve.snapshot import (
    SnapshotManager,
    load_snapshot,
    restore_snapshot,
    restore_snapshot_state,
    write_snapshot,
)
from repro.serve.state import ClientSessionTracker, ModelRef, trim_context
from repro.serve.updater import ModelUpdater
from repro.serve.wal import (
    ReportJournal,
    WalRecovery,
    read_journal,
    recovery_sessions,
    replay_into_tracker,
)

__all__ = [
    "ClientSessionTracker",
    "ModelRef",
    "ModelUpdater",
    "MultiprocServer",
    "PrefetchServer",
    "ReportJournal",
    "ServerThread",
    "SnapshotManager",
    "WalRecovery",
    "format_report",
    "load_snapshot",
    "read_journal",
    "recovery_sessions",
    "replay_into_tracker",
    "restore_snapshot",
    "restore_snapshot_state",
    "run_loadgen",
    "trim_context",
    "write_snapshot",
]
