"""Per-client serving state: published-model reference and session tracking.

Two pieces every other serve module builds on:

* :class:`ModelRef` — the read-copy-update (RCU) publication point.  The
  updater and the admin surface *replace* the referenced model atomically;
  request handlers grab one ``(model, version)`` snapshot per request, so a
  prediction is always computed against exactly one model — never a mix of
  an old and a new one mid-swap.
* :class:`ClientSessionTracker` — the paper's access-session semantics
  (Section 1: a client idle for more than 30 minutes starts a new session)
  applied to a live request stream, driving one incremental
  :class:`~repro.core.prediction.PredictionCursor` per client instead of
  re-matching the context suffixes on every request.

Completed sessions (idle-expired or explicitly closed) are handed to the
online updater as ordinary :class:`~repro.trace.sessions.Session` objects,
so serving feeds the same maintenance pipeline
(:mod:`repro.core.online`) the offline experiments use.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro import params
from repro.core.base import PPMModel
from repro.core.prediction import Prediction, PredictionCursor
from repro.trace.record import Request
from repro.trace.sessions import Session

#: Clicks after which a still-open session is force-completed; bounds the
#: per-client memory a misbehaving (or proxy) client can pin.
DEFAULT_MAX_SESSION_CLICKS = 500


def trim_context(urls: Sequence[str], max_length: int) -> tuple[str, ...]:
    """The context suffix a prediction actually uses (newest clicks win)."""
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")
    return tuple(urls[-max_length:])


class ModelRef:
    """An atomically swappable reference to the live prediction model.

    ``get()`` returns a ``(model, version)`` snapshot; ``publish()``
    installs a replacement and bumps the version.  The lock only guards
    the reference pair, never a prediction, so readers are wait-free in
    practice; handlers must call :meth:`get` once and use that model for
    the whole request (the RCU discipline the hot-swap tests pin).
    """

    def __init__(self, model: PPMModel, *, version: int = 1) -> None:
        if not model.is_fitted:
            raise ValueError("ModelRef requires a fitted model")
        self._lock = threading.Lock()
        self._model = model
        self._version = version

    def get(self) -> tuple[PPMModel, int]:
        """The current ``(model, version)`` pair, atomically."""
        with self._lock:
            return self._model, self._version

    @property
    def model(self) -> PPMModel:
        return self.get()[0]

    @property
    def version(self) -> int:
        return self.get()[1]

    def publish(self, model: PPMModel, *, version: int | None = None) -> int:
        """Swap in a replacement model; returns the new version.

        ``version`` pins the published version explicitly instead of
        bumping by one — the multi-process workers use it so every
        worker's version equals the supervisor's global segment
        generation.  It must move forward.
        """
        if not model.is_fitted:
            raise ValueError("cannot publish an unfitted model")
        with self._lock:
            if version is not None:
                if version <= self._version and model is not self._model:
                    raise ValueError(
                        f"published version must advance: {version} <= "
                        f"{self._version}"
                    )
                self._version = version
            else:
                self._version += 1
            self._model = model
            return self._version


class _ClientState:
    """One client's open session and its incremental prediction cursor."""

    __slots__ = ("clicks", "timestamps", "cursor", "model", "last_seen", "memo")

    def __init__(self) -> None:
        self.clicks: list[str] = []
        self.timestamps: list[float] = []
        self.cursor: PredictionCursor | None = None
        self.model: PPMModel | None = None
        self.last_seen = 0.0
        #: Last prediction, memoised as ``(threshold, limit, version,
        #: mutations, predictions)``; dropped whenever the cursor moves and
        #: ignored when the model generation flips or the model mutates in
        #: place, so a stale answer can never be replayed.
        self.memo: (
            tuple[float, int | None, int, int, list[Prediction]] | None
        ) = None


class ClientSessionTracker:
    """Sliding per-client contexts over the published model.

    Parameters
    ----------
    ref:
        The :class:`ModelRef` predictions read from.  When a new model is
        published, each client's cursor is transparently rebuilt against
        the new model on its next request (replaying the trimmed context,
        at most ``max_context_length`` clicks).
    idle_timeout_s:
        The paper's session boundary: a gap strictly greater than this
        closes the open session (default 30 minutes).
    max_context_length:
        Longest context suffix kept for prediction (cursor length).
    max_session_clicks:
        Force-complete a session that reaches this many clicks.

    Time is whatever clock ``observe`` is fed — wall-clock seconds for a
    live deployment, trace seconds for a replay; expiry only compares
    observed timestamps (see :meth:`expire_idle`).
    """

    def __init__(
        self,
        ref: ModelRef,
        *,
        idle_timeout_s: float = params.SESSION_IDLE_TIMEOUT_S,
        max_context_length: int = params.DEFAULT_MAX_CONTEXT_LENGTH,
        max_session_clicks: int = DEFAULT_MAX_SESSION_CLICKS,
    ) -> None:
        if idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be > 0, got {idle_timeout_s}")
        if max_context_length < 1:
            raise ValueError(
                f"max_context_length must be >= 1, got {max_context_length}"
            )
        if max_session_clicks < 1:
            raise ValueError(
                f"max_session_clicks must be >= 1, got {max_session_clicks}"
            )
        self.ref = ref
        self.idle_timeout_s = idle_timeout_s
        self.max_context_length = max_context_length
        self.max_session_clicks = max_session_clicks
        self._clients: dict[str, _ClientState] = {}
        self._completed: list[Session] = []
        self._clock = 0.0
        self.observed_clicks = 0
        self.completed_sessions = 0
        self.resyncs = 0
        self.predict_cache_hits = 0
        self.predict_cache_misses = 0

    # -- introspection -------------------------------------------------------

    @property
    def active_clients(self) -> int:
        return len(self._clients)

    @property
    def clock(self) -> float:
        """Latest timestamp observed across all clients."""
        return self._clock

    def context(self, client: str) -> tuple[str, ...]:
        """The trimmed context the next prediction for ``client`` will use."""
        state = self._clients.get(client)
        if state is None:
            return ()
        return trim_context(state.clicks, self.max_context_length)

    def open_session_state(self) -> list:
        """Every open session as ``[client, [[url, ts], ...]]`` pairs.

        The write-ahead journal's snapshot-boundary carry record uses
        this shape (see :meth:`repro.serve.wal.ReportJournal.append_carry`):
        open sessions are the part of the tracker a model snapshot does
        not cover, so they ride in the journal across a restart and are
        re-observed click by click — coming back *open*, with context.
        """
        return [
            [client, [list(pair) for pair in zip(state.clicks, state.timestamps)]]
            for client, state in self._clients.items()
            if state.clicks
        ]

    # -- session lifecycle ---------------------------------------------------

    def _complete(self, client: str, state: _ClientState) -> None:
        if state.clicks:
            requests = tuple(
                Request(client=client, timestamp=ts, url=url, size=0)
                for url, ts in zip(state.clicks, state.timestamps)
            )
            self._completed.append(Session(client=client, requests=requests))
            self.completed_sessions += 1
        state.clicks = []
        state.timestamps = []
        state.memo = None
        if state.cursor is not None:
            state.cursor.reset()

    def _sync_cursor(self, state: _ClientState, model: PPMModel) -> PredictionCursor:
        """The client's cursor against ``model``, rebuilding after a swap."""
        cursor = state.cursor
        if cursor is None or state.model is not model:
            cursor = model.prediction_cursor(self.max_context_length)
            for url in trim_context(state.clicks, self.max_context_length):
                cursor.advance(url)
            state.cursor = cursor
            state.model = model
            state.memo = None
            self.resyncs += 1
        return cursor

    def observe(self, client: str, url: str, timestamp: float) -> int:
        """Record one click; returns the open session's click count.

        A gap above the idle timeout (or the click cap) completes the open
        session first — pick completed sessions up with
        :meth:`drain_completed`.
        """
        if not client:
            raise ValueError("client id must be non-empty")
        if not url:
            raise ValueError("url must be non-empty")
        state = self._clients.get(client)
        if state is None:
            state = _ClientState()
            self._clients[client] = state
        elif (
            state.clicks
            and timestamp - state.last_seen > self.idle_timeout_s
        ):
            self._complete(client, state)
        model, _version = self.ref.get()
        stale = state.cursor is None or state.model is not model
        state.clicks.append(url)
        state.timestamps.append(timestamp)
        state.last_seen = timestamp
        if timestamp > self._clock:
            self._clock = timestamp
        self.observed_clicks += 1
        state.memo = None  # the cursor is about to move
        if stale:
            # Rebuilds from the trimmed context, which already includes
            # this click.
            self._sync_cursor(state, model)
        else:
            state.cursor.advance(url)
        if len(state.clicks) >= self.max_session_clicks:
            self._complete(client, state)
        return len(state.clicks)

    def predict(
        self,
        client: str,
        *,
        threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
        limit: int | None = None,
    ) -> tuple[list[Prediction], int]:
        """Prefetch candidates for ``client`` and the model version used.

        Exactly one published model answers the whole request (RCU): the
        snapshot is taken once, and the cursor is synced to it before
        predicting.  Serving never sets usage flags — those belong to the
        offline Figure-2 studies.

        Repeated asks for the same cursor position are memoised per
        client: the memo is dropped on every ``observe`` (the cursor
        moved) and on every model-generation flip, so a hit is always
        byte-identical to a recompute.
        """
        model, version = self.ref.get()
        state = self._clients.get(client)
        if state is None or not state.clicks:
            return [], version
        memo = state.memo
        if memo is not None and memo[0] == threshold and memo[1] == limit:
            if (
                memo[2] == version
                and state.model is model
                and memo[3] == model._mutations
            ):
                self.predict_cache_hits += 1
                return memo[4], version
        self.predict_cache_misses += 1
        cursor = self._sync_cursor(state, model)
        predictions = model.predict_cursor(
            cursor, threshold=threshold, mark_used=False
        )
        if limit is not None and len(predictions) > limit:
            predictions = predictions[:limit]
        state.memo = (threshold, limit, version, model._mutations, predictions)
        return predictions, version

    # -- expiry --------------------------------------------------------------

    def expire_idle(self, now: float | None = None) -> int:
        """Complete every session idle for longer than the timeout.

        ``now`` defaults to the latest observed timestamp, so replayed
        traces expire in trace time and a live server can pass
        ``time.time()``.  Returns the number of sessions completed; the
        sessions themselves wait in :meth:`drain_completed`.
        """
        if now is None:
            now = self._clock
        elif now > self._clock:
            self._clock = now
        completed = 0
        for client in list(self._clients):
            state = self._clients[client]
            if now - state.last_seen > self.idle_timeout_s:
                if state.clicks:
                    self._complete(client, state)
                    completed += 1
                del self._clients[client]
        return completed

    def expire_all(self) -> int:
        """Complete every open session (shutdown path)."""
        completed = 0
        for client in list(self._clients):
            state = self._clients.pop(client)
            if state.clicks:
                self._complete(client, state)
                completed += 1
        return completed

    def drain_completed(self) -> list[Session]:
        """Hand over (and forget) every session completed so far."""
        sessions = self._completed
        self._completed = []
        return sessions
