"""A minimal circuit breaker for the serving layer's rebuild path.

The breaker wraps an operation that can fail repeatedly (the read-copy-
update model rebuild) and converts a failure streak into a cooling-off
period during which callers skip the operation and keep serving the
last-good state, instead of burning a worker thread per tick on a rebuild
that keeps dying.

States (the classic three)::

            failure_threshold consecutive failures
    CLOSED ───────────────────────────────────────▶ OPEN
      ▲                                              │
      │ trial succeeds                  cooldown_s   │
      │                                  elapsed     │
      └──────────────── HALF-OPEN ◀──────────────────┘
                         │    ▲
                         └────┘  trial fails → OPEN again

The clock is injectable so tests drive transitions without sleeping, and
all state changes happen inside :meth:`allow` / :meth:`record_success` /
:meth:`record_failure` — the caller owns the operation itself.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-streak gate with cooldown and a single half-open trial.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown_s:
        Seconds the breaker stays open before offering one trial.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False
        self.opened_total = 0
        self.skipped_total = 0

    @property
    def state(self) -> str:
        """Current state; an elapsed cooldown reads as half-open."""
        if self._state == OPEN and self._cooldown_elapsed():
            return HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def _cooldown_elapsed(self) -> bool:
        return self._clock() - self._opened_at >= self.cooldown_s

    def allow(self) -> bool:
        """May the protected operation run now?

        Closed: always.  Open: only once the cooldown has elapsed, and
        then exactly one trial at a time (half-open); further calls are
        refused until the trial reports success or failure.
        """
        if self._state == CLOSED:
            return True
        if self._trial_in_flight or not self._cooldown_elapsed():
            self.skipped_total += 1
            return False
        self._trial_in_flight = True
        return True

    def record_success(self) -> None:
        """The protected operation succeeded: close fully."""
        self._state = CLOSED
        self._consecutive_failures = 0
        self._trial_in_flight = False

    def record_failure(self) -> None:
        """The protected operation failed: count, and open on a streak."""
        self._consecutive_failures += 1
        was_trial = self._trial_in_flight
        self._trial_in_flight = False
        if was_trial or self._consecutive_failures >= self.failure_threshold:
            if self._state != OPEN or was_trial:
                self.opened_total += 1
            self._state = OPEN
            self._opened_at = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures})"
        )
