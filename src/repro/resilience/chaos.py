"""Seeded chaos runs: every fault armed, zero predictions lost.

``repro chaos`` is the executable proof of the resilience story.  One run
(:func:`run_chaos`) drives three phases from a single seed:

**Serving phase** — a live :class:`~repro.serve.server.PrefetchServer` is
booted against a *corrupt* snapshot file (exercising boot quarantine)
with a write-ahead report journal enabled, then load-generator traffic
replays against it while a :class:`~repro.resilience.FaultPlan` arms
every serving-side injection site: slow handlers overrun the request
deadline and drive load shedding, clients stall and send malformed
frames, snapshot writes tear and raise, model rebuilds raise and stall
until the circuit breaker opens, journal appends fail and tear their
frames mid-write, and an fsync stalls.  A scripted admin schedule walks
the breaker through open → skipped → half-open → closed, and a second
traffic burst proves the server recovered.  The acceptance bar: **zero
failed requests** — every injected fault is absorbed by a retry, a
503-with-Retry-After the client honours, or a last-good fallback — and
after shutdown the journal holds **zero unsnapshotted reports**.

**Crash phase** — a real ``repro serve`` subprocess (journal enabled) is
SIGKILLed mid-traffic while a load pump records every acknowledged
report in a ledger.  The journal on disk must contain every ledger entry
(**zero lost acknowledged reports**), a restarted subprocess must replay
them on boot, and a SIGTERM must shut it down gracefully with a final
snapshot that covers the whole journal.

**Parallel phase** — a sharded replay runs with worker crashes *and*
hangs injected on every shard's first two dispatches, and its merged
result is compared field-by-field against a fault-free serial run.  The
bar: **bit-identical** (the supervised-retry contract of
:mod:`repro.parallel.engine`).

The report (written to ``benchmarks/results/BENCH_chaos.json`` by the CI
smoke job) records the per-site fire counts, the recovery counters of
every subsystem, and the per-phase verdicts folded into one ``ok``.
Everything is deterministic in the seed except wall-clock durations.
"""

from __future__ import annotations

import asyncio
import dataclasses
import glob
import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro import params
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.parallel.engine import ParallelPrefetchSimulator
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPlan, injected
from repro.serve.loadgen import _build_events, _replay
from repro.serve.snapshot import restore_snapshot, restore_snapshot_state
from repro.serve.wal import read_journal
from repro.sim.config import SimulationConfig
from repro.sim.engine import PrefetchSimulator
from repro.sim.latency import LatencyModel
from repro.sim.metrics import SimulationResult
from repro.synth.generator import generate_trace
from repro.trace.dataset import Trace

#: Serving-phase timing knobs, sized so every fault window resolves in a
#: few hundred milliseconds and the whole run stays CI-friendly.  The
#: client's 503 patience (retry budget x Retry-After) deliberately
#: exceeds the longest degraded window (a slow handler holding its slot
#: until the request deadline), so shed requests always land eventually.
_REQUEST_TIMEOUT_S = 0.4
_SLOW_REQUEST_S = 1.0
_MAX_INFLIGHT = 3
_RETRY_AFTER_S = 0.1
_CLIENT_RETRY_503 = 20
_REBUILD_TIMEOUT_S = 1.0
_REBUILD_STALL_S = 1.5
_BREAKER_COOLDOWN_S = 0.8


def _serving_plan(seed: int, *, events_per_burst: int) -> FaultPlan:
    """Every serving-side site armed, each with a finite firing window."""
    return (
        FaultPlan(seed)
        # First two dispatches stall past the request deadline: the 503
        # deadline path, and (slots held) the load-shedding path.
        .arm("serve.slow_request", times=2, delay_s=_SLOW_REQUEST_S)
        # First two page views: a delayed client and two malformed frames.
        .arm("client.slow_report", times=2, delay_s=0.1)
        .arm("client.corrupt_report", times=2)
        # First snapshot write: torn on attempt 1, OSError on attempt 2,
        # clean on attempt 3 — inside one snapshot_once retry budget.
        .arm("snapshot.torn_write", times=1)
        .arm("snapshot.io_error", after=1, times=1)
        # First rebuild raises, second stalls past the rebuild deadline:
        # two consecutive failures trip the breaker.
        .arm("rebuild.exception", times=1)
        .arm("rebuild.stall", after=1, times=1, delay_s=_REBUILD_STALL_S)
        # Journal appends 6-7 are refused (503, client retries), and one
        # append early in burst 2 tears mid-frame — past every burst-1
        # append plus the admin snapshots' carry records, so the damaged
        # segment survives until shutdown compaction and a mid-run scan
        # can observe the truncated tail.
        .arm("wal.write_error", after=5, times=2)
        .arm("wal.torn_tail", after=events_per_burst + 6, times=1)
        .arm("wal.fsync_stall", times=1, delay_s=0.2)
    )


def _parallel_plan(seed: int) -> FaultPlan:
    """Every shard crashes on dispatch 1 and hangs on dispatch 2."""
    return (
        FaultPlan(seed)
        .arm("parallel.worker_crash", times=1)
        .arm("parallel.worker_hang", after=1, times=1, delay_s=1.0)
    )


def _http(host: str, port: int, method: str, path: str) -> tuple[int, dict]:
    """One admin/health request; JSON-decoded body (``{}`` if not JSON)."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request(method, path)
        response = connection.getresponse()
        body = response.read()
    finally:
        connection.close()
    try:
        return response.status, json.loads(body)
    except ValueError:
        return response.status, {}


def _run_serving_phase(
    seed: int,
    *,
    profile: str,
    scale: float,
    days: int,
    train_days: int,
    connections: int,
    max_events: int | None,
) -> dict:
    from repro.serve.server import PrefetchServer, ServerThread

    trace = generate_trace(
        profile, days=train_days + days, seed=seed, scale=scale
    )
    split = trace.split(train_days=train_days, test_days=days)
    replay = Trace(
        [r for r in trace.records if trace.day_of(r.timestamp) >= train_days],
        name=trace.name,
    )
    events = _build_events(
        replay,
        mode="combined",
        threshold=params.PREDICTION_PROBABILITY_THRESHOLD,
        max_events=max_events,
    )

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
        snapshot_path = os.path.join(tmpdir, "model.json")
        wal_dir = os.path.join(tmpdir, "wal")
        # Plant a corrupt snapshot so boot exercises the quarantine path.
        with open(snapshot_path, "w", encoding="utf-8") as handle:
            handle.write('{"model": "torn mid-wr')
        model = restore_snapshot(snapshot_path)
        boot_quarantined = model is None and bool(
            glob.glob(f"{snapshot_path}.corrupt-*")
        )

        server = PrefetchServer(
            bootstrap_sessions=list(split.train_sessions),
            snapshot_path=snapshot_path,
            request_timeout_s=_REQUEST_TIMEOUT_S,
            max_inflight=_MAX_INFLIGHT,
            retry_after_s=_RETRY_AFTER_S,
            housekeeping_interval_s=0.05,
            wal_dir=wal_dir,
            wal_fsync="interval",
            wal_fsync_interval_s=0.2,
            wal_segment_max_bytes=16 * 1024,
        )
        server.updater.rebuild_timeout_s = _REBUILD_TIMEOUT_S
        server.updater.breaker = CircuitBreaker(
            failure_threshold=2, cooldown_s=_BREAKER_COOLDOWN_S
        )
        server.snapshots.backoff_s = 0.01

        plan = _serving_plan(seed, events_per_burst=len(events))
        with injected(plan):
            handle = ServerThread(server).start()
            try:
                host, port = handle.host, handle.port
                burst = lambda: asyncio.run(  # noqa: E731 - two identical calls
                    _replay(
                        host,
                        port,
                        events,
                        connections=connections,
                        refresh_mid_run=False,
                        request_timeout_s=30.0,
                        retry_503=_CLIENT_RETRY_503,
                    )
                )
                # Burst 1: slow handlers + client faults fire in here.
                stats_1, _, _ = burst()

                # Admin schedule: rebuild raises (failure 1), rebuild
                # stalls (failure 2 -> breaker opens), a refresh is
                # skipped on the open breaker, the snapshot write tears
                # and raises through its retries, then the cooldown
                # elapses and the half-open trial closes the breaker.
                admin = []
                for path in ("/admin/refresh", "/admin/refresh",
                             "/admin/refresh", "/admin/snapshot"):
                    admin.append(_http(host, port, "POST", path)[0])
                _, healthz_degraded = _http(host, port, "GET", "/healthz")
                # Past the breaker cooldown, and past the stalled rebuild
                # still finishing in its background thread.
                time.sleep(max(_BREAKER_COOLDOWN_S, _REBUILD_STALL_S) + 0.2)
                admin.append(_http(host, port, "POST", "/admin/refresh")[0])
                admin.append(_http(host, port, "POST", "/admin/snapshot")[0])

                # Burst 2: every fault window is spent; clean traffic
                # proves the server recovered, not merely survived.
                stats_2, _, _ = burst()
                _, healthz_final = _http(host, port, "GET", "/healthz")
                # The torn append sealed its damaged segment during burst
                # 2 (after the admin snapshots compacted), so a scan of
                # the live journal sees the truncated tail — and nothing
                # worse.
                mid_scan = read_journal(wal_dir)
            finally:
                handle.stop()

        # After the graceful stop, everything journalled is covered by
        # the final snapshot: replaying past its boundary must find zero
        # report records.
        _model, final_boundary = restore_snapshot_state(snapshot_path)
        residue = read_journal(wal_dir, boundary=final_boundary)
        residue_reports = sum(
            1 for record in residue.records if record.get("k") == "r"
        )

        stats = list(stats_1) + list(stats_2)
        updater, snapshots = server.updater, server.snapshots
        return {
            "boot_quarantined": boot_quarantined,
            "events_per_burst": len(events),
            "requests_total": sum(len(s.latencies) for s in stats),
            "failed_requests": sum(s.failed for s in stats),
            "retried_503": sum(s.retried_503 for s in stats),
            "reconnects": sum(s.reconnects for s in stats),
            "injected_client_faults": sum(s.injected_faults for s in stats),
            "prediction_urls_returned": sum(s.predictions for s in stats),
            "non_empty_prediction_responses": sum(s.non_empty for s in stats),
            "admin_statuses": admin,
            "healthz_degraded": healthz_degraded,
            "healthz_final": healthz_final,
            "fault_fires": plan.fires,
            "armed_never_fired": sorted(
                set(plan.armed_sites) - set(plan.fires)
            ),
            "server": {
                "shed_total": server.shed_total,
                "request_timeouts_total": server.request_timeouts_total,
                "refresh_failures_total": updater.refresh_failures_total,
                "refresh_timeouts_total": updater.refresh_timeouts_total,
                "refresh_skipped_total": updater.refresh_skipped_total,
                "breaker_opened_total": updater.breaker.opened_total,
                "breaker_state_final": updater.breaker.state,
                "snapshot_total": snapshots.snapshot_total,
                "snapshot_retries_total": snapshots.snapshot_retries_total,
                "snapshot_failures_total": snapshots.snapshot_failures_total,
            },
            "wal": {
                "appended_records_total": server.wal.appended_records_total,
                "rotations_total": server.wal.rotations_total,
                "write_errors_total": server.wal.write_errors_total,
                "rejected_reports_total": server.wal_rejected_reports_total,
                "compacted_segments_total": (
                    server.wal.compacted_segments_total
                ),
                "fsync_total": server.wal.fsync_total,
                "truncated_tails_observed": mid_scan.truncated_tails,
                "corrupt_frames_observed": mid_scan.corrupt_frames,
                "final_snapshot_boundary": final_boundary,
                "post_stop_unsnapshotted_reports": residue_reports,
            },
        }


def _spawn_serve(
    argv: list[str], *, timeout_s: float = 120.0
) -> tuple[subprocess.Popen, int, list[str]]:
    """Boot a real ``repro serve`` subprocess; returns (proc, port, log).

    The subprocess runs unbuffered with stderr merged into stdout; a
    drain thread collects every line into ``log`` (so the pipe never
    fills) and the call returns once the server announces its bound
    port.
    """
    src_dir = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    log: list[str] = []
    listening = threading.Event()
    port_box: list[int] = []

    def drain() -> None:
        for line in proc.stdout:
            log.append(line.rstrip("\n"))
            marker = "listening on http://"
            if marker in line and not listening.is_set():
                port_box.append(int(line.rsplit(":", 1)[1]))
                listening.set()
        listening.set()  # EOF: unblock the waiter on early death

    threading.Thread(target=drain, daemon=True).start()
    if not listening.wait(timeout_s) or not port_box:
        proc.kill()
        proc.wait()
        raise RuntimeError(
            "repro serve subprocess never came up:\n" + "\n".join(log)
        )
    return proc, port_box[0], log


def _run_crash_phase(
    seed: int,
    *,
    profile: str,
    scale: float,
    train_days: int,
    kill_after_acks: int = 40,
) -> dict:
    """SIGKILL a journalling server mid-traffic; prove zero acked loss.

    A pump thread posts reports over a live connection and records every
    acknowledged ``(client, url, ts)`` in a ledger.  Once the ledger
    holds ``kill_after_acks`` entries the server is SIGKILLed — no
    shutdown hook runs, exactly like a crash.  The journal on disk must
    contain every ledger entry (write-ahead ordering: journalled before
    acked), a restarted server must replay them on boot, and SIGTERM
    must stop it gracefully with a final snapshot whose boundary covers
    the whole journal.
    """
    with tempfile.TemporaryDirectory(prefix="repro-chaos-crash-") as tmpdir:
        wal_dir = os.path.join(tmpdir, "wal")
        snapshot_path = os.path.join(tmpdir, "model.json")
        argv = [
            "serve",
            "--host", "127.0.0.1",
            "--port", "0",
            "--profile", profile,
            "--train-days", str(train_days),
            "--seed", str(seed),
            "--scale", str(scale),
            "--snapshot", snapshot_path,
            "--wal-dir", wal_dir,
            "--wal-fsync", "interval",
            "--wal-segment-bytes", "16384",
        ]
        proc, port, _log = _spawn_serve(argv)

        ledger: list[tuple[str, str, float]] = []
        pump_errors: list[str] = []
        enough_acks = threading.Event()

        def pump() -> None:
            connection = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=5
            )
            index = 0
            try:
                while True:
                    client = f"crash-{index % 8}"
                    url = f"/page/{index}"
                    ts = 1_000_000.0 + index * 5.0
                    body = json.dumps(
                        {"client": client, "url": url, "ts": ts}
                    )
                    connection.request(
                        "POST",
                        "/report",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    response.read()
                    if response.status == 200:
                        ledger.append((client, url, ts))
                        if len(ledger) >= kill_after_acks:
                            enough_acks.set()
                    index += 1
            except (OSError, http.client.HTTPException) as exc:
                # The SIGKILL severs the connection mid-traffic; any
                # request in flight was never acknowledged and so is
                # allowed (not required) to survive.
                pump_errors.append(type(exc).__name__)
            finally:
                enough_acks.set()
                connection.close()

        pump_thread = threading.Thread(target=pump, daemon=True)
        pump_thread.start()
        enough_acks.wait(60.0)
        proc.kill()  # SIGKILL: no flush, no handlers, no goodbye
        proc.wait()
        pump_thread.join(10.0)

        # The ledger is the client's truth; the journal is the disk's.
        recovered = read_journal(wal_dir)
        journalled = {
            (record["c"], record["u"], record["t"])
            for record in recovered.records
            if record.get("k") == "r"
        }
        lost = [entry for entry in ledger if entry not in journalled]

        # Restart the same command line: boot recovery must replay the
        # journal, and SIGTERM must produce a graceful, covering exit.
        proc2, port2, _log2 = _spawn_serve(argv)
        _status, metrics = _http_text(
            "127.0.0.1", port2, "GET", "/metrics"
        )
        replayed = _metric_value(
            metrics, "repro_wal_recovery_records_replayed"
        )
        proc2.send_signal(signal.SIGTERM)
        graceful_exit = proc2.wait(timeout=60)

        _model, boundary = restore_snapshot_state(snapshot_path)
        residue = read_journal(wal_dir, boundary=boundary)
        residue_reports = sum(
            1 for record in residue.records if record.get("k") == "r"
        )

        return {
            "acked_reports": len(ledger),
            "pump_disconnect": pump_errors[0] if pump_errors else None,
            "journal_reports_on_disk": len(journalled),
            "lost_acked_reports": len(lost),
            "restart_records_replayed": replayed,
            "graceful_exit_code": graceful_exit,
            "final_snapshot_boundary": boundary,
            "post_shutdown_unsnapshotted_reports": residue_reports,
            "zero_loss": bool(ledger) and not lost,
        }


def _http_text(
    host: str, port: int, method: str, path: str
) -> tuple[int, str]:
    """One request with the raw body as text (for /metrics)."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request(method, path)
        response = connection.getresponse()
        body = response.read()
    finally:
        connection.close()
    return response.status, body.decode()


def _metric_value(metrics: str, name: str) -> int | None:
    for line in metrics.splitlines():
        if line.startswith(name + " "):
            return int(float(line.split()[1]))
    return None


def _run_parallel_phase(seed: int, *, profile: str, scale: float) -> dict:
    trace = generate_trace(profile, days=2, seed=seed, scale=min(scale, 0.2))
    split = trace.split(train_days=1)
    popularity = PopularityTable.from_requests(split.train_requests)
    model = PopularityBasedPPM(popularity).fit(split.train_sessions)
    latency = LatencyModel.fit_requests(split.train_requests)
    url_sizes = trace.url_size_table()
    client_kinds = trace.classify_clients()

    def replay(simulator_cls, workers: int) -> SimulationResult:
        simulator = simulator_cls(
            model,
            url_sizes,
            latency,
            SimulationConfig.for_model("pb", workers=workers),
            popularity=popularity,
        )
        return simulator.run(split.test_requests, client_kinds=client_kinds)

    serial = replay(PrefetchSimulator, 1)

    engine = ParallelPrefetchSimulator(
        model,
        url_sizes,
        latency,
        SimulationConfig.for_model("pb", workers=3),
        popularity=popularity,
    )
    engine.shard_timeout_s = 0.5
    engine.shard_retries = 2
    engine.retry_backoff_s = 0.01
    with injected(_parallel_plan(seed)):
        parallel = engine.run(split.test_requests, client_kinds=client_kinds)

    mismatched = [
        field.name
        for field in dataclasses.fields(SimulationResult)
        if field.name != "labels"
        and getattr(serial, field.name) != getattr(parallel, field.name)
    ]
    recovery = engine.recovery
    return {
        "test_requests": len(split.test_requests),
        "bit_identical": not mismatched,
        "mismatched_fields": mismatched,
        "shard_crashes": recovery.shard_crashes if recovery else 0,
        "shard_hangs": recovery.shard_hangs if recovery else 0,
        "shard_retries": recovery.shard_retries if recovery else 0,
        "retry_rounds": recovery.retry_rounds if recovery else 0,
        "in_process_fallbacks": (
            recovery.in_process_fallbacks if recovery else 0
        ),
    }


def run_chaos(
    seed: int = 7,
    *,
    profile: str = "nasa-like",
    scale: float = 0.3,
    days: int = 1,
    train_days: int = 1,
    connections: int = 6,
    max_events: int | None = 400,
    out: str | None = None,
) -> dict:
    """One seeded chaos run; returns (and optionally writes) the report.

    The report's ``ok`` is the whole acceptance bar in one bool: the
    serving phase finished with zero failed requests and real predictions
    while every armed fault fired, the breaker closed again, the journal
    absorbed its injected faults and ended fully covered by the final
    snapshot, the SIGKILL crash drill lost zero acknowledged reports and
    restarted + shut down cleanly, and the fault-injected parallel replay
    merged bit-identical to the fault-free serial run.
    """
    serving = _run_serving_phase(
        seed,
        profile=profile,
        scale=scale,
        days=days,
        train_days=train_days,
        connections=connections,
        max_events=max_events,
    )
    crash = _run_crash_phase(
        seed, profile=profile, scale=scale, train_days=train_days
    )
    parallel = _run_parallel_phase(seed, profile=profile, scale=scale)
    report = {
        "config": {
            "seed": seed,
            "profile": profile,
            "scale": scale,
            "days": days,
            "train_days": train_days,
            "connections": connections,
            "max_events": max_events,
        },
        "serving": serving,
        "crash": crash,
        "parallel": parallel,
        "ok": (
            serving["failed_requests"] == 0
            and serving["prediction_urls_returned"] > 0
            and serving["boot_quarantined"]
            and not serving["armed_never_fired"]
            and serving["server"]["breaker_state_final"] == "closed"
            and serving["wal"]["write_errors_total"] >= 1
            and serving["wal"]["truncated_tails_observed"] >= 1
            and serving["wal"]["post_stop_unsnapshotted_reports"] == 0
            and crash["zero_loss"]
            and crash["graceful_exit_code"] == 0
            and crash["post_shutdown_unsnapshotted_reports"] == 0
            and parallel["bit_identical"]
            and parallel["shard_crashes"] > 0
            and parallel["shard_hangs"] > 0
        ),
    }
    if out:
        directory = os.path.dirname(os.path.abspath(out))
        os.makedirs(directory, exist_ok=True)
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def format_chaos_report(report: dict) -> str:
    """A compact human-readable rendering of a chaos report."""
    serving = report["serving"]
    crash = report["crash"]
    parallel = report["parallel"]
    fires = ", ".join(
        f"{site} x{count}" for site, count in sorted(
            serving["fault_fires"].items()
        )
    ) or "none"
    lines = [
        f"verdict            {'OK' if report['ok'] else 'FAILED'}",
        f"requests           {serving['requests_total']}"
        f"  (failed {serving['failed_requests']})",
        f"prediction urls    {serving['prediction_urls_returned']}",
        f"faults fired       {fires}",
        f"absorbed by        503 retries {serving['retried_503']},"
        f" reconnects {serving['reconnects']},"
        f" shed {serving['server']['shed_total']},"
        f" snapshot retries {serving['server']['snapshot_retries_total']},"
        f" rebuild failures {serving['server']['refresh_failures_total']}"
        f" (skipped {serving['server']['refresh_skipped_total']}"
        f" while breaker open)",
        f"boot quarantine    {serving['boot_quarantined']}"
        f"  breaker final {serving['server']['breaker_state_final']}",
        f"journal            {serving['wal']['appended_records_total']}"
        f" records, write errors {serving['wal']['write_errors_total']},"
        f" torn tails {serving['wal']['truncated_tails_observed']},"
        f" unsnapshotted after stop"
        f" {serving['wal']['post_stop_unsnapshotted_reports']}",
        f"crash drill        {crash['acked_reports']} acked, SIGKILL,"
        f" lost {crash['lost_acked_reports']},"
        f" replayed {crash['restart_records_replayed']}"
        f" on restart, graceful exit {crash['graceful_exit_code']}",
        f"parallel replay    crashes {parallel['shard_crashes']},"
        f" hangs {parallel['shard_hangs']},"
        f" retries {parallel['shard_retries']}"
        f" -> bit-identical {parallel['bit_identical']}",
    ]
    if serving["armed_never_fired"]:
        lines.append(
            "never fired        " + ", ".join(serving["armed_never_fired"])
        )
    return "\n".join(lines)
