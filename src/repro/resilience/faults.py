"""Deterministic fault injection: named sites armed by a seeded plan.

Production subsystems earn their recovery story only when failures can be
*reproduced*: a crash that happens on the third snapshot write of seed 7
must happen on the third snapshot write of seed 7 every time.  This module
provides that determinism:

* :data:`INJECTION_SITES` names every point in the library where a fault
  can be injected (the table in DESIGN.md Section "Failure model &
  recovery" mirrors it).
* :class:`FaultPlan` arms a subset of those sites with deterministic
  firing windows (``after`` / ``times``) and optionally a seeded
  probability; it is picklable, so the parallel engine ships it into
  worker processes.
* :func:`fire` is the zero-overhead hook the instrumented code calls.
  When no plan is installed (``params.FAULT_PLAN is None`` — the default,
  and the only state production code ever sees) it is a single attribute
  load and ``None`` check; tests and the ``repro chaos`` harness install a
  plan with :func:`install` or the :func:`injected` context manager.

The *site* decides what firing means — raising ``OSError``, sleeping
``delay_s``, truncating a payload — so this module stays free of any
knowledge about the subsystems it breaks.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro import params
from repro.errors import ResilienceError

#: Every named injection point, with what firing does there.  ``arm``
#: validates against this registry so a typo in a chaos schedule is a
#: loud error instead of a silently-never-firing fault.
INJECTION_SITES: dict[str, str] = {
    "snapshot.io_error": (
        "snapshot write raises OSError before the temp file is renamed"
    ),
    "snapshot.torn_write": (
        "snapshot temp file is truncated mid-write (torn write); the "
        "verify-before-rename step must catch it"
    ),
    "rebuild.exception": (
        "model rebuild raises ModelError before touching the rolling "
        "window (the refresh requeues the day and trips the breaker)"
    ),
    "rebuild.stall": (
        "model rebuild sleeps delay_s, exceeding the rebuild deadline"
    ),
    "parallel.worker_crash": (
        "shard worker raises WorkerCrash instead of replaying its shard"
    ),
    "parallel.worker_hang": (
        "shard worker sleeps delay_s before replaying, exceeding the "
        "per-shard deadline"
    ),
    "serve.slow_request": (
        "request dispatch sleeps delay_s, exceeding the request timeout "
        "and holding an in-flight slot (drives load shedding)"
    ),
    "client.slow_report": (
        "load-generator connection sleeps delay_s before sending a report"
    ),
    "client.corrupt_report": (
        "load generator sends a malformed report; the server must answer "
        "400 and keep the connection usable"
    ),
    "wal.write_error": (
        "journal append raises WalError before any byte is written; the "
        "report is refused (503) against an intact journal"
    ),
    "wal.torn_tail": (
        "journal append writes half a frame then fails — a real torn "
        "tail on disk; the journal seals the damaged segment and rotates, "
        "and recovery must truncate at the tear"
    ),
    "wal.fsync_stall": (
        "journal fsync sleeps delay_s before syncing (slow disk)"
    ),
}


@dataclass(frozen=True)
class FaultSpec:
    """One armed injection site (what :func:`fire` returns when it fires)."""

    site: str
    #: Fire on this many checks (None = every check once past ``after``).
    times: int | None = 1
    #: Skip the first ``after`` checks of the site.
    after: int = 0
    #: Chance a check inside the firing window actually fires (seeded).
    probability: float = 1.0
    #: Sleep length for hang / stall / slow sites.
    delay_s: float = 0.0


@dataclass
class _SiteState:
    spec: FaultSpec
    checks: int = 0
    fires: int = 0
    rng: random.Random = field(default_factory=random.Random)


class FaultPlan:
    """A seeded, deterministic schedule of faults over named sites.

    Decisions depend only on the seed, the site name and the order of
    checks at that site — never on wall-clock time or global RNG state —
    so a failing chaos run replays exactly.  Instances are picklable and
    independent per process: the parallel engine ships the plan to shard
    workers together with a per-attempt ``offset`` so a fault armed with
    ``times=2`` fires on the first two *dispatches* of a shard, not twice
    in whichever process happens to check first.

    >>> plan = FaultPlan(seed=7).arm("snapshot.io_error", times=2)
    >>> [bool(plan.should_fire("snapshot.io_error")) for _ in range(3)]
    [True, True, False]
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._sites: dict[str, _SiteState] = {}

    def arm(
        self,
        site: str,
        *,
        times: int | None = 1,
        after: int = 0,
        probability: float = 1.0,
        delay_s: float = 0.0,
    ) -> "FaultPlan":
        """Arm ``site``; returns self so plans read as chained arms."""
        if site not in INJECTION_SITES:
            known = ", ".join(sorted(INJECTION_SITES))
            raise ResilienceError(
                f"unknown injection site {site!r}; known sites: {known}"
            )
        if times is not None and times < 1:
            raise ResilienceError(f"times must be >= 1 or None, got {times}")
        if after < 0:
            raise ResilienceError(f"after must be >= 0, got {after}")
        if not 0.0 < probability <= 1.0:
            raise ResilienceError(
                f"probability must be in (0, 1], got {probability}"
            )
        if delay_s < 0:
            raise ResilienceError(f"delay_s must be >= 0, got {delay_s}")
        spec = FaultSpec(
            site=site,
            times=times,
            after=after,
            probability=probability,
            delay_s=delay_s,
        )
        # Seeding with a string hashes via SHA-512, so the stream is
        # deterministic across processes regardless of PYTHONHASHSEED.
        rng = random.Random(f"{self.seed}:{site}")
        self._sites[site] = _SiteState(spec=spec, rng=rng)
        return self

    @property
    def armed_sites(self) -> list[str]:
        return sorted(self._sites)

    @property
    def fires(self) -> dict[str, int]:
        """Fires observed per site *in this process*."""
        return {
            site: state.fires
            for site, state in sorted(self._sites.items())
            if state.fires
        }

    def should_fire(self, site: str, *, offset: int = 0) -> FaultSpec | None:
        """One deterministic check of ``site``.

        ``offset`` shifts the check index without consuming local state —
        the parallel engine passes the dispatch attempt number so a
        retried shard advances through the firing window even though each
        worker process starts with fresh counters.
        """
        state = self._sites.get(site)
        if state is None:
            return None
        index = state.checks + offset
        state.checks += 1
        spec = state.spec
        if index < spec.after:
            return None
        if spec.times is not None and index >= spec.after + spec.times:
            return None
        if spec.probability < 1.0 and state.rng.random() >= spec.probability:
            return None
        state.fires += 1
        return spec

    def __getstate__(self) -> dict:
        return {"seed": self.seed, "sites": dict(self._sites)}

    def __setstate__(self, state: dict) -> None:
        self.seed = state["seed"]
        self._sites = dict(state["sites"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, armed={self.armed_sites})"


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` as the process-wide fault plan (None disarms)."""
    params.FAULT_PLAN = plan


def clear() -> None:
    """Disarm fault injection for this process."""
    params.FAULT_PLAN = None


def active_plan() -> FaultPlan | None:
    return params.FAULT_PLAN


def fire(site: str, *, offset: int = 0) -> FaultSpec | None:
    """The hook instrumented code calls at an injection site.

    With no plan installed this is one global read and a ``None`` check —
    the zero-overhead-when-disabled contract that lets the hooks live
    permanently on production paths.
    """
    plan = params.FAULT_PLAN
    if plan is None:
        return None
    return plan.should_fire(site, offset=offset)


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a with-block (test helper)."""
    previous = params.FAULT_PLAN
    params.FAULT_PLAN = plan
    try:
        yield plan
    finally:
        params.FAULT_PLAN = previous
