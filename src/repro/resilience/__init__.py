"""Deterministic fault injection and supervised recovery.

Three pieces:

* :mod:`repro.resilience.faults` — the seeded :class:`FaultPlan` and the
  zero-overhead :func:`fire` hook that arms named injection points across
  the snapshot, rebuild, parallel-replay and loadgen paths.
* :mod:`repro.resilience.breaker` — the :class:`CircuitBreaker` the
  serving layer wraps around model rebuilds.
* :mod:`repro.resilience.chaos` — the seeded chaos harness behind
  ``repro chaos``: a live server under loadgen traffic with every fault
  type armed, plus a fault-injected parallel replay checked bit-identical
  against the fault-free run.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import (
    INJECTION_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear,
    fire,
    injected,
    install,
)

__all__ = [
    "CircuitBreaker",
    "FaultPlan",
    "FaultSpec",
    "INJECTION_SITES",
    "active_plan",
    "clear",
    "fire",
    "injected",
    "install",
]
