"""Byte-capacity LRU cache, the replacement policy of the paper's simulator.

Paper Section 2.2: *"The proxy is assumed to have a disk cache size of 16 GB
and a browser is assumed to have a cache of 10 MB.  The cache replacement
algorithm used in our simulator is LRU."*
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator


class LRUCache:
    """Least-recently-used cache bounded by total bytes.

    Objects are keyed by URL; storing an object evicts least-recently-used
    entries until it fits.  An object larger than the whole capacity is not
    cached at all (the paper's browser caches are far smaller than the
    biggest NASA files, so this case matters).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, int] = OrderedDict()
        self._used_bytes = 0
        self.hit_count = 0
        self.miss_count = 0
        self.eviction_count = 0

    # -- lookups ------------------------------------------------------------

    def __contains__(self, url: str) -> bool:
        """Membership test *without* touching recency or hit statistics."""
        return url in self._entries

    def access(self, url: str) -> bool:
        """Demand access: returns hit/miss and refreshes recency on hit."""
        if url in self._entries:
            self._entries.move_to_end(url)
            self.hit_count += 1
            return True
        self.miss_count += 1
        return False

    def size_of(self, url: str) -> int | None:
        """Stored size of an object, or None when absent (no recency touch)."""
        return self._entries.get(url)

    # -- updates ----------------------------------------------------------------

    def store(self, url: str, size: int) -> list[str]:
        """Insert or refresh an object; returns the URLs evicted to make room.

        Storing an object already present updates its size and recency.
        Objects larger than the whole capacity are rejected *before* any
        eviction — residents are never sacrificed for an object that
        cannot fit.  If a stale smaller copy of the same URL is resident,
        the rejection evicts it (and reports it in the returned list), so
        the cache never serves an object it could not actually hold at
        its current size.
        """
        if size < 0:
            raise ValueError(f"negative object size: {size}")
        if size > self.capacity_bytes:
            if self.remove(url):
                self.eviction_count += 1
                return [url]
            return []
        evicted: list[str] = []
        if url in self._entries:
            self._used_bytes -= self._entries.pop(url)
        while self._used_bytes + size > self.capacity_bytes and self._entries:
            old_url, old_size = self._entries.popitem(last=False)
            self._used_bytes -= old_size
            self.eviction_count += 1
            evicted.append(old_url)
        self._entries[url] = size
        self._used_bytes += size
        return evicted

    def remove(self, url: str) -> bool:
        """Drop an object if present; True when something was removed."""
        size = self._entries.pop(url, None)
        if size is None:
            return False
        self._used_bytes -= size
        return True

    def clear(self) -> None:
        """Empty the cache (statistics are kept)."""
        self._entries.clear()
        self._used_bytes = 0

    # -- introspection ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently stored; invariant: never exceeds capacity."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        """URLs from least to most recently used."""
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"LRUCache(objects={len(self)}, used={self._used_bytes}/"
            f"{self.capacity_bytes} bytes)"
        )
