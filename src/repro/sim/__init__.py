"""Trace-driven prefetching simulator (paper Sections 2, 4 and 5).

* :mod:`repro.sim.cache` — byte-capacity LRU caches (browser and proxy);
* :mod:`repro.sim.latency` — the least-squares latency fit of Section 4.2;
* :mod:`repro.sim.config` — simulation parameters;
* :mod:`repro.sim.engine` — the replay engine, in per-client mode
  (Section 4) and server-to-proxy mode (Section 5);
* :mod:`repro.sim.metrics` — the result record with the paper's four
  metrics: hit ratio, latency reduction, space, traffic increment.
"""

from repro.sim.cache import LRUCache
from repro.sim.config import SimulationConfig
from repro.sim.latency import LatencyModel
from repro.sim.metrics import SimulationResult
from repro.sim.engine import PrefetchSimulator
from repro.sim.adaptive import AdaptivePolicy, AdaptivePrefetchSimulator
from repro.sim.events import EventKind, EventLog, SimulationEvent
from repro.sim.replacement import (
    FIFOCache,
    GDSFCache,
    LFUCache,
    POLICIES,
    make_cache,
)

__all__ = [
    "LRUCache",
    "SimulationConfig",
    "LatencyModel",
    "SimulationResult",
    "PrefetchSimulator",
    "AdaptivePolicy",
    "AdaptivePrefetchSimulator",
    "EventKind",
    "EventLog",
    "SimulationEvent",
    "FIFOCache",
    "GDSFCache",
    "LFUCache",
    "POLICIES",
    "make_cache",
]
