"""The least-squares latency model of paper Section 4.2.

*"We estimated connection times and data transferring times by using the
method presented in [Jin & Bestavros], where the connection time and the
data transferring time are obtained by applying a least squares fit to
measured latency in traces versus the size variations of documents."*

The model is ``latency(size) = connection_time + size / transfer_rate``;
fitting solves the ordinary least squares problem for the intercept
(connection time) and slope (seconds per byte).  Synthetic traces carry
per-request latencies, so the simulator fits the model from the training
days exactly as the paper does, never reading the generator's ground-truth
coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro import params
from repro.errors import SimulationError
from repro.trace.record import Request


@dataclass(frozen=True)
class LatencyModel:
    """Fitted access-latency model.

    Attributes
    ----------
    connection_time_s:
        Fixed per-request cost (TCP/connection setup), seconds.
    seconds_per_byte:
        Marginal transfer cost; the reciprocal is the transfer rate.
    """

    connection_time_s: float
    seconds_per_byte: float

    def __post_init__(self) -> None:
        if self.connection_time_s < 0 or self.seconds_per_byte < 0:
            raise SimulationError(
                "latency model coefficients must be non-negative: "
                f"a={self.connection_time_s}, b={self.seconds_per_byte}"
            )

    @property
    def transfer_rate_bps(self) -> float:
        """Estimated transfer rate, bytes per second (inf for zero slope)."""
        return float("inf") if self.seconds_per_byte == 0 else 1.0 / self.seconds_per_byte

    def estimate(self, size_bytes: int | float) -> float:
        """Predicted access latency for a document of the given size."""
        if size_bytes < 0:
            raise ValueError(f"negative size: {size_bytes}")
        return self.connection_time_s + self.seconds_per_byte * float(size_bytes)

    # -- fitting ------------------------------------------------------------

    @classmethod
    def fit(
        cls, sizes: Sequence[float], latencies: Sequence[float]
    ) -> "LatencyModel":
        """Ordinary least squares of latency against document size.

        Negative fitted coefficients (possible on pathological samples) are
        clamped to zero, keeping estimates physical.
        """
        if len(sizes) != len(latencies):
            raise ValueError("sizes and latencies must have equal length")
        if len(sizes) < 2:
            raise ValueError("need at least two observations to fit")
        x = np.asarray(sizes, dtype=np.float64)
        y = np.asarray(latencies, dtype=np.float64)
        design = np.column_stack([np.ones_like(x), x])
        coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
        intercept = float(max(0.0, coeffs[0]))
        slope = float(max(0.0, coeffs[1]))
        return cls(connection_time_s=intercept, seconds_per_byte=slope)

    @classmethod
    def fit_requests(cls, requests: Iterable[Request]) -> "LatencyModel":
        """Fit from page views that carry observed latencies.

        Falls back to the documented default coefficients when the trace
        has no latency column (the public NASA/UCB logs do not).
        """
        sizes: list[float] = []
        latencies: list[float] = []
        for request in requests:
            if request.latency is not None:
                sizes.append(float(request.total_bytes))
                latencies.append(float(request.latency))
        if len(sizes) < 2:
            return cls.default()
        return cls.fit(sizes, latencies)

    @classmethod
    def default(cls) -> "LatencyModel":
        """The documented default coefficients (see :mod:`repro.params`)."""
        return cls(
            connection_time_s=params.TRUE_CONNECTION_TIME_S,
            seconds_per_byte=1.0 / params.TRUE_TRANSFER_RATE_BPS,
        )

    def residuals(
        self, sizes: Sequence[float], latencies: Sequence[float]
    ) -> np.ndarray:
        """Fit residuals, for goodness-of-fit diagnostics in reports."""
        x = np.asarray(sizes, dtype=np.float64)
        y = np.asarray(latencies, dtype=np.float64)
        return y - (self.connection_time_s + self.seconds_per_byte * x)
