"""The trace-driven replay engine (paper Sections 2.2, 4 and 5).

Two topologies:

* **client mode** (Section 4): every client owns a cache (browser-sized,
  or proxy-sized when the client's request rate classifies it as a proxy);
  the server predicts from the client's current session context and pushes
  prefetches straight into that client's cache.
* **proxy mode** (Section 5): a set of clients shares one proxy.  Requests
  try the browser cache, then the proxy cache, then the server; the server
  pushes prefetches into the *proxy* cache.  Hits therefore come from three
  sources — browser, proxy-cached and proxy-prefetched documents — exactly
  the accounting of the paper's Figure 5.

Every run maintains *shadow* caches of identical capacity that receive only
demand fills, so the latency-reduction and hit-ratio deltas attribute
exactly what prefetching added on top of plain LRU caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.core.base import PPMModel
from repro.core.popularity import PopularityTable
from repro.core.prediction import PredictionCursor
from repro.errors import SimulationError
from repro.sim.replacement import CacheLike, make_cache
from repro.sim.config import SimulationConfig
from repro.sim.events import EventKind, EventLog, SimulationEvent
from repro.sim.latency import LatencyModel
from repro.sim.metrics import SimulationResult
from repro.trace.columnar import RequestBatch
from repro.trace.record import Request

#: What the engine accepts as a replay workload: materialised request
#: objects, or the columnar :class:`~repro.trace.columnar.RequestBatch`.
RequestStream = "Sequence[Request] | RequestBatch"


def request_sort_key(request: Request) -> tuple[float, str]:
    """The engine's deterministic replay order: (timestamp, client).

    Exposed so :mod:`repro.parallel` can reproduce the serial iteration
    order exactly when merging per-shard streams; Python's sort is stable,
    so requests with equal keys keep their input order (which sharding by
    client preserves, because equal keys always belong to one client).
    """
    return (request.timestamp, request.client)


def replay_rows(
    requests: "Sequence[Request] | RequestBatch",
) -> Iterator[tuple[str, str, float, int]]:
    """Yield ``(client, url, timestamp, total_bytes)`` in replay order.

    The single iteration point of both replay loops: a
    :class:`RequestBatch` streams its pre-sorted columns directly (no
    object materialisation, no sort), while request sequences are
    stable-sorted by :func:`request_sort_key` exactly as before.  Either
    source yields the identical row sequence for the same workload.
    """
    if isinstance(requests, RequestBatch):
        return requests.iter_rows()
    return (
        (r.client, r.url, r.timestamp, r.total_bytes)
        for r in sorted(requests, key=request_sort_key)
    )


@dataclass
class _Endpoint:
    """A cache plus bookkeeping of which residents arrived by prefetch."""

    cache: CacheLike
    prefetched: dict[str, int] = field(default_factory=dict)

    def sync_evictions(self, evicted: Sequence[str]) -> None:
        for url in evicted:
            self.prefetched.pop(url, None)

    def demand_fill(self, url: str, size: int) -> None:
        self.sync_evictions(self.cache.store(url, size))
        self.prefetched.pop(url, None)

    def prefetch_fill(self, url: str, size: int) -> bool:
        """Push a prefetched object; returns False when it did not fit."""
        self.sync_evictions(self.cache.store(url, size))
        if url in self.cache:
            self.prefetched[url] = size
            return True
        return False


@dataclass
class _ClientState:
    """Per-client session context and (client-mode) caches."""

    endpoint: _Endpoint
    shadow: CacheLike
    context: list[str] = field(default_factory=list)
    last_time: float = float("-inf")
    #: Incremental suffix-match state mirroring ``context``; None when the
    #: run has no model or ``incremental_prediction`` is off.
    cursor: PredictionCursor | None = None


class PrefetchSimulator:
    """Replays test-day requests against a fitted prediction model.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.base.PPMModel`, or ``None`` for a
        caching-only run (useful as an explicit no-prefetch baseline).
    url_sizes:
        Bytes a prefetch of each URL moves, usually
        :meth:`repro.trace.dataset.Trace.url_size_table`.  The server can
        only push documents it knows the size of.
    latency_model:
        The fitted least-squares latency model.
    config:
        Simulation parameters; defaults to the paper's Section-4 values.
    popularity:
        Optional training-day popularity table; when given, prefetch hits
        on popular documents (grade >= 2) are counted for Figure 2.
    event_log:
        Optional :class:`~repro.sim.events.EventLog`; when given, every
        demand request and prefetch push is recorded for inspection.
    """

    def __init__(
        self,
        model: PPMModel | None,
        url_sizes: Mapping[str, int],
        latency_model: LatencyModel,
        config: SimulationConfig | None = None,
        *,
        popularity: PopularityTable | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        if model is not None and not model.is_fitted:
            raise SimulationError("the prediction model must be fitted first")
        self.model = model
        self.url_sizes = url_sizes
        self.latency_model = latency_model
        self.config = config or SimulationConfig()
        self.popularity = popularity
        self.event_log = event_log

    # -- shared helpers ------------------------------------------------------

    def _new_result(self, requests: Sequence[Request]) -> SimulationResult:
        result = SimulationResult(
            model_name=self.model.name if self.model is not None else "none"
        )
        if self.model is not None:
            self.model.reset_usage()
        return result

    def _finish_result(self, result: SimulationResult) -> SimulationResult:
        if self.model is not None:
            result.node_count = self.model.node_count
            result.path_utilization = self.model.path_utilization()
        return result

    def _new_cursor(self) -> PredictionCursor | None:
        if self.model is None or not self.config.incremental_prediction:
            return None
        return self.model.prediction_cursor(self.config.max_context_length)

    def _log_event(
        self,
        timestamp: float,
        client: str,
        url: str,
        kind: EventKind,
        detail: float = 0.0,
    ) -> None:
        if self.event_log is not None:
            self.event_log.record(
                SimulationEvent(timestamp, client, url, kind, detail)
            )

    def _update_context(
        self, state: _ClientState, url: str, timestamp: float
    ) -> None:
        cfg = self.config
        if (
            cfg.reset_context_on_session_gap
            and timestamp - state.last_time > cfg.idle_timeout_seconds
        ):
            state.context.clear()
            if state.cursor is not None:
                state.cursor.reset()
        state.context.append(url)
        if len(state.context) > cfg.max_context_length:
            del state.context[: len(state.context) - cfg.max_context_length]
        if state.cursor is not None:
            state.cursor.advance(url)
        state.last_time = timestamp

    def _account_prefetch_hit(
        self, result: SimulationResult, endpoint: _Endpoint, url: str
    ) -> None:
        size = endpoint.prefetched.pop(url, None)
        if size is None:
            return
        result.prefetch_hits += 1
        result.prefetch_used_bytes += size
        if self.popularity is not None and self.popularity.is_popular(url):
            result.popular_prefetch_hits += 1

    def _issue_prefetches(
        self,
        result: SimulationResult,
        target: _Endpoint,
        context: Sequence[str],
        origin: tuple[float, str] | None = None,
        *,
        cursor: PredictionCursor | None = None,
    ) -> None:
        """Predict from ``context`` and push what fits into ``target``.

        ``origin`` is the ``(timestamp, client)`` of the demand request
        that triggered the predictions, used only for event logging.
        """
        if self.model is None:
            return
        cfg = self.config
        if cursor is not None:
            predictions = self.model.predict_cursor(
                cursor, threshold=cfg.prediction_threshold, mark_used=True
            )
        else:
            predictions = self.model.predict(
                context, threshold=cfg.prediction_threshold, mark_used=True
            )
        result.predictions_made += len(predictions)
        issued = 0
        for prediction in predictions:
            if issued >= cfg.max_prefetch_per_request:
                break
            size = self.url_sizes.get(prediction.url)
            if size is None or size > cfg.prefetch_size_limit_bytes:
                continue
            if prediction.url in target.cache:
                continue
            if target.prefetch_fill(prediction.url, size):
                result.prefetch_bytes += size
                result.prefetches_issued += 1
                issued += 1
                if origin is not None:
                    self._log_event(
                        origin[0],
                        origin[1],
                        prediction.url,
                        EventKind.PREFETCH,
                        prediction.probability,
                    )

    # -- client mode (Section 4) -----------------------------------------------

    def run(
        self,
        requests: "Sequence[Request] | RequestBatch",
        *,
        client_kinds: Mapping[str, str] | None = None,
    ) -> SimulationResult:
        """Replay requests in per-client mode.

        Parameters
        ----------
        requests:
            Test-day page views in timestamp order (the engine re-sorts
            defensively), or a columnar
            :class:`~repro.trace.columnar.RequestBatch` which replays
            straight off its pre-sorted columns.
        client_kinds:
            Optional ``client -> "browser" | "proxy"`` map from
            :meth:`repro.trace.dataset.Trace.classify_clients`; clients
            default to browsers when absent.
        """
        cfg = self.config
        kinds = client_kinds or {}
        result = self._new_result(requests)
        states: dict[str, _ClientState] = {}

        for client, url, timestamp, size in replay_rows(requests):
            state = states.get(client)
            if state is None:
                capacity = (
                    cfg.proxy_cache_bytes
                    if kinds.get(client) == "proxy"
                    else cfg.browser_cache_bytes
                )
                state = _ClientState(
                    endpoint=_Endpoint(make_cache(cfg.cache_policy, capacity)),
                    shadow=make_cache(cfg.cache_policy, capacity),
                    cursor=self._new_cursor(),
                )
                states[client] = state

            self._update_context(state, url, timestamp)
            result.requests += 1

            # Shadow (caching-only) accounting.
            if state.shadow.access(url):
                result.shadow_hits += 1
                shadow_latency = 0.0
            else:
                shadow_latency = self.latency_model.estimate(size)
                result.shadow_latency_seconds += shadow_latency
                state.shadow.store(url, size)
            if cfg.collect_latencies:
                result.shadow_latencies.append(shadow_latency)

            # Prefetching run.
            if state.endpoint.cache.access(url):
                was_prefetched = url in state.endpoint.prefetched
                result.hits += 1
                result.browser_hits += 1
                self._account_prefetch_hit(result, state.endpoint, url)
                self._log_event(
                    timestamp,
                    client,
                    url,
                    EventKind.HIT_PREFETCHED
                    if was_prefetched
                    else EventKind.HIT_BROWSER,
                )
                if cfg.collect_latencies:
                    result.latencies.append(0.0)
            else:
                latency = self.latency_model.estimate(size)
                result.demand_miss_bytes += size
                result.latency_seconds += latency
                state.endpoint.demand_fill(url, size)
                if cfg.collect_latencies:
                    result.latencies.append(latency)
                self._log_event(
                    timestamp,
                    client,
                    url,
                    EventKind.MISS,
                    float(size),
                )

            self._issue_prefetches(
                result, state.endpoint, state.context, (timestamp, client),
                cursor=state.cursor,
            )

        return self._finish_result(result)

    # -- proxy mode (Section 5) ---------------------------------------------------

    def run_proxy(
        self,
        requests: "Sequence[Request] | RequestBatch",
        *,
        clients: Sequence[str] | None = None,
    ) -> SimulationResult:
        """Replay requests through one shared proxy (Section 5 topology).

        Parameters
        ----------
        requests:
            Test-day page views (objects or a columnar batch); when
            ``clients`` is given only requests from those clients are
            replayed (the paper randomly selects 1 to 32 clients per
            proxy).
        """
        cfg = self.config
        result = self._new_result(requests)
        wanted = frozenset(clients) if clients is not None else None

        proxy = _Endpoint(make_cache(cfg.cache_policy, cfg.proxy_cache_bytes))
        proxy_shadow = make_cache(cfg.cache_policy, cfg.proxy_cache_bytes)
        states: dict[str, _ClientState] = {}

        for client, url, timestamp, size in replay_rows(requests):
            if wanted is not None and client not in wanted:
                continue
            state = states.get(client)
            if state is None:
                state = _ClientState(
                    endpoint=_Endpoint(
                        make_cache(cfg.cache_policy, cfg.browser_cache_bytes)
                    ),
                    shadow=make_cache(cfg.cache_policy, cfg.browser_cache_bytes),
                    cursor=self._new_cursor(),
                )
                states[client] = state

            self._update_context(state, url, timestamp)
            result.requests += 1

            # Shadow chain: browser shadow, then proxy shadow, no prefetch.
            if state.shadow.access(url):
                result.shadow_hits += 1
                shadow_latency = 0.0
            elif proxy_shadow.access(url):
                result.shadow_hits += 1
                state.shadow.store(url, size)
                shadow_latency = 0.0
            else:
                shadow_latency = self.latency_model.estimate(size)
                result.shadow_latency_seconds += shadow_latency
                proxy_shadow.store(url, size)
                state.shadow.store(url, size)
            if cfg.collect_latencies:
                result.shadow_latencies.append(shadow_latency)

            # Prefetching chain: browser, proxy, then server.
            if state.endpoint.cache.access(url):
                result.hits += 1
                result.browser_hits += 1
                self._log_event(
                    timestamp,
                    client,
                    url,
                    EventKind.HIT_BROWSER,
                )
                if cfg.collect_latencies:
                    result.latencies.append(0.0)
            elif proxy.cache.access(url):
                was_prefetched = url in proxy.prefetched
                result.hits += 1
                result.proxy_hits += 1
                self._account_prefetch_hit(result, proxy, url)
                state.endpoint.demand_fill(url, size)
                self._log_event(
                    timestamp,
                    client,
                    url,
                    EventKind.HIT_PREFETCHED
                    if was_prefetched
                    else EventKind.HIT_PROXY,
                )
                if cfg.collect_latencies:
                    result.latencies.append(0.0)
            else:
                latency = self.latency_model.estimate(size)
                result.demand_miss_bytes += size
                result.latency_seconds += latency
                proxy.demand_fill(url, size)
                state.endpoint.demand_fill(url, size)
                if cfg.collect_latencies:
                    result.latencies.append(latency)
                self._log_event(
                    timestamp,
                    client,
                    url,
                    EventKind.MISS,
                    float(size),
                )

            self._issue_prefetches(
                result, proxy, state.context, (timestamp, client),
                cursor=state.cursor,
            )

        return self._finish_result(result)
