"""Simulation parameters (paper Sections 2.2 and 4.1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.errors import SimulationError


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one simulator run.

    Attributes
    ----------
    prediction_threshold:
        Minimum conditional probability for a prediction to trigger a
        prefetch (0.25 in every experiment of the paper).
    prefetch_size_limit_bytes:
        Maximum size of a document the server will prefetch.  The paper
        limits PB-PPM to 30 KB and allows 100 KB for the baselines in
        Section 4; Section 5 sweeps 4 KB and 10 KB.
    browser_cache_bytes / proxy_cache_bytes:
        Cache capacities (10 MB browsers, 16 GB proxy disk).
    proxy_requests_per_day:
        Client-classification cut-off: clients above it are proxies and
        receive a proxy-sized cache even in per-client mode.
    max_context_length:
        Longest session suffix handed to the model as context.  Bounded so
        an unlimited-height standard PPM cannot make prediction cost
        quadratic in session length; 20 comfortably exceeds every branch
        height the paper uses.
    incremental_prediction:
        When true (the default), each simulated client carries a
        :class:`~repro.core.prediction.PredictionCursor` that extends the
        previous click's suffix-match states by one URL instead of
        rematching the whole context on every request.  Predictions, usage
        marking and therefore every reported metric are identical either
        way (the cursor invariant is pinned by ``tests/kernel/``); false
        forces the batch rematch, kept as the reference path.
    max_prefetch_per_request:
        Safety cap on prefetches issued per demand request (the 0.25
        probability threshold already bounds the fan-out to at most 4
        context predictions; special links can add a few more).
    reset_context_on_session_gap:
        When true (paper behaviour), an idle gap longer than the session
        timeout clears the prediction context.
    idle_timeout_seconds:
        The session timeout used for the context reset.
    cache_policy:
        Replacement policy for every cache in the run: ``"lru"`` (the
        paper's), or the ablation policies ``"fifo"``, ``"lfu"``,
        ``"gdsf"`` from :mod:`repro.sim.replacement`.
    collect_latencies:
        When true, the per-request latencies of both the prefetching run
        and the caching-only shadow are retained on the result, enabling
        percentile reporting (p50/p95) in addition to the paper's mean
        latency reduction.
    workers:
        Worker processes for sharded client-mode replay
        (:mod:`repro.parallel`).  ``1`` replays serially (the default);
        ``0`` means "one per CPU core"; values above 1 partition the
        trace by client and replay shards concurrently, with results
        guaranteed bit-identical to a serial run.  Proxy-mode replay
        shares one proxy cache across clients and always runs serially.
    """

    prediction_threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD
    prefetch_size_limit_bytes: int = params.DEFAULT_PREFETCH_SIZE_LIMIT
    browser_cache_bytes: int = params.BROWSER_CACHE_BYTES
    proxy_cache_bytes: int = params.PROXY_CACHE_BYTES
    proxy_requests_per_day: float = params.PROXY_REQUESTS_PER_DAY
    max_context_length: int = params.DEFAULT_MAX_CONTEXT_LENGTH
    incremental_prediction: bool = True
    max_prefetch_per_request: int = 16
    reset_context_on_session_gap: bool = True
    idle_timeout_seconds: float = params.SESSION_IDLE_TIMEOUT_S
    cache_policy: str = "lru"
    collect_latencies: bool = False
    workers: int = params.DEFAULT_WORKERS

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise SimulationError(
                f"workers must be >= 0 (0 = one per CPU core): {self.workers}"
            )
        if not 0.0 <= self.prediction_threshold <= 1.0:
            raise SimulationError(
                f"prediction_threshold out of [0, 1]: {self.prediction_threshold}"
            )
        if self.prefetch_size_limit_bytes < 0:
            raise SimulationError(
                f"negative prefetch size limit: {self.prefetch_size_limit_bytes}"
            )
        if self.browser_cache_bytes < 0 or self.proxy_cache_bytes < 0:
            raise SimulationError("cache capacities must be >= 0")
        if self.max_context_length < 1:
            raise SimulationError(
                f"max_context_length must be >= 1: {self.max_context_length}"
            )
        if self.max_prefetch_per_request < 0:
            raise SimulationError(
                f"max_prefetch_per_request must be >= 0: {self.max_prefetch_per_request}"
            )
        from repro.sim.replacement import POLICIES

        if self.cache_policy not in POLICIES:
            raise SimulationError(
                f"unknown cache policy {self.cache_policy!r}; "
                f"available: {POLICIES}"
            )

    @classmethod
    def for_model(cls, model_name: str, **overrides) -> "SimulationConfig":
        """The paper's Section-4 configuration for a given model name.

        PB-PPM runs with its limited 30 KB prefetch threshold; the standard
        and LRS models with 100 KB.
        """
        if "prefetch_size_limit_bytes" not in overrides:
            if model_name == "pb":
                overrides["prefetch_size_limit_bytes"] = params.PB_PREFETCH_SIZE_LIMIT
            else:
                overrides["prefetch_size_limit_bytes"] = (
                    params.DEFAULT_PREFETCH_SIZE_LIMIT
                )
        return cls(**overrides)
