"""Adaptive prefetch throttling under a traffic budget.

Section 5 of the paper closes on the observation that *"there is a
tradeoff between increasing hit ratios and lowering traffic increment ...
By adjusting the threshold size of prefetched documents, we are able to
address the tradeoff."*  This module automates that adjustment: a
feedback controller watches the running traffic increment and scales the
prediction-probability threshold so the run converges to a configured
traffic budget — aggressive prefetching while under budget, throttled
when over.

:class:`AdaptivePrefetchSimulator` is a drop-in replacement for
:class:`~repro.sim.engine.PrefetchSimulator`; the ablation bench sweeps
budgets and verifies the achieved traffic lands near the target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.engine import PrefetchSimulator, _Endpoint
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class AdaptivePolicy:
    """Controller parameters.

    Attributes
    ----------
    traffic_budget:
        Target traffic increment (e.g. 0.10 for "at most ~10 % wasted
        push bytes").
    adjust_every:
        Requests between controller updates.
    step:
        Multiplicative threshold step per adjustment.
    min_threshold / max_threshold:
        Clamp on the effective prediction threshold.
    """

    traffic_budget: float = 0.10
    adjust_every: int = 50
    step: float = 1.25
    min_threshold: float = 0.05
    max_threshold: float = 0.95

    def __post_init__(self) -> None:
        if self.traffic_budget < 0:
            raise SimulationError(f"negative traffic budget: {self.traffic_budget}")
        if self.adjust_every < 1:
            raise SimulationError(f"adjust_every must be >= 1: {self.adjust_every}")
        if self.step <= 1.0:
            raise SimulationError(f"step must exceed 1.0: {self.step}")
        if not 0.0 < self.min_threshold <= self.max_threshold <= 1.0:
            raise SimulationError(
                f"bad threshold clamp: [{self.min_threshold}, {self.max_threshold}]"
            )


class AdaptivePrefetchSimulator(PrefetchSimulator):
    """A prefetch simulator whose threshold tracks a traffic budget.

    The effective prediction threshold starts at the configured value and
    is re-evaluated every ``policy.adjust_every`` requests: raised by
    ``policy.step`` while the running traffic increment exceeds the
    budget, lowered while it is comfortably below (under 80 % of budget).
    """

    def __init__(self, *args, policy: AdaptivePolicy | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.policy = policy or AdaptivePolicy()
        self._effective_threshold = self.config.prediction_threshold
        self._since_adjust = 0
        self.threshold_trajectory: list[float] = []

    # -- controller ---------------------------------------------------------

    def _current_increment(self, result: SimulationResult) -> float:
        useful = result.demand_miss_bytes + result.prefetch_used_bytes
        if useful <= 0:
            return 0.0
        return (result.demand_miss_bytes + result.prefetch_bytes) / useful - 1.0

    def _maybe_adjust(self, result: SimulationResult) -> None:
        self._since_adjust += 1
        if self._since_adjust < self.policy.adjust_every:
            return
        self._since_adjust = 0
        increment = self._current_increment(result)
        if increment > self.policy.traffic_budget:
            self._effective_threshold = min(
                self.policy.max_threshold,
                self._effective_threshold * self.policy.step,
            )
        elif increment < 0.8 * self.policy.traffic_budget:
            self._effective_threshold = max(
                self.policy.min_threshold,
                self._effective_threshold / self.policy.step,
            )
        self.threshold_trajectory.append(self._effective_threshold)

    # -- engine hook -----------------------------------------------------------

    def _issue_prefetches(
        self, result, target: _Endpoint, context, origin=None, *, cursor=None
    ) -> None:
        if self.model is None:
            return
        self._maybe_adjust(result)
        cfg = self.config
        if cursor is not None:
            predictions = self.model.predict_cursor(
                cursor, threshold=self._effective_threshold, mark_used=True
            )
        else:
            predictions = self.model.predict(
                context, threshold=self._effective_threshold, mark_used=True
            )
        result.predictions_made += len(predictions)
        issued = 0
        for prediction in predictions:
            if issued >= cfg.max_prefetch_per_request:
                break
            size = self.url_sizes.get(prediction.url)
            if size is None or size > cfg.prefetch_size_limit_bytes:
                continue
            if prediction.url in target.cache:
                continue
            if target.prefetch_fill(prediction.url, size):
                result.prefetch_bytes += size
                result.prefetches_issued += 1
                issued += 1
                if origin is not None:
                    from repro.sim.events import EventKind

                    self._log_event(
                        origin[0],
                        origin[1],
                        prediction.url,
                        EventKind.PREFETCH,
                        prediction.probability,
                    )

    @property
    def effective_threshold(self) -> float:
        """The controller's current threshold."""
        return self._effective_threshold
