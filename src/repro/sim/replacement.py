"""Alternative cache-replacement policies (related-work ablations).

The paper's simulator uses LRU (:mod:`repro.sim.cache`).  Its related-work
section leans on the Web-caching literature — notably Jin & Bestavros'
popularity-aware GreedyDual-Size, whose latency-fit method Section 4.2
borrows — so the ablation benches compare prefetching under LRU against:

* **FIFO** — evict in arrival order, recency-blind;
* **LFU**  — evict the least frequently accessed (ties broken by recency);
* **GDSF** — GreedyDual-Size-Frequency: priority ``L + frequency / size``;
  small, popular objects survive, large cold ones go first.

Every policy implements the same protocol as
:class:`~repro.sim.cache.LRUCache` (``access``, ``store``, ``remove``,
``__contains__``, ``used_bytes``...), so the engine is policy-agnostic.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from typing import Iterator

from repro.errors import SimulationError
from repro.sim.cache import LRUCache


class _BoundedCache:
    """Shared bookkeeping for the non-LRU policies."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._sizes: dict[str, int] = {}
        self._used_bytes = 0
        self.hit_count = 0
        self.miss_count = 0
        self.eviction_count = 0

    # -- shared interface ----------------------------------------------------

    def __contains__(self, url: str) -> bool:
        return url in self._sizes

    def size_of(self, url: str) -> int | None:
        return self._sizes.get(url)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    def __len__(self) -> int:
        return len(self._sizes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._sizes)

    def clear(self) -> None:
        self._sizes.clear()
        self._used_bytes = 0

    # -- hooks policies implement ------------------------------------------------

    def _on_hit(self, url: str) -> None:  # pragma: no cover - overridden
        pass

    def _pick_victim(self) -> str:
        raise NotImplementedError

    def _on_insert(self, url: str) -> None:
        raise NotImplementedError

    def _on_remove(self, url: str) -> None:
        pass

    # -- operations ------------------------------------------------------------------

    def access(self, url: str) -> bool:
        if url in self._sizes:
            self.hit_count += 1
            self._on_hit(url)
            return True
        self.miss_count += 1
        return False

    def store(self, url: str, size: int) -> list[str]:
        if size < 0:
            raise ValueError(f"negative object size: {size}")
        if size > self.capacity_bytes:
            # Rejected before any eviction; a stale smaller copy of the
            # same URL is evicted (and reported) rather than left to
            # serve hits at a size the cache could not hold.
            if self.remove(url):
                self.eviction_count += 1
                return [url]
            return []
        evicted: list[str] = []
        if url in self._sizes:
            self._used_bytes -= self._sizes.pop(url)
            self._on_remove(url)
        while self._used_bytes + size > self.capacity_bytes and self._sizes:
            victim = self._pick_victim()
            self._used_bytes -= self._sizes.pop(victim)
            self._on_remove(victim)
            self.eviction_count += 1
            evicted.append(victim)
        self._sizes[url] = size
        self._used_bytes += size
        self._on_insert(url)
        return evicted

    def remove(self, url: str) -> bool:
        size = self._sizes.pop(url, None)
        if size is None:
            return False
        self._used_bytes -= size
        self._on_remove(url)
        return True


class FIFOCache(_BoundedCache):
    """Evict in insertion order; accesses never refresh position."""

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._order: OrderedDict[str, None] = OrderedDict()

    def _pick_victim(self) -> str:
        return next(iter(self._order))

    def _on_insert(self, url: str) -> None:
        self._order[url] = None

    def _on_remove(self, url: str) -> None:
        self._order.pop(url, None)


class LFUCache(_BoundedCache):
    """Evict the least frequently accessed object; ties break LRU-wise."""

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._frequency: dict[str, int] = {}
        self._clock = itertools.count()
        self._last_touch: dict[str, int] = {}

    def _on_hit(self, url: str) -> None:
        self._frequency[url] += 1
        self._last_touch[url] = next(self._clock)

    def _pick_victim(self) -> str:
        return min(
            self._frequency,
            key=lambda url: (self._frequency[url], self._last_touch[url]),
        )

    def _on_insert(self, url: str) -> None:
        self._frequency[url] = self._frequency.get(url, 0) + 1
        self._last_touch[url] = next(self._clock)

    def _on_remove(self, url: str) -> None:
        self._frequency.pop(url, None)
        self._last_touch.pop(url, None)


class GDSFCache(_BoundedCache):
    """GreedyDual-Size-Frequency with the classic aging term.

    Priority of an object: ``L + frequency * cost / size`` with unit cost;
    ``L`` is the priority of the last evicted object, which ages resident
    objects relative to fresh arrivals.  Implemented with a lazy heap.
    """

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._frequency: dict[str, int] = {}
        self._priority: dict[str, float] = {}
        self._heap: list[tuple[float, int, str]] = []
        self._counter = itertools.count()
        self._inflation = 0.0

    def _priority_of(self, url: str) -> float:
        size = max(1, self._sizes.get(url, 1))
        return self._inflation + self._frequency[url] / size

    def _push(self, url: str) -> None:
        priority = self._priority_of(url)
        self._priority[url] = priority
        heapq.heappush(self._heap, (priority, next(self._counter), url))

    def _on_hit(self, url: str) -> None:
        self._frequency[url] += 1
        self._push(url)

    def _pick_victim(self) -> str:
        while self._heap:
            priority, _, url = self._heap[0]
            if url not in self._sizes or self._priority.get(url) != priority:
                heapq.heappop(self._heap)  # stale entry
                continue
            self._inflation = priority
            return url
        raise SimulationError("GDSF heap empty while cache non-empty")

    def _on_insert(self, url: str) -> None:
        self._frequency[url] = self._frequency.get(url, 0) + 1
        self._push(url)

    def _on_remove(self, url: str) -> None:
        self._frequency.pop(url, None)
        self._priority.pop(url, None)


#: Anything the engine accepts as a cache (LRU or an ablation policy).
CacheLike = LRUCache | _BoundedCache

#: Registered policy names.
POLICIES = ("lru", "fifo", "lfu", "gdsf")


def make_cache(policy: str, capacity_bytes: int):
    """Construct a cache of the given policy.

    ``lru`` returns the paper's :class:`~repro.sim.cache.LRUCache`; the
    other names return the ablation policies above.
    """
    if policy == "lru":
        return LRUCache(capacity_bytes)
    if policy == "fifo":
        return FIFOCache(capacity_bytes)
    if policy == "lfu":
        return LFUCache(capacity_bytes)
    if policy == "gdsf":
        return GDSFCache(capacity_bytes)
    raise SimulationError(
        f"unknown cache policy {policy!r}; available: {POLICIES}"
    )
