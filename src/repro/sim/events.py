"""Optional per-request event logging for the simulator.

Attach an :class:`EventLog` to a :class:`~repro.sim.engine.PrefetchSimulator`
and every demand request and prefetch push is recorded as a typed event —
the raw material for debugging a surprising hit ratio, visualising a
session, or teaching how server-push prefetching behaves.

Events are deliberately small (named tuples) and the log bounded, so
logging a full test day stays cheap.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator, NamedTuple


class EventKind(Enum):
    """What happened for one URL at one endpoint."""

    HIT_BROWSER = "hit-browser"
    HIT_PROXY = "hit-proxy"
    HIT_PREFETCHED = "hit-prefetched"
    MISS = "miss"
    PREFETCH = "prefetch"


class SimulationEvent(NamedTuple):
    """One recorded event.

    ``detail`` carries the event-specific payload: bytes moved for
    misses/prefetches, the prediction probability for prefetches.
    """

    timestamp: float
    client: str
    url: str
    kind: EventKind
    detail: float = 0.0


class EventLog:
    """A bounded, append-only event recorder.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events are dropped (the counter
        keeps the true total).  ``None`` retains everything.
    """

    def __init__(self, capacity: int | None = 100_000) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: list[SimulationEvent] = []
        self.total_recorded = 0

    def record(self, event: SimulationEvent) -> None:
        self.total_recorded += 1
        if self.capacity is not None and len(self._events) >= self.capacity:
            self._events.pop(0)
        self._events.append(event)

    @property
    def events(self) -> list[SimulationEvent]:
        """The retained events, oldest first."""
        return self._events

    def of_kind(self, kind: EventKind) -> list[SimulationEvent]:
        """Retained events of one kind."""
        return [event for event in self._events if event.kind is kind]

    def for_client(self, client: str) -> list[SimulationEvent]:
        """Retained events of one client, oldest first."""
        return [event for event in self._events if event.client == client]

    def counts(self) -> dict[EventKind, int]:
        """Retained-event histogram by kind."""
        histogram: dict[EventKind, int] = {kind: 0 for kind in EventKind}
        for event in self._events:
            histogram[event.kind] += 1
        return histogram

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimulationEvent]:
        return iter(self._events)

    def format_timeline(self, client: str, *, limit: int = 50) -> str:
        """A human-readable per-client timeline (for debugging sessions)."""
        lines = []
        for event in self.for_client(client)[:limit]:
            lines.append(
                f"{event.timestamp:12.1f}  {event.kind.value:<15} {event.url}"
                + (f"  ({event.detail:g})" if event.detail else "")
            )
        return "\n".join(lines)
