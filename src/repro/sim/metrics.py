"""The result record with the paper's four metrics (Section 2.3).

* **Hit ratio** — requests served from browser or proxy caches over all
  requests.
* **Latency reduction** — average access-latency reduction per request,
  measured against a *shadow* run that uses identical caches but never
  prefetches (so the reduction isolates what prefetching buys).
* **Space** — number of URL nodes the prediction model stores.
* **Traffic increment** — total transferred bytes over useful bytes,
  minus one.  Transferred bytes are demand-miss bytes plus every pushed
  prefetch byte; useful bytes are demand-miss bytes plus the prefetched
  bytes that were later actually requested, so the increment is exactly
  the wasted-push overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulationResult:
    """Counters accumulated by one simulator run, plus derived metrics."""

    model_name: str = ""
    #: Total demand requests replayed.
    requests: int = 0
    #: Demand requests served from a cache (browser or proxy).
    hits: int = 0
    #: Hits satisfied by the client's browser cache.
    browser_hits: int = 0
    #: Hits satisfied by the shared proxy cache (proxy topology only).
    proxy_hits: int = 0
    #: Hits whose object was present *because it had been prefetched*.
    prefetch_hits: int = 0
    #: Among prefetch hits, those on popular documents (grade >= 2).
    popular_prefetch_hits: int = 0
    #: Demand requests served from a cache in the no-prefetch shadow run.
    shadow_hits: int = 0
    #: Bytes fetched from the server on demand misses.
    demand_miss_bytes: int = 0
    #: Bytes pushed by the server as prefetches.
    prefetch_bytes: int = 0
    #: Prefetched bytes later consumed by a demand request.
    prefetch_used_bytes: int = 0
    #: Number of prefetch pushes issued.
    prefetches_issued: int = 0
    #: Number of predictions the model produced (before size filtering).
    predictions_made: int = 0
    #: Summed access latency of the prefetching run.
    latency_seconds: float = 0.0
    #: Summed access latency of the no-prefetch shadow run.
    shadow_latency_seconds: float = 0.0
    #: Node count of the model (the paper's space metric).
    node_count: int = 0
    #: Fraction of root-to-leaf paths used for predictions (Figure 2).
    path_utilization: float = 0.0
    #: Extra labels attached by experiments (days trained, clients, ...).
    labels: dict[str, object] = field(default_factory=dict)
    #: Per-request latencies (prefetching run), only when the simulation
    #: config sets ``collect_latencies``.
    latencies: list[float] = field(default_factory=list)
    #: Per-request latencies of the caching-only shadow run (same flag).
    shadow_latencies: list[float] = field(default_factory=list)

    # -- the paper's metrics ---------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        """Requests served from caches over all requests."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def shadow_hit_ratio(self) -> float:
        """Hit ratio of the caching-only shadow run (no prefetching)."""
        return self.shadow_hits / self.requests if self.requests else 0.0

    @property
    def latency_reduction(self) -> float:
        """Average access-latency reduction per request vs the shadow run."""
        if self.shadow_latency_seconds <= 0.0:
            return 0.0
        saved = self.shadow_latency_seconds - self.latency_seconds
        return saved / self.shadow_latency_seconds

    @property
    def traffic_increment(self) -> float:
        """Transferred bytes over useful bytes, minus one."""
        useful = self.demand_miss_bytes + self.prefetch_used_bytes
        if useful <= 0:
            return 0.0
        transferred = self.demand_miss_bytes + self.prefetch_bytes
        return transferred / useful - 1.0

    @property
    def prefetch_hit_ratio(self) -> float:
        """Share of all requests served by previously prefetched objects."""
        return self.prefetch_hits / self.requests if self.requests else 0.0

    @property
    def popular_share_of_prefetch_hits(self) -> float:
        """Among prefetch hits, the fraction on popular documents (Fig. 2)."""
        if self.prefetch_hits == 0:
            return 0.0
        return self.popular_prefetch_hits / self.prefetch_hits

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that were later demanded."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued

    @staticmethod
    def _percentile(values: list[float], quantile: float) -> float:
        if not values:
            return 0.0
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile out of [0, 1]: {quantile}")
        ordered = sorted(values)
        index = min(len(ordered) - 1, int(round(quantile * (len(ordered) - 1))))
        return ordered[index]

    def latency_percentile(self, quantile: float) -> float:
        """Per-request latency percentile of the prefetching run.

        Requires the run to have collected latencies
        (``SimulationConfig(collect_latencies=True)``); returns 0.0
        otherwise.
        """
        return self._percentile(self.latencies, quantile)

    def shadow_latency_percentile(self, quantile: float) -> float:
        """Per-request latency percentile of the caching-only shadow."""
        return self._percentile(self.shadow_latencies, quantile)

    def latency_reduction_at(self, quantile: float) -> float:
        """Relative latency reduction at a percentile (e.g. p95)."""
        shadow = self.shadow_latency_percentile(quantile)
        if shadow <= 0.0:
            return 0.0
        return (shadow - self.latency_percentile(quantile)) / shadow

    def summary(self) -> dict[str, float | int | str]:
        """Flat dict of headline numbers, convenient for report tables."""
        return {
            "model": self.model_name,
            "requests": self.requests,
            "hit_ratio": round(self.hit_ratio, 4),
            "shadow_hit_ratio": round(self.shadow_hit_ratio, 4),
            "latency_reduction": round(self.latency_reduction, 4),
            "traffic_increment": round(self.traffic_increment, 4),
            "node_count": self.node_count,
            "path_utilization": round(self.path_utilization, 4),
            "prefetch_accuracy": round(self.prefetch_accuracy, 4),
            "popular_share_of_prefetch_hits": round(
                self.popular_share_of_prefetch_hits, 4
            ),
        }
