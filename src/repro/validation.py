"""Shared validation for every persisted model format.

Three formats carry a fitted model across a process boundary — the JSON
document (:mod:`repro.core.serialize`), the snapshot file built on it
(:mod:`repro.serve.snapshot`) and the shared-memory buffer plane
(:mod:`repro.kernel.buffer`).  Each has a header to check (magic, format
version, checksum) and each must fail with one typed
:class:`~repro.errors.ModelError` on any malformation, so the checks live
here once instead of being re-implemented per format.

This module sits below both :mod:`repro.core` and :mod:`repro.kernel`
(it imports only :mod:`repro.errors`), which is what lets the kernel's
buffer plane share the exact wording the JSON loader uses.
"""

from __future__ import annotations

import zlib

from repro.errors import ModelError


def checksum(payload: bytes | bytearray | memoryview) -> int:
    """The 32-bit payload checksum every binary header stores (CRC-32)."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def require_magic(found: bytes, expected: bytes, what: str) -> None:
    """Reject a buffer that is not the format it is claimed to be."""
    if found != expected:
        raise ModelError(
            f"not a {what}: bad magic {bytes(found)!r} (expected {expected!r})"
        )


def require_version(found: object, expected: object, what: str) -> None:
    """Reject a version this code does not read (older or newer)."""
    if found != expected:
        raise ModelError(f"unsupported {what} {found!r} (expected {expected})")


def require_checksum(stored: int, computed: int, what: str) -> None:
    """Reject a payload whose stored checksum does not match its bytes."""
    if stored != computed:
        raise ModelError(
            f"{what} checksum mismatch: stored 0x{stored:08x}, computed "
            f"0x{computed:08x} (truncated or corrupted payload)"
        )


def require_length(available: int, needed: int, what: str) -> None:
    """Reject a buffer too short to hold what its header promises."""
    if available < needed:
        raise ModelError(
            f"truncated {what}: {available} bytes, header promises {needed}"
        )
