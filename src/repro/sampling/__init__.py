"""Deterministic client-hash sampling and its fidelity harness.

``ClientSampler`` keeps a stable, salt-decorrelated fraction of
clients — whole sessions, both trace paths, bit-identical either way —
and ``repro.sampling.fidelity`` quantifies what that sampling costs in
metric error (and buys in wall-clock).
"""

from repro.sampling.fidelity import (
    DEFAULT_FIDELITY_RATES,
    FIDELITY_METRICS,
    bootstrap_mean_ci,
    error_bound,
    format_fidelity_report,
    parse_budget,
    pick_rate,
    run_fidelity,
    write_fidelity_report,
)
from repro.sampling.sampler import (
    HASH_SPAN,
    SUPPORTED_RATES,
    ClientSampler,
    client_hash,
)

__all__ = [
    "ClientSampler",
    "client_hash",
    "HASH_SPAN",
    "SUPPORTED_RATES",
    "DEFAULT_FIDELITY_RATES",
    "FIDELITY_METRICS",
    "bootstrap_mean_ci",
    "error_bound",
    "format_fidelity_report",
    "parse_budget",
    "pick_rate",
    "run_fidelity",
    "write_fidelity_report",
]
