"""Deterministic client-hash sampling.

The sampler keeps client *c* iff ``hash64(c) < rate * 2**64`` — the
Cydonia ``Sampler.py`` recipe.  Because membership depends only on the
client id, the chosen rate and an explicit salt, the same clients are
kept across runs, machines, chunkings and trace representations; and
because the keep-threshold is monotone in the rate, the client set at
rate *r* is a strict subset of the set at any *r' > r* for the same
salt (no re-draw between rates).

Sampling whole clients keeps whole sessions — a PPM model trained on
sessions sees no truncated access pattern, only fewer clients — so
per-client metrics are unbiased and count-type metrics (trie nodes,
requests) scale back by ``1/rate``.

The hash is BLAKE2b with an 8-byte digest and the salt folded into the
keyed-hash salt parameter.  Python's builtin ``hash`` is *per-process*
salted and must never be used for this.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SamplingError
from repro.trace.columnar import TraceColumns
from repro.trace.record import LogRecord

#: Hash values live in ``[0, 2**64)``; the keep-threshold is a fraction
#: of this span.
HASH_SPAN: int = 1 << 64

#: The canonical rates the evaluation pipeline is characterised at
#: (the fidelity harness and CLIs default to subsets of these); any
#: rate in ``(0, 1]`` is accepted.
SUPPORTED_RATES: tuple[float, ...] = (0.01, 0.02, 0.05, 0.10, 0.20, 0.50)


def client_hash(client: str, *, salt: int = 0) -> int:
    """Stable 64-bit hash of a client id under the given salt."""
    digest = hashlib.blake2b(
        client.encode("utf-8", errors="surrogatepass"),
        digest_size=8,
        salt=int(salt).to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "little")


class ClientSampler:
    """Keep a deterministic ``rate``-fraction of clients, whole-session.

    Parameters
    ----------
    rate:
        Fraction of clients to keep, in ``(0, 1]``.  ``1.0`` keeps
        everything (useful as the no-op arm of a sweep).
    salt:
        Decorrelates independent samples at the same rate.  Two salts
        give (statistically) independent client sets; one salt gives
        nested sets across rates.
    """

    def __init__(self, rate: float, *, salt: int = 0) -> None:
        try:
            rate = float(rate)
        except (TypeError, ValueError) as exc:
            raise SamplingError(f"sample rate must be a number, got {rate!r}") from exc
        if not 0.0 < rate <= 1.0:
            raise SamplingError(f"sample rate out of (0, 1]: {rate}")
        try:
            salt = int(salt)
        except (TypeError, ValueError) as exc:
            raise SamplingError(f"sample salt must be an integer, got {salt!r}") from exc
        if not 0 <= salt < HASH_SPAN:
            raise SamplingError(f"sample salt out of [0, 2**64): {salt}")
        self.rate = rate
        self.salt = salt
        # Monotone in rate, so subset-across-rates holds by construction.
        self._threshold = HASH_SPAN if rate >= 1.0 else int(rate * HASH_SPAN)

    @property
    def scale(self) -> float:
        """Multiplier that maps sampled counts back to full-trace scale."""
        return 1.0 / self.rate

    def keeps(self, client: str) -> bool:
        """Whether this client id survives the sample."""
        return client_hash(client, salt=self.salt) < self._threshold

    def sampled_clients(self, clients: Iterable[str]) -> frozenset[str]:
        """The subset of the given client ids this sampler keeps."""
        return frozenset(c for c in clients if self.keeps(c))

    # -- columnar path ------------------------------------------------------

    def table_mask(self, client_table: Sequence[str]) -> np.ndarray:
        """Boolean keep-mask over an interned client string table."""
        mask = np.empty(len(client_table), dtype=bool)
        for index, client in enumerate(client_table):
            mask[index] = self.keeps(client)
        return mask

    def row_mask(self, columns: TraceColumns) -> np.ndarray:
        """Boolean keep-mask over the rows of a columnar trace.

        One hash per *distinct* client (the interned table), then a
        vectorised gather over the per-row client codes — the whole
        plane is masked without touching a single record object.
        """
        if not len(columns):
            return np.zeros(0, dtype=bool)
        return self.table_mask(columns.client_table)[columns.clients]

    def sample_columns(self, columns: TraceColumns) -> TraceColumns:
        """Order-preserving columnar subsample (string tables shared)."""
        return columns.select(np.flatnonzero(self.row_mask(columns)))

    # -- object path --------------------------------------------------------

    def sample_records(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Filter an object-path record stream, preserving order.

        Works on any iterable — including an unbounded workload stream —
        and is chunk-agnostic: filtering a concatenation of chunks
        yields the same records as filtering the whole stream.
        """
        keeps = self.keeps
        return (record for record in records if keeps(record.client))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"ClientSampler(rate={self.rate}, salt={self.salt})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClientSampler):
            return NotImplemented
        return self.rate == other.rate and self.salt == other.salt

    def __hash__(self) -> int:
        return hash((self.rate, self.salt))
