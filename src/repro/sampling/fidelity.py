"""Sampled-vs-full fidelity: error bars, bounds and a rate auto-picker.

Client-hash sampling is only useful if the error it introduces is
*quantified*: this module replays the same seeded workloads in full and
at each candidate rate, and reports, per metric and rate:

* the **per-seed error** ``sampled − full`` (ratio metrics: hit ratio,
  precision, traffic increment, latency reduction) or the relative
  error of the ``1/rate``-scaled estimate (count metrics: trie nodes,
  replayed requests);
* a **bootstrap confidence interval** of the mean error (seeded
  percentile bootstrap — deterministic for a given config);
* an **error bound**: the ``coverage``-quantile of the absolute
  per-seed errors, i.e. the interval ``±bound`` that contained the
  sampled estimate for ≥ ``coverage`` of the observed seeds.  This is
  the number quoted when a sampled result is reported ("hit ratio
  0.31 ± 0.008 at r=10%").

The auto-picker then answers the operational question — *which rate is
safe?* — by returning the cheapest (smallest) rate whose bound and mean
error both fit a stated budget (``repro fidelity --budget 1pp``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Mapping, Sequence

import numpy as np

from repro.errors import SamplingError, TraceError, WorkloadError
from repro.sampling.sampler import ClientSampler
from repro.trace.dataset import Trace

#: Rates the harness sweeps by default (subset of the canonical set —
#: 1% and 2% need bigger client populations than the default scenarios).
DEFAULT_FIDELITY_RATES: tuple[float, ...] = (0.05, 0.10, 0.20, 0.50)

#: Metrics compared as absolute differences (they are ratios already).
RATIO_METRICS: tuple[str, ...] = (
    "hit_ratio",
    "precision",
    "traffic_increment",
    "latency_reduction",
)

#: Metrics compared as relative error of the ``1/rate``-scaled estimate.
COUNT_METRICS: tuple[str, ...] = ("node_count", "requests")

FIDELITY_METRICS: tuple[str, ...] = RATIO_METRICS + COUNT_METRICS


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    coverage: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI of the mean; deterministic for a seed."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise SamplingError("bootstrap needs at least one value")
    if arr.size == 1:
        return (float(arr[0]), float(arr[0]))
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[indices].mean(axis=1)
    low = (1.0 - coverage) / 2.0
    return (
        float(np.quantile(means, low)),
        float(np.quantile(means, 1.0 - low)),
    )


def error_bound(values: Sequence[float], *, coverage: float = 0.95) -> float:
    """The ``coverage``-quantile of the absolute errors.

    With the default linear quantile interpolation, at least
    ``coverage`` of the observed errors fall inside ``±bound`` — the
    property the statistical regression test pins.
    """
    arr = np.abs(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        raise SamplingError("error bound needs at least one value")
    return float(np.quantile(arr, coverage))


def parse_budget(text) -> float:
    """Parse an error budget: ``"1pp"`` → 0.01, ``"0.5pp"`` → 0.005,
    plain numbers pass through."""
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        raw = str(text).strip().lower()
        try:
            value = float(raw[:-2]) / 100.0 if raw.endswith("pp") else float(raw)
        except ValueError as exc:
            raise SamplingError(
                f"cannot parse error budget {text!r}; use e.g. '1pp' or 0.01"
            ) from exc
    if value <= 0:
        raise SamplingError(f"error budget must be > 0, got {value}")
    return value


def _rate_key(rate: float) -> str:
    return f"{float(rate):g}"


def _result_metrics(result, *, scale: float = 1.0) -> dict:
    return {
        "hit_ratio": result.hit_ratio,
        "precision": result.prefetch_accuracy,
        "traffic_increment": result.traffic_increment,
        "latency_reduction": result.latency_reduction,
        "node_count": result.node_count,
        "node_count_scaled": result.node_count * scale,
        "requests": result.requests,
        "requests_scaled": result.requests * scale,
    }


def _metric_error(metric: str, sampled: Mapping, full: Mapping) -> float:
    """Sampled-vs-full error of one metric (see module docstring)."""
    if metric in RATIO_METRICS:
        return float(sampled[metric] - full[metric])
    reference = float(full[metric])
    if reference == 0.0:
        return 0.0
    return float(sampled[f"{metric}_scaled"] / reference - 1.0)


def _evaluate(trace: Trace, *, model: str, train_fraction: float, workers: int):
    """One grid-style cell evaluation; returns (SimulationResult, stats)."""
    from repro.core.popularity import PopularityTable
    from repro.parallel import ParallelPrefetchSimulator
    from repro.sim.config import SimulationConfig
    from repro.sim.latency import LatencyModel
    from repro.workloads.grid import build_model, fraction_cut, fraction_split

    cut = fraction_cut(trace, train_fraction)
    split = fraction_split(trace, train_fraction)
    popularity = PopularityTable.from_requests(split.train_requests)
    latency = LatencyModel.fit_requests(split.train_requests)
    fitted = build_model(model, popularity, None)
    fitted.fit(split.train_sessions)
    base = "pb" if model.startswith("pb") else model
    config = SimulationConfig.for_model(base, workers=workers)
    simulator = ParallelPrefetchSimulator(
        fitted,
        trace.url_size_table(),
        latency,
        config,
        popularity=popularity,
    )
    result = simulator.run(
        trace.request_batch_after(cut), client_kinds=trace.classify_clients()
    )
    return result, {
        "clients": len(trace.clients),
        "records": len(trace),
        "test_requests": result.requests,
    }


def run_fidelity(
    *,
    workload: str = "stationary",
    params: Mapping | None = None,
    events: int = 40_000,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    rates: Sequence[float] = DEFAULT_FIDELITY_RATES,
    train_fraction: float = 0.7,
    salt: int = 0,
    model: str = "pb",
    workers: int | None = None,
    coverage: float = 0.95,
    progress=None,
) -> dict:
    """Run the sampled-vs-full sweep; returns the fidelity report tree.

    For every seed the named workload is streamed once to a temporary
    columnar trace, evaluated in full, then re-evaluated at each rate
    through :meth:`Trace.sampled` — same split protocol, same models,
    same replay engine, so every difference in the numbers is the
    sampling itself.  Timing covers sampling + derivation + fit +
    replay (the work a sampled grid cell actually does).
    """
    from repro.experiments.lab import default_workers
    from repro.workloads.bridge import stream_to_columnar
    from repro.workloads.registry import create_workload

    if events <= 0:
        raise SamplingError(f"events must be > 0, got {events}")
    if not seeds:
        raise SamplingError("fidelity needs at least one seed")
    if not rates:
        raise SamplingError("fidelity needs at least one rate")
    samplers = {float(r): ClientSampler(float(r), salt=salt) for r in rates}
    if workers is None:
        workers = default_workers()
    say = progress if progress is not None else (lambda line: None)
    report: dict = {
        "config": {
            "workload": workload,
            "params": dict(params or {}),
            "events": int(events),
            "seeds": [int(s) for s in seeds],
            "rates": sorted(samplers),
            "train_fraction": float(train_fraction),
            "salt": int(salt),
            "model": model,
            "coverage": float(coverage),
        },
        "full": {"seeds": {}},
        "rates": {
            _rate_key(rate): {"seeds": {}} for rate in sorted(samplers)
        },
    }
    full_metrics: dict[int, dict] = {}
    for seed in seeds:
        seed = int(seed)
        source = create_workload(workload, seed=seed, **dict(params or {}))
        handle, path = tempfile.mkstemp(suffix=".rpt")
        os.close(handle)
        try:
            stream_to_columnar(source, path, events=int(events))
            trace = Trace.from_columnar_file(path, name=f"{workload}@{seed}")
            start = time.perf_counter()
            result, stats = _evaluate(
                trace, model=model, train_fraction=train_fraction, workers=workers
            )
            full_seconds = time.perf_counter() - start
            metrics = _result_metrics(result)
            full_metrics[seed] = metrics
            report["full"]["seeds"][str(seed)] = {
                "metrics": metrics,
                "eval_seconds": full_seconds,
                **stats,
            }
            say(f"seed {seed}: full hit_ratio={metrics['hit_ratio']:.4f}")
            for rate in sorted(samplers):
                sampler = samplers[rate]
                node = report["rates"][_rate_key(rate)]["seeds"]
                start = time.perf_counter()
                try:
                    sampled_trace = trace.sampled(sampler)
                    sampled_result, sampled_stats = _evaluate(
                        sampled_trace,
                        model=model,
                        train_fraction=train_fraction,
                        workers=workers,
                    )
                except (TraceError, WorkloadError) as exc:
                    node[str(seed)] = {"degenerate": True, "reason": str(exc)}
                    say(f"seed {seed} r={rate:g}: degenerate ({exc})")
                    continue
                sampled_seconds = time.perf_counter() - start
                sampled = _result_metrics(sampled_result, scale=sampler.scale)
                node[str(seed)] = {
                    "metrics": sampled,
                    "errors": {
                        m: _metric_error(m, sampled, metrics)
                        for m in FIDELITY_METRICS
                    },
                    "eval_seconds": sampled_seconds,
                    **sampled_stats,
                }
                say(
                    f"seed {seed} r={rate:g}: hit_ratio="
                    f"{sampled['hit_ratio']:.4f} "
                    f"(err {sampled['hit_ratio'] - metrics['hit_ratio']:+.4f})"
                )
        finally:
            os.unlink(path)
    full_seconds_all = [
        node["eval_seconds"] for node in report["full"]["seeds"].values()
    ]
    report["full"]["mean_eval_seconds"] = float(np.mean(full_seconds_all))
    ci_seed = int(salt) & 0x7FFFFFFF
    for rate in sorted(samplers):
        node = report["rates"][_rate_key(rate)]
        usable = [
            entry for entry in node["seeds"].values()
            if not entry.get("degenerate")
        ]
        node["degenerate_seeds"] = [
            seed for seed, entry in node["seeds"].items()
            if entry.get("degenerate")
        ]
        if not usable:
            node["errors"] = None
            node["mean_eval_seconds"] = None
            node["speedup"] = None
            continue
        node["errors"] = {}
        for metric in FIDELITY_METRICS:
            values = [entry["errors"][metric] for entry in usable]
            ci_low, ci_high = bootstrap_mean_ci(
                values, coverage=coverage, seed=ci_seed
            )
            node["errors"][metric] = {
                "values": values,
                "mean": float(np.mean(values)),
                "ci": [ci_low, ci_high],
                "bound": error_bound(values, coverage=coverage),
            }
        node["mean_eval_seconds"] = float(
            np.mean([entry["eval_seconds"] for entry in usable])
        )
        node["speedup"] = (
            report["full"]["mean_eval_seconds"] / node["mean_eval_seconds"]
            if node["mean_eval_seconds"] > 0
            else None
        )
    return report


def pick_rate(
    report: Mapping,
    *,
    metric: str = "hit_ratio",
    budget: float = 0.01,
) -> dict:
    """The cheapest rate whose error fits the budget, per the report.

    A rate qualifies when the metric's error bound *and* the absolute
    mean error are both ≤ ``budget`` (no degenerate-only rates).  The
    smallest qualifying rate wins — it replays the fewest clients.
    Returns ``{"picked": None, ...}`` when nothing qualifies, in which
    case the caller should evaluate in full.
    """
    if metric not in FIDELITY_METRICS:
        raise SamplingError(
            f"unknown fidelity metric {metric!r}; "
            f"available: {sorted(FIDELITY_METRICS)}"
        )
    budget = parse_budget(budget)
    qualifying = []
    for rate in sorted(float(r) for r in report["config"]["rates"]):
        node = report["rates"][_rate_key(rate)]
        errors = node.get("errors")
        if not errors:
            continue
        stats = errors[metric]
        if stats["bound"] <= budget and abs(stats["mean"]) <= budget:
            qualifying.append(rate)
    return {
        "metric": metric,
        "budget": budget,
        "picked": qualifying[0] if qualifying else None,
        "qualifying": qualifying,
    }


def format_fidelity_report(
    report: Mapping, *, picked: Mapping | None = None
) -> str:
    """Human-readable summary of a fidelity report (CLI output)."""
    config = report["config"]
    lines = [
        f"fidelity: workload={config['workload']} events={config['events']} "
        f"seeds={len(config['seeds'])} model={config['model']} "
        f"salt={config['salt']}",
        f"full replay: {report['full']['mean_eval_seconds']:.2f}s/seed "
        f"(hit_ratio "
        + ", ".join(
            f"{node['metrics']['hit_ratio']:.4f}"
            for node in report["full"]["seeds"].values()
        )
        + ")",
    ]
    for rate in sorted(float(r) for r in config["rates"]):
        node = report["rates"][_rate_key(rate)]
        if not node.get("errors"):
            lines.append(f"  r={rate:g}: degenerate on every seed")
            continue
        stats = node["errors"]["hit_ratio"]
        lines.append(
            f"  r={rate:g}: speedup {node['speedup']:.1f}x, "
            f"hit_ratio err {stats['mean']:+.4f} "
            f"(ci [{stats['ci'][0]:+.4f}, {stats['ci'][1]:+.4f}], "
            f"bound ±{stats['bound']:.4f})"
        )
        for metric in ("latency_reduction", "node_count"):
            stats = node["errors"][metric]
            lines.append(
                f"      {metric}: err {stats['mean']:+.4f} "
                f"bound ±{stats['bound']:.4f}"
            )
    if picked is not None:
        if picked["picked"] is None:
            lines.append(
                f"no rate meets the ±{picked['budget']:g} "
                f"{picked['metric']} budget; evaluate in full"
            )
        else:
            lines.append(
                f"picked r={picked['picked']:g} for "
                f"{picked['metric']} budget ±{picked['budget']:g} "
                f"(qualifying: {picked['qualifying']})"
            )
    return "\n".join(lines)


def write_fidelity_report(report: Mapping, path: str) -> None:
    """Write a fidelity report tree as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
