"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands
-----------
``generate``    Generate a synthetic trace (profile or streaming workload)
                and write it as Common Log Format text or a columnar .rpt.
``workloads``   List the registered streaming workloads and their
                declared parameters.
``grid``        Run the declarative scenario x model x pruning grid and
                emit one comparable results tree.
``convert``     Convert a trace between CLF and the columnar binary format.
``summarize``   Print headline statistics of a trace (CLF file, columnar
                .rpt file, or profile).
``experiment``  Run a registered experiment and print its table.
``fidelity``    Sampled-vs-full error bars across seeds and rates, with
                an auto-picked cheapest rate meeting an error budget.
``list``        List the registered experiments.
``predict``     Fit a model on a trace prefix and show predictions for a
                context, for interactive exploration.
``serve``       Run the online prefetch prediction server (repro.serve).
``loadgen``     Replay a synthetic trace against a running (or spawned)
                server and report throughput / latency percentiles.
``chaos``       Seeded fault-injection run: every injection site armed
                against a live server plus a fault-injected parallel
                replay; passes only with zero failed predictions and a
                bit-identical merge.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import params
from repro.analysis.surfing import summarize_trace
from repro.core.lrs import LRSPPM
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.core.standard import StandardPPM
from repro.errors import ReproError
from repro.experiments.registry import list_experiments, run_experiment
from repro.synth.generator import TraceGenerator
from repro.synth.profiles import profile_by_name
from repro.trace.clf_parser import write_clf_file
from repro.trace.dataset import Trace


def _package_version() -> str:
    """The installed package version, falling back to pyproject.toml.

    ``repro`` is usually run straight off ``PYTHONPATH=src`` without being
    installed, so when importlib metadata has nothing we parse the
    adjacent ``pyproject.toml``; the in-package ``__version__`` is the
    last resort.
    """
    from importlib import metadata

    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        pass
    import os

    pyproject = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "..", "pyproject.toml"
    )
    try:
        import tomllib

        with open(pyproject, "rb") as handle:
            return tomllib.load(handle)["project"]["version"]
    except (ImportError, OSError, KeyError, ValueError):
        from repro import __version__

        return __version__


def _seed_value(text: str) -> int:
    """argparse type for ``--seed``: a non-negative integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seed must be an integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"seed must be >= 0, got {value}")
    return value


def _scale_value(text: str) -> float:
    """argparse type for ``--scale``: a positive finite number."""
    import math

    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"scale must be a number, got {text!r}"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"scale must be > 0, got {text}")
    return value


def _rate_value(text: str) -> float:
    """argparse type for ``--sample-rate``: a fraction in (0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sample rate must be a number, got {text!r}"
        ) from None
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"sample rate out of (0, 1]: {text}"
        )
    return value


def _add_sampling_flags(command: argparse.ArgumentParser) -> None:
    """The ``--sample-rate`` / ``--sample-salt`` pair (repro.sampling)."""
    command.add_argument(
        "--sample-rate",
        type=_rate_value,
        default=None,
        help=(
            "deterministic client-hash sampling rate in (0, 1]; "
            "canonical rates: 0.01 0.02 0.05 0.1 0.2 0.5"
        ),
    )
    command.add_argument(
        "--sample-salt",
        type=_seed_value,
        default=0,
        help="salt decorrelating independent samples at one rate",
    )


def _sampler_from_args(args: argparse.Namespace):
    """A ClientSampler when ``--sample-rate`` was given (and < 1), else None."""
    rate = getattr(args, "sample_rate", None)
    if rate is None or rate >= 1.0:
        return None
    from repro.sampling import ClientSampler

    return ClientSampler(rate, salt=getattr(args, "sample_salt", 0))


def _count_value(text: str) -> int:
    """argparse type for event counts: a positive integer (underscores ok)."""
    try:
        value = int(text.replace("_", ""))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_workload_params(pairs: "Sequence[str] | None") -> dict:
    """``--param key=value`` pairs into a kwargs dict (values literal-eval'd)."""
    import ast

    result: dict = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ReproError(f"--param needs KEY=VALUE, got {pair!r}")
        try:
            result[key] = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            result[key] = value
    return result


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Popularity-based PPM web prefetching (Chen & Zhang, ICPP 2002)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {_package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate",
        help="generate a synthetic trace (profile or streaming workload)",
        description=(
            "Generate traffic from a trace profile (positional name, whole "
            "trace in memory) or a streaming workload (--workload NAME "
            "--events N, flat memory at any event count).  An output path "
            "ending in .rpt is written in the columnar binary format, "
            "anything else as Common Log Format text."
        ),
    )
    generate.add_argument(
        "profile", nargs="?", default=None, help="nasa-like or ucb-like"
    )
    generate.add_argument("output", help="output file path ('-' for stdout)")
    generate.add_argument("--days", type=int, default=7)
    generate.add_argument("--seed", type=_seed_value, default=7)
    generate.add_argument("--scale", type=_scale_value, default=1.0)
    generate.add_argument(
        "--workload",
        default=None,
        help="registered streaming workload (see 'repro workloads')",
    )
    generate.add_argument(
        "--events",
        type=_count_value,
        default=None,
        help="events to stream (workload mode; underscores allowed)",
    )
    generate.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="workload parameter override (repeatable)",
    )
    generate.add_argument(
        "--flush-events",
        type=_count_value,
        default=65_536,
        help="streaming writer chunk size (.rpt workload output)",
    )
    _add_sampling_flags(generate)

    workloads = sub.add_parser(
        "workloads",
        help="list registered streaming workloads and their parameters",
    )
    workloads.add_argument(
        "--name", default=None, help="show one workload's parameters only"
    )

    grid = sub.add_parser(
        "grid",
        help="run the scenario x model x pruning grid (repro.workloads.grid)",
    )
    grid.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="JSON grid spec file (omitted: the built-in default grid)",
    )
    grid.add_argument(
        "--events",
        type=_count_value,
        default=None,
        help="override the per-scenario event count",
    )
    grid.add_argument("--out", default=None, help="write the results tree JSON")
    grid.add_argument(
        "--workers", type=int, default=None, help="replay worker processes"
    )
    _add_sampling_flags(grid)

    summarize = sub.add_parser("summarize", help="print trace statistics")
    summarize.add_argument(
        "source",
        help=(
            "a CLF file path, a columnar .rpt file, or a profile name "
            "prefixed with 'synth:'"
        ),
    )
    summarize.add_argument("--days", type=int, default=7)
    summarize.add_argument("--seed", type=_seed_value, default=7)
    summarize.add_argument("--scale", type=_scale_value, default=1.0)

    convert = sub.add_parser(
        "convert",
        help="convert a trace between CLF and the columnar binary format",
        description=(
            "Convert CLF -> columnar (.rpt) or columnar -> CLF.  The "
            "direction follows the source: a .rpt source converts back to "
            "CLF, anything else is parsed as CLF (exactly once) and "
            "written columnar, with the parse statistics persisted in the "
            "output header."
        ),
    )
    convert.add_argument("source", help="input trace file")
    convert.add_argument("output", help="output trace file")
    convert.add_argument(
        "--strict",
        action="store_true",
        help="fail on malformed CLF lines instead of skipping them",
    )

    experiment = sub.add_parser("experiment", help="run a registered experiment")
    experiment.add_argument("id", help="experiment id (see 'repro list')")
    experiment.add_argument("--seed", type=_seed_value, default=None)
    experiment.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="run once per seed and report mean ± std",
    )
    experiment.add_argument("--scale", type=_scale_value, default=None)
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for sharded client-mode replay "
            "(0 = one per CPU core; results are identical to serial)"
        ),
    )
    experiment.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    _add_sampling_flags(experiment)

    sub.add_parser("list", help="list registered experiments")

    fidelity = sub.add_parser(
        "fidelity",
        help="sampled-vs-full error bars and rate auto-pick (repro.sampling)",
        description=(
            "Replay seeded workloads in full and client-hash sampled at "
            "each rate; report per-metric error bars with bootstrap "
            "confidence intervals, and (with --budget) pick the cheapest "
            "rate meeting the error budget."
        ),
    )
    fidelity.add_argument(
        "--workload", default="stationary", help="streaming workload name"
    )
    fidelity.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="workload parameter override (repeatable)",
    )
    fidelity.add_argument(
        "--events",
        type=_count_value,
        default=40_000,
        help="events per seed (underscores allowed)",
    )
    fidelity.add_argument(
        "--seeds",
        type=_seed_value,
        nargs="+",
        default=None,
        help="workload seeds (default: 0..4)",
    )
    fidelity.add_argument(
        "--rates",
        type=_rate_value,
        nargs="+",
        default=None,
        help="sampling rates to sweep (default: 0.05 0.1 0.2 0.5)",
    )
    fidelity.add_argument("--train-fraction", type=float, default=0.7)
    fidelity.add_argument(
        "--salt", type=_seed_value, default=0, help="sampler salt"
    )
    fidelity.add_argument(
        "--model",
        choices=("pb", "pb-unpruned", "standard", "standard3", "lrs"),
        default="pb",
    )
    fidelity.add_argument(
        "--budget",
        default=None,
        help="error budget for the auto-picker, e.g. '1pp' or 0.01",
    )
    fidelity.add_argument(
        "--metric",
        default="hit_ratio",
        help="metric the budget applies to (default: hit_ratio)",
    )
    fidelity.add_argument(
        "--workers", type=int, default=None, help="replay worker processes"
    )
    fidelity.add_argument(
        "--out", default=None, help="write the fidelity report JSON"
    )

    report = sub.add_parser(
        "report", help="run a set of experiments and write a markdown report"
    )
    report.add_argument("--out", default="-", help="output path ('-' for stdout)")
    report.add_argument(
        "--ids",
        nargs="*",
        default=None,
        help="experiment ids (default: every paper table/figure)",
    )
    report.add_argument(
        "--all", action="store_true", help="include every registered experiment"
    )
    report.add_argument("--seed", type=_seed_value, default=None)
    report.add_argument("--scale", type=_scale_value, default=None)
    report.add_argument("--workers", type=int, default=None)

    verify = sub.add_parser(
        "verify", help="re-validate every paper result shape (PASS/FAIL list)"
    )
    verify.add_argument("--seed", type=_seed_value, default=None)
    verify.add_argument("--scale", type=_scale_value, default=None)
    verify.add_argument("--workers", type=int, default=None)

    render = sub.add_parser(
        "render", help="fit a model on a synthetic profile and print its tree"
    )
    render.add_argument("profile", help="nasa-like, ucb-like or uniform-like")
    render.add_argument(
        "--model", choices=("pb", "standard", "standard3", "lrs"), default="pb"
    )
    render.add_argument("--days", type=int, default=2)
    render.add_argument("--seed", type=_seed_value, default=7)
    render.add_argument("--scale", type=_scale_value, default=0.2)
    render.add_argument("--max-depth", type=int, default=4)
    render.add_argument("--max-roots", type=int, default=12)

    predict = sub.add_parser(
        "predict", help="fit a model and predict continuations of a context"
    )
    predict.add_argument("profile", help="nasa-like or ucb-like")
    predict.add_argument("context", nargs="+", help="URLs clicked so far")
    predict.add_argument(
        "--model", choices=("pb", "standard", "lrs"), default="pb"
    )
    predict.add_argument("--days", type=int, default=5)
    predict.add_argument("--seed", type=_seed_value, default=7)
    predict.add_argument("--scale", type=_scale_value, default=1.0)
    predict.add_argument("--threshold", type=float, default=0.25)

    serve = sub.add_parser(
        "serve", help="run the online prefetch prediction server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--profile",
        default="nasa-like",
        help="synthetic profile the bootstrap model is trained on",
    )
    serve.add_argument("--train-days", type=int, default=2)
    serve.add_argument("--seed", type=_seed_value, default=7)
    serve.add_argument("--scale", type=_scale_value, default=1.0)
    serve.add_argument(
        "--snapshot",
        default=None,
        help=(
            "snapshot file path; restored on boot when present, enables "
            "/admin/snapshot + /admin/reload and a final snapshot on shutdown"
        ),
    )
    serve.add_argument(
        "--snapshot-interval",
        type=float,
        default=None,
        help="seconds between periodic snapshots (needs --snapshot)",
    )
    serve.add_argument(
        "--refresh-interval",
        type=float,
        default=None,
        help="seconds between scheduled model rebuilds (default: admin-only)",
    )
    serve.add_argument("--fold-interval", type=float, default=None)
    serve.add_argument("--idle-timeout", type=float, default=None)
    serve.add_argument(
        "--wal-dir",
        default=None,
        help=(
            "directory for the write-ahead report journal; enables "
            "journalling before ack and crash recovery on boot"
        ),
    )
    serve.add_argument(
        "--wal-fsync",
        choices=("off", "interval", "batch"),
        default=params.SERVE_WAL_FSYNC,
        help="journal fsync policy (needs --wal-dir)",
    )
    serve.add_argument(
        "--wal-segment-bytes",
        type=int,
        default=params.SERVE_WAL_SEGMENT_MAX_BYTES,
        help="rotate journal segments at this size (needs --wal-dir)",
    )
    serve.add_argument(
        "--wal-segment-age",
        type=float,
        default=params.SERVE_WAL_SEGMENT_MAX_AGE_S,
        help="rotate journal segments at this age in seconds",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes sharing one read-only model segment "
            "(>= 2 enables shared-memory multi-process serving)"
        ),
    )
    serve.add_argument(
        "--socket-mode",
        choices=("auto", "reuseport", "inherit"),
        default="auto",
        help="how multi-process workers share the port (needs --workers >= 2)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="replay a synthetic trace against a prediction server",
    )
    target = loadgen.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--url", default=None, help="running server, e.g. http://127.0.0.1:8080"
    )
    target.add_argument(
        "--spawn",
        action="store_true",
        help="boot an in-process server trained on the trace head",
    )
    loadgen.add_argument("--profile", default="nasa-like")
    loadgen.add_argument(
        "--workload",
        default=None,
        help="drive the server from a live streaming workload instead",
    )
    loadgen.add_argument(
        "--events",
        type=_count_value,
        default=None,
        help="page views to generate and serve (workload mode)",
    )
    loadgen.add_argument(
        "--train-events",
        type=_count_value,
        default=2_000,
        help="stream head used to bootstrap a --spawn server (workload mode)",
    )
    loadgen.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="workload parameter override (repeatable)",
    )
    loadgen.add_argument("--days", type=int, default=1)
    loadgen.add_argument("--train-days", type=int, default=2)
    loadgen.add_argument("--seed", type=_seed_value, default=7)
    loadgen.add_argument("--scale", type=_scale_value, default=1.0)
    loadgen.add_argument("--connections", type=int, default=8)
    loadgen.add_argument("--mode", choices=("combined", "paired"), default="combined")
    loadgen.add_argument("--max-events", type=int, default=None)
    loadgen.add_argument("--threshold", type=float, default=0.25)
    loadgen.add_argument(
        "--refresh-mid-run",
        action="store_true",
        help="fire POST /admin/refresh halfway through (hot-swap under load)",
    )
    loadgen.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the spawned server (needs --spawn)",
    )
    loadgen.add_argument(
        "--wal-dir",
        default=None,
        help="write-ahead journal directory for the spawned server",
    )
    loadgen.add_argument(
        "--wal-fsync",
        choices=("off", "interval", "batch"),
        default=params.SERVE_WAL_FSYNC,
        help="journal fsync policy for the spawned server",
    )
    loadgen.add_argument(
        "--out", default=None, help="write the JSON report (BENCH_serve.json)"
    )
    loadgen.add_argument(
        "--min-prediction-urls",
        type=int,
        default=0,
        help="fail (exit 1) when fewer prediction URLs come back",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection run against a live server + replay",
    )
    chaos.add_argument("--seed", type=_seed_value, default=7)
    chaos.add_argument("--profile", default="nasa-like")
    chaos.add_argument("--scale", type=_scale_value, default=0.3)
    chaos.add_argument("--days", type=int, default=1)
    chaos.add_argument("--train-days", type=int, default=1)
    chaos.add_argument("--connections", type=int, default=6)
    chaos.add_argument("--max-events", type=int, default=400)
    chaos.add_argument(
        "--out", default=None, help="write the JSON report (BENCH_chaos.json)"
    )

    return parser


def _load_trace(source: str, days: int, seed: int, scale: float) -> Trace:
    from repro.trace.columnar import COLUMNAR_SUFFIX

    if source.startswith("synth:"):
        return TraceGenerator(
            profile_by_name(source[len("synth:"):]), seed=seed, scale=scale
        ).generate(days)
    if source.endswith(COLUMNAR_SUFFIX):
        return Trace.from_columnar_file(source)
    return Trace.from_clf_file(source)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.trace.columnar import COLUMNAR_SUFFIX

    if (args.profile is None) == (args.workload is None):
        raise ReproError(
            "pass exactly one traffic source: a profile name or --workload"
        )
    columnar = args.output != "-" and args.output.endswith(COLUMNAR_SUFFIX)
    sampler = _sampler_from_args(args)
    if args.workload is not None:
        from repro.workloads import (
            create_workload,
            stream_to_clf,
            stream_to_columnar,
        )

        if args.events is None:
            raise ReproError("--workload needs --events N")
        workload = create_workload(
            args.workload,
            seed=args.seed,
            scale=args.scale,
            **_parse_workload_params(args.param),
        )
        if columnar:
            count = stream_to_columnar(
                workload,
                args.output,
                events=args.events,
                flush_events=args.flush_events,
                sample=sampler,
            )
        elif args.output == "-":
            count = stream_to_clf(
                workload, sys.stdout, events=args.events, sample=sampler
            )
        else:
            with open(args.output, "w", encoding="ascii") as handle:
                count = stream_to_clf(
                    workload, handle, events=args.events, sample=sampler
                )
        print(f"wrote {count} records", file=sys.stderr)
        return 0
    if args.events is not None:
        raise ReproError("--events only applies to --workload runs")
    generator = TraceGenerator(
        profile_by_name(args.profile), seed=args.seed, scale=args.scale
    )
    if sampler is None and columnar:
        count = generator.generate_to_columnar(args.days, args.output)
    else:
        records = generator.generate_records(args.days)
        if sampler is not None:
            records = list(sampler.sample_records(records))
        if columnar:
            from repro.trace.columnar import StreamingColumnarWriter

            with StreamingColumnarWriter(args.output) as writer:
                for record in records:
                    writer.append(record)
            count = len(writer)
        elif args.output == "-":
            count = write_clf_file(records, sys.stdout)
        else:
            with open(args.output, "w", encoding="ascii") as handle:
                count = write_clf_file(records, handle)
    print(f"wrote {count} records", file=sys.stderr)
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import available_workloads, workload_parameters

    names = [args.name] if args.name else available_workloads()
    for name in names:
        parameters = workload_parameters(name)
        print(name)
        for key, default in sorted(parameters.items()):
            rendered = (
                default if isinstance(default, (int, float, str)) else "..."
            )
            print(f"  {key}={rendered}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from repro.workloads import load_grid_spec, run_grid

    spec = load_grid_spec(args.spec) if args.spec else None
    tree = run_grid(
        spec,
        events=args.events,
        workers=args.workers,
        out=args.out,
        progress=lambda line: print(line, file=sys.stderr),
        sample_rate=args.sample_rate,
        sample_salt=args.sample_salt if args.sample_rate is not None else None,
    )
    if args.out:
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        import json

        print(json.dumps(tree, indent=2, sort_keys=True))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.trace.columnar import (
        COLUMNAR_SUFFIX,
        convert_clf_to_columnar,
        convert_columnar_to_clf,
    )

    if args.source.endswith(COLUMNAR_SUFFIX):
        count = convert_columnar_to_clf(args.source, args.output)
        print(f"wrote {count} CLF lines to {args.output}", file=sys.stderr)
    else:
        stats = convert_clf_to_columnar(
            args.source, args.output, strict=args.strict
        )
        print(
            f"wrote {stats.parsed} records to {args.output} "
            f"({stats.malformed} malformed, {stats.blank} blank of "
            f"{stats.total_lines} lines)",
            file=sys.stderr,
        )
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    trace = _load_trace(args.source, args.days, args.seed, args.scale)
    for label, value in summarize_trace(trace).rows():
        print(f"{label:28s} {value}")
    return 0


def _apply_workers(args: argparse.Namespace) -> None:
    """Honour a ``--workers`` flag for every lab the command touches."""
    workers = getattr(args, "workers", None)
    if workers is not None:
        from repro.experiments.lab import set_default_workers

        set_default_workers(workers)


def _apply_sampling(args: argparse.Namespace) -> None:
    """Honour ``--sample-rate`` for every lab the command touches."""
    rate = getattr(args, "sample_rate", None)
    if rate is not None:
        from repro.experiments.lab import set_default_sampling

        set_default_sampling(rate, getattr(args, "sample_salt", 0))


def _cmd_experiment(args: argparse.Namespace) -> int:
    _apply_workers(args)
    _apply_sampling(args)
    overrides: dict = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seeds:
        from repro.experiments.multiseed import run_multiseed

        result = run_multiseed(args.id, seeds=tuple(args.seeds), **overrides)
    else:
        if args.seed is not None:
            overrides["seed"] = args.seed
        result = run_experiment(args.id, **overrides)
    print(result.to_csv() if args.csv else result.format_table())
    return 0


def _cmd_fidelity(args: argparse.Namespace) -> int:
    from repro.sampling import (
        DEFAULT_FIDELITY_RATES,
        format_fidelity_report,
        pick_rate,
        run_fidelity,
        write_fidelity_report,
    )

    report = run_fidelity(
        workload=args.workload,
        params=_parse_workload_params(args.param),
        events=args.events,
        seeds=tuple(args.seeds) if args.seeds else (0, 1, 2, 3, 4),
        rates=tuple(args.rates) if args.rates else DEFAULT_FIDELITY_RATES,
        train_fraction=args.train_fraction,
        salt=args.salt,
        model=args.model,
        workers=args.workers,
        progress=lambda line: print(line, file=sys.stderr),
    )
    picked = None
    if args.budget is not None:
        picked = pick_rate(report, metric=args.metric, budget=args.budget)
    print(format_fidelity_report(report, picked=picked))
    if args.out:
        write_fidelity_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if picked is not None and picked["picked"] is None:
        return 1
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    _apply_workers(args)
    from repro.experiments.report import all_experiment_ids, build_report

    ids = all_experiment_ids() if args.all else args.ids
    document = build_report(ids, seed=args.seed, scale=args.scale)
    if args.out == "-":
        print(document)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    _apply_workers(args)
    from repro.experiments.shapes import format_outcomes, verify_shapes

    outcomes = verify_shapes(seed=args.seed, scale=args.scale)
    print(format_outcomes(outcomes))
    return 0 if all(outcome.passed for outcome in outcomes) else 1


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.core.render import render_model

    trace = _load_trace(
        f"synth:{args.profile}", args.days + 1, args.seed, args.scale
    )
    split = trace.split(args.days)
    popularity = PopularityTable.from_requests(split.train_requests)
    model = {
        "pb": lambda: PopularityBasedPPM(popularity),
        "standard": StandardPPM,
        "standard3": StandardPPM.order_3,
        "lrs": LRSPPM,
    }[args.model]()
    model.fit(split.train_sessions)
    print(
        render_model(
            model, max_depth=args.max_depth, max_roots=args.max_roots
        )
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.serve.state import ClientSessionTracker, ModelRef

    trace = _load_trace(f"synth:{args.profile}", args.days + 1, args.seed, args.scale)
    split = trace.split(args.days)
    popularity = PopularityTable.from_requests(split.train_requests)
    if args.model == "pb":
        model = PopularityBasedPPM(popularity)
    elif args.model == "standard":
        model = StandardPPM()
    else:
        model = LRSPPM()
    model.fit(split.train_sessions)
    # Drive the same tracker the server uses, so context trimming and
    # cursor handling stay in one place instead of ad-hoc suffix logic.
    tracker = ClientSessionTracker(ModelRef(model))
    for offset, url in enumerate(args.context):
        tracker.observe("cli", url, float(offset))
    predictions, _version = tracker.predict("cli", threshold=args.threshold)
    if not predictions:
        print("(no predictions above threshold)")
        return 0
    for prediction in predictions:
        print(
            f"{prediction.probability:6.3f}  {prediction.url}  "
            f"[order={prediction.order}, {prediction.source}]"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.multiproc import MultiprocServer
    from repro.serve.server import PrefetchServer
    from repro.serve.snapshot import restore_snapshot_state

    kwargs: dict = {
        "host": args.host,
        "port": args.port,
        "snapshot_path": args.snapshot,
        "snapshot_interval_s": args.snapshot_interval,
        "refresh_interval_s": args.refresh_interval,
    }
    if args.fold_interval is not None:
        kwargs["fold_interval_s"] = args.fold_interval
    if args.idle_timeout is not None:
        kwargs["idle_timeout_s"] = args.idle_timeout
    if args.wal_dir is not None:
        kwargs["wal_dir"] = args.wal_dir
        kwargs["wal_fsync"] = args.wal_fsync
        kwargs["wal_segment_max_bytes"] = args.wal_segment_bytes
        kwargs["wal_segment_max_age_s"] = args.wal_segment_age
    if args.workers >= 2:
        kwargs["workers"] = args.workers
        kwargs["socket_mode"] = args.socket_mode
        server_class = MultiprocServer
    else:
        server_class = PrefetchServer
    # Forgiving boot: a corrupt snapshot is quarantined (-> *.corrupt-NNNN,
    # see restore_snapshot_state's log line) and the server bootstraps
    # fresh instead of refusing to start.
    model, boundary = (
        restore_snapshot_state(args.snapshot)
        if args.snapshot
        else (None, None)
    )
    if model is not None:
        print(f"restoring model from {args.snapshot}", file=sys.stderr)
        server = server_class(model, **kwargs)
    else:
        trace = _load_trace(
            f"synth:{args.profile}", args.train_days, args.seed, args.scale
        )
        print(
            f"bootstrapping from {args.train_days} day(s) of {args.profile}",
            file=sys.stderr,
        )
        server = server_class(bootstrap_sessions=list(trace.sessions), **kwargs)
    if args.wal_dir is not None:
        # Replay everything journalled past the snapshot boundary before
        # accepting traffic: acknowledged reports survive a crash.
        recovered = server.recover_journal(boundary)
        if recovered and recovered.get("records_replayed"):
            print(
                "recovered {records_replayed} journalled record(s) from "
                "{segments_scanned} segment(s)".format(**recovered),
                file=sys.stderr,
            )
    server.run()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import format_report, run_loadgen

    if args.workload is None and args.events is not None:
        raise ReproError("--events needs --workload (see repro workloads)")
    report = run_loadgen(
        args.url,
        profile=args.profile,
        workload=args.workload,
        workload_params=_parse_workload_params(args.param),
        events=args.events,
        train_events=args.train_events,
        days=args.days,
        train_days=args.train_days,
        seed=args.seed,
        scale=args.scale,
        connections=args.connections,
        mode=args.mode,
        max_events=args.max_events,
        threshold=args.threshold,
        refresh_mid_run=args.refresh_mid_run,
        spawn=args.spawn,
        workers=args.workers,
        wal_dir=args.wal_dir,
        wal_fsync=args.wal_fsync,
        out=args.out,
    )
    print(format_report(report))
    if args.out:
        print(f"wrote {args.out}", file=sys.stderr)
    if report["failed_requests"]:
        print(
            f"error: {report['failed_requests']} request(s) failed",
            file=sys.stderr,
        )
        return 1
    if report["prediction_urls_returned"] < args.min_prediction_urls:
        print(
            f"error: expected >= {args.min_prediction_urls} prediction URLs, "
            f"got {report['prediction_urls_returned']}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience.chaos import format_chaos_report, run_chaos

    report = run_chaos(
        args.seed,
        profile=args.profile,
        scale=args.scale,
        days=args.days,
        train_days=args.train_days,
        connections=args.connections,
        max_events=args.max_events,
        out=args.out,
    )
    print(format_chaos_report(report))
    if args.out:
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report["ok"] else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "workloads": _cmd_workloads,
    "grid": _cmd_grid,
    "convert": _cmd_convert,
    "summarize": _cmd_summarize,
    "experiment": _cmd_experiment,
    "fidelity": _cmd_fidelity,
    "list": _cmd_list,
    "report": _cmd_report,
    "verify": _cmd_verify,
    "render": _cmd_render,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "chaos": _cmd_chaos,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
