"""repro — Popularity-based PPM web prefetching (Chen & Zhang, ICPP 2002).

A full reproduction of the paper's system: the three prediction models
(standard PPM, LRS-PPM, and the proposed popularity-based PPM), the
access-log substrate they train on, a trace-driven prefetching simulator
with browser and proxy caches, synthetic NASA-like and UCB-like workloads,
and an experiment harness regenerating every table and figure of the
evaluation.

Quickstart::

    from repro import generate_trace, PopularityTable, PopularityBasedPPM

    trace = generate_trace("nasa-like", days=3, seed=7)
    split = trace.split(train_days=2)
    popularity = PopularityTable.from_requests(split.train_requests)
    model = PopularityBasedPPM(popularity).fit(split.train_sessions)
    print(model.predict(["/index.html"]))
"""

from repro.core import (
    LRSPPM,
    PopularityBasedPPM,
    PopularityTable,
    PPMModel,
    Prediction,
    StandardPPM,
    grade_of_relative_popularity,
    mine_longest_repeating_subsequences,
)
from repro.core.extras import FirstOrderMarkov, TopNPush
from repro.kernel import CompactTrie, SymbolTable
from repro.trace import LogRecord, Request, Session, Trace, sessionize
from repro.synth import generate_trace
from repro.sim import (
    LatencyModel,
    LRUCache,
    PrefetchSimulator,
    SimulationConfig,
    SimulationResult,
)

__version__ = "1.0.0"

__all__ = [
    "LRSPPM",
    "PopularityBasedPPM",
    "PopularityTable",
    "PPMModel",
    "Prediction",
    "StandardPPM",
    "grade_of_relative_popularity",
    "mine_longest_repeating_subsequences",
    "FirstOrderMarkov",
    "TopNPush",
    "CompactTrie",
    "SymbolTable",
    "LogRecord",
    "Request",
    "Session",
    "Trace",
    "sessionize",
    "generate_trace",
    "LatencyModel",
    "LRUCache",
    "PrefetchSimulator",
    "SimulationConfig",
    "SimulationResult",
    "__version__",
]
