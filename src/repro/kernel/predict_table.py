"""Compiled prediction tables: predict as an array slice, not a trie walk.

The prediction hot loop — enumerate a matched node's children, divide two
counts, compare against the 0.25 threshold, sort the survivors — repeats
identical work for every click routed through the same node.  This module
moves all of it to build/swap time: one compilation pass flattens a
:class:`~repro.kernel.compact.CompactTrie` into CSR-style numpy arrays so
that at request time a prediction is a row slice and a cursor advance is a
``searchsorted`` probe.

Three array families make up a :class:`PredictTable`:

* **Context rows** — per node, the children that clear the prediction
  threshold, already sorted by ``(-probability, url)``: ``ctx_offsets``
  (CSR offsets, one slot per node), ``ctx_sym`` / ``ctx_prob`` /
  ``ctx_child`` (predicted symbol, conditional probability, child node
  index for usage marking).  A row slice *is* the prediction — no
  per-call threshold check, division or sort.
* **Special rows** — PB-PPM's rule-3 predictions per root: per-URL
  aggregated link counts gated by the special-link threshold, with the
  linked node indices kept per row (``spl_offsets`` / ``spl_nodes``) so
  usage marking stays exact.
* **Transitions** — every ``(parent, symbol) -> child`` edge packed as
  ``((parent + 1) << KEY_SHIFT) | symbol`` in one sorted key array.
  Roots live in the same array (parent -1 packs to slot 0), so
  :meth:`PredictTable.advance_states` resolves a whole click — every
  active suffix state plus the new single-click root — with one
  vectorised ``searchsorted``, and a buffer-mapped worker never pays the
  O(n) child-dict rebuild the eager path needed per remap.

The table is immutable once compiled and carries the thresholds it was
compiled at; dispatch (:meth:`covers`) falls back to the uncompiled path
for any other threshold, so experiment sweeps stay exact.  Row slices are
materialised lazily into tuples of shared frozen
:class:`~repro.core.prediction.Prediction` objects, cached per
``(node, order)`` — repeat visits to hot nodes allocate nothing.

``to_buffer`` / ``from_buffer`` frame the arrays with the same
magic/version/CRC discipline as :mod:`repro.kernel.buffer`, which is how
the table travels inside the shared-memory model segment: the supervisor
compiles once per publish, workers map the arrays zero-copy and never
compile (:data:`COMPILE_COUNT` lets tests assert exactly that).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import params
from repro.core.prediction import Prediction, clears_threshold
from repro.kernel.compact import KEY_SHIFT, CompactTrie
from repro.validation import (
    checksum,
    require_checksum,
    require_length,
    require_magic,
    require_version,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.symbols import SymbolTable

#: Magic prefix of every serialised prediction table.
TABLE_BUFFER_MAGIC = b"RPPT"

#: Format version written into (and required from) every table buffer.
TABLE_BUFFER_VERSION = 1

# magic, version, crc, reserved, threshold, special threshold,
# node count n, context rows, special rows, flattened linked indices.
_HEADER = struct.Struct("<4sIIIddQQQQ")

#: Table compilations performed by this process.  Serving workers map
#: precompiled tables out of the shared segment, so the counter must not
#: move inside a worker — ``tests/serve`` asserts the delta stays zero.
COMPILE_COUNT = 0


def _as_int64(values) -> np.ndarray:
    """A zero-copy int64 view of an ``array('q')`` or 'q'-cast memoryview."""
    if isinstance(values, memoryview):
        return np.asarray(values)
    return np.frombuffer(values, dtype=np.int64)


class PredictTable:
    """Precompiled candidate rows and transitions for one compact store.

    Instances are immutable value objects over ten numpy arrays (see the
    module docstring for the layout) plus two lazy Python-side caches
    that memoise row slices as tuples of shared frozen ``Prediction``
    objects.  Build with :func:`compile_predict_table`, ship with
    :meth:`to_buffer` / :meth:`from_buffer`.
    """

    __slots__ = (
        "threshold",
        "special_threshold",
        "node_count",
        "ctx_offsets",
        "ctx_sym",
        "ctx_prob",
        "ctx_child",
        "spc_offsets",
        "spc_sym",
        "spc_prob",
        "spl_offsets",
        "spl_nodes",
        "trans_keys",
        "trans_child",
        "_row_cache",
        "_special_cache",
    )

    def __init__(
        self,
        *,
        threshold: float,
        special_threshold: float,
        ctx_offsets: np.ndarray,
        ctx_sym: np.ndarray,
        ctx_prob: np.ndarray,
        ctx_child: np.ndarray,
        spc_offsets: np.ndarray,
        spc_sym: np.ndarray,
        spc_prob: np.ndarray,
        spl_offsets: np.ndarray,
        spl_nodes: np.ndarray,
        trans_keys: np.ndarray,
        trans_child: np.ndarray,
    ) -> None:
        self.threshold = float(threshold)
        self.special_threshold = float(special_threshold)
        self.node_count = len(ctx_offsets) - 1
        self.ctx_offsets = ctx_offsets
        self.ctx_sym = ctx_sym
        self.ctx_prob = ctx_prob
        self.ctx_child = ctx_child
        self.spc_offsets = spc_offsets
        self.spc_sym = spc_sym
        self.spc_prob = spc_prob
        self.spl_offsets = spl_offsets
        self.spl_nodes = spl_nodes
        self.trans_keys = trans_keys
        self.trans_child = trans_child
        self._row_cache: dict[tuple[int, int], tuple] = {}
        self._special_cache: dict[int, tuple] = {}

    # -- dispatch --------------------------------------------------------------

    def covers(self, threshold: float) -> bool:
        """Whether the table answers predictions at ``threshold``.

        Rows were filtered at compile time, so only the exact compiled
        threshold is answerable; any other value (an ablation sweep, a
        per-request override) must use the uncompiled path.
        """
        return threshold == self.threshold

    # -- row access ------------------------------------------------------------

    def context_row(
        self, idx: int, order: int, url_of
    ) -> tuple[tuple[Prediction, ...], tuple[int, ...]]:
        """``(predictions, child indices)`` for a matched node.

        Predictions arrive sorted by ``(-probability, url)`` with
        ``order`` already set; the parallel child-index tuple feeds usage
        marking.  The tuple of frozen ``Prediction`` objects is cached
        and shared across calls.
        """
        key = (idx, order)
        row = self._row_cache.get(key)
        if row is None:
            lo = int(self.ctx_offsets[idx])
            hi = int(self.ctx_offsets[idx + 1])
            if lo == hi:
                row = ((), ())
            else:
                probs = self.ctx_prob[lo:hi].tolist()
                syms = self.ctx_sym[lo:hi].tolist()
                row = (
                    tuple(
                        Prediction(
                            url=url_of(sym), probability=prob, order=order
                        )
                        for sym, prob in zip(syms, probs)
                    ),
                    tuple(self.ctx_child[lo:hi].tolist()),
                )
            self._row_cache[key] = row
        return row

    def special_row(
        self, root: int, url_of
    ) -> tuple[tuple[Prediction, ...], tuple[tuple[int, ...], ...]]:
        """``(predictions, linked index groups)`` for a root's special links.

        One prediction per linked URL that cleared the special-link
        threshold (order 0, source ``"special_link"``); the parallel
        groups carry the duplicated nodes aggregated into each row, for
        usage marking.
        """
        row = self._special_cache.get(root)
        if row is None:
            lo = int(self.spc_offsets[root])
            hi = int(self.spc_offsets[root + 1])
            if lo == hi:
                row = ((), ())
            else:
                probs = self.spc_prob[lo:hi].tolist()
                syms = self.spc_sym[lo:hi].tolist()
                bounds = self.spl_offsets[lo : hi + 1].tolist()
                row = (
                    tuple(
                        Prediction(
                            url=url_of(sym),
                            probability=prob,
                            order=0,
                            source="special_link",
                        )
                        for sym, prob in zip(syms, probs)
                    ),
                    tuple(
                        tuple(self.spl_nodes[start:stop].tolist())
                        for start, stop in zip(bounds, bounds[1:])
                    ),
                )
            self._special_cache[root] = row
        return row

    # -- transitions -----------------------------------------------------------

    def _lookup(self, key: int) -> int | None:
        keys = self.trans_keys
        pos = int(np.searchsorted(keys, key))
        if pos < keys.shape[0] and int(keys[pos]) == key:
            return int(self.trans_child[pos])
        return None

    def root_index(self, sym: int) -> int | None:
        """The root node index for a symbol, or None."""
        return self._lookup(sym)

    def child_index(self, parent: int, sym: int) -> int | None:
        """``parent``'s child index for ``sym``, or None."""
        return self._lookup(((parent + 1) << KEY_SHIFT) | sym)

    def advance_states(self, states: list, sym: int) -> list:
        """Extend cursor suffix-match states by one interned click.

        The transition twin of the child-dict walk in
        :meth:`repro.core.base.PPMModel._advance_states`: one vectorised
        ``searchsorted`` resolves every active state, plus the root probe
        for the new single-click suffix.  Returns the advanced
        ``(handle, path)`` states, longest suffix first.
        """
        keys = self.trans_keys
        children = self.trans_child
        size = keys.shape[0]
        advanced = []
        if states:
            probes = [((handle + 1) << KEY_SHIFT) | sym for handle, _ in states]
            positions = np.searchsorted(
                keys, np.asarray(probes, dtype=np.int64)
            ).tolist()
            for (handle, path), probe, pos in zip(states, probes, positions):
                if pos < size and int(keys[pos]) == probe:
                    child = int(children[pos])
                    advanced.append((child, path + [child]))
        root = self._lookup(sym)
        if root is not None:
            advanced.append((root, [root]))
        return advanced

    def match_states(
        self, ids: "Sequence[int | None]"
    ) -> list[tuple[int, list[int]]]:
        """Full-suffix match states for a batch rematch (cursor resync).

        The transition-array twin of
        :func:`repro.core.prediction.compact_suffix_matches`, taking
        already-resolved symbol ids (None for unknown URLs, which cannot
        match).  Longest suffix first.
        """
        states: list[tuple[int, list[int]]] = []
        n = len(ids)
        for start in range(n):
            sym = ids[start]
            if sym is None:
                continue
            idx = self._lookup(sym)
            if idx is None:
                continue
            path = [idx]
            matched = True
            for position in range(start + 1, n):
                nxt_sym = ids[position]
                if nxt_sym is None:
                    matched = False
                    break
                nxt = self._lookup(((idx + 1) << KEY_SHIFT) | nxt_sym)
                if nxt is None:
                    matched = False
                    break
                idx = nxt
                path.append(idx)
            if matched:
                states.append((idx, path))
        return states

    # -- buffer plane ----------------------------------------------------------

    def to_buffer(self) -> bytes:
        """One contiguous CRC-framed buffer holding every array."""
        payload = b"".join(
            np.ascontiguousarray(arr).tobytes()
            for arr in (
                self.ctx_offsets,
                self.ctx_sym,
                self.ctx_prob,
                self.ctx_child,
                self.spc_offsets,
                self.spc_sym,
                self.spc_prob,
                self.spl_offsets,
                self.spl_nodes,
                self.trans_keys,
                self.trans_child,
            )
        )
        header = _HEADER.pack(
            TABLE_BUFFER_MAGIC,
            TABLE_BUFFER_VERSION,
            checksum(payload),
            0,
            self.threshold,
            self.special_threshold,
            self.node_count,
            len(self.ctx_sym),
            len(self.spc_sym),
            len(self.spl_nodes),
        )
        return header + payload

    @classmethod
    def from_buffer(cls, data: "bytes | bytearray | memoryview") -> "PredictTable":
        """Reconstruct a table from :meth:`to_buffer` bytes, zero-copy.

        The arrays are read-only views into ``data`` — when that is a
        shared-memory segment, the worker's table *is* the segment.
        Raises :class:`~repro.errors.ModelError` on a bad magic, version,
        truncation or checksum mismatch.
        """
        view = memoryview(data).toreadonly().cast("B")
        require_length(len(view), _HEADER.size, "predict-table buffer")
        (
            magic,
            version,
            stored_crc,
            _reserved,
            threshold,
            special_threshold,
            n,
            ctx_len,
            spc_len,
            spl_len,
        ) = _HEADER.unpack_from(view)
        require_magic(magic, TABLE_BUFFER_MAGIC, "predict-table buffer")
        require_version(
            version, TABLE_BUFFER_VERSION, "predict-table buffer version"
        )
        sizes = (
            ("ctx_offsets", n + 1, np.int64),
            ("ctx_sym", ctx_len, np.int64),
            ("ctx_prob", ctx_len, np.float64),
            ("ctx_child", ctx_len, np.int64),
            ("spc_offsets", n + 1, np.int64),
            ("spc_sym", spc_len, np.int64),
            ("spc_prob", spc_len, np.float64),
            ("spl_offsets", spc_len + 1, np.int64),
            ("spl_nodes", spl_len, np.int64),
            ("trans_keys", n, np.int64),
            ("trans_child", n, np.int64),
        )
        payload_len = sum(count * 8 for _name, count, _dtype in sizes)
        require_length(
            len(view) - _HEADER.size, payload_len, "predict-table buffer"
        )
        payload = view[_HEADER.size : _HEADER.size + payload_len]
        require_checksum(stored_crc, checksum(payload), "predict-table buffer")
        arrays: dict[str, np.ndarray] = {}
        offset = 0
        for name, count, dtype in sizes:
            arrays[name] = np.frombuffer(
                payload, dtype=dtype, count=count, offset=offset
            )
            offset += count * 8
        return cls(
            threshold=threshold, special_threshold=special_threshold, **arrays
        )

    def storage_bytes(self) -> int:
        """Bytes held by the table's arrays (diagnostics)."""
        return sum(
            arr.nbytes
            for arr in (
                self.ctx_offsets,
                self.ctx_sym,
                self.ctx_prob,
                self.ctx_child,
                self.spc_offsets,
                self.spc_sym,
                self.spc_prob,
                self.spl_offsets,
                self.spl_nodes,
                self.trans_keys,
                self.trans_child,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"PredictTable(nodes={self.node_count}, "
            f"rows={len(self.ctx_sym)}, special={len(self.spc_sym)}, "
            f"threshold={self.threshold})"
        )


def compile_predict_table(
    store: CompactTrie,
    symbols: "SymbolTable",
    *,
    threshold: float = params.PREDICTION_PROBABILITY_THRESHOLD,
    special_threshold: float = params.SPECIAL_LINK_THRESHOLD,
) -> PredictTable | None:
    """Flatten a compact store into a :class:`PredictTable`.

    Returns None for a store with garbage slots (after deletions and
    before :meth:`~repro.kernel.compact.CompactTrie.compacted`): its node
    indices would not survive densification, and every path that serves
    predictions — fresh fits, pruned dense stores, buffer mappings —
    is dense already.
    """
    n = len(store.syms)
    if n != store.node_count:
        return None
    global COMPILE_COUNT
    COMPILE_COUNT += 1
    url_of = symbols.url
    syms = _as_int64(store.syms)
    counts = _as_int64(store.counts)
    parents = _as_int64(store.parents)

    # Transitions: every edge (roots included, parent -1 packs to slot 0)
    # as one sorted key array for searchsorted probes.
    keys = ((parents + 1) << KEY_SHIFT) | syms
    order = np.argsort(keys, kind="stable")
    trans_keys = keys[order]
    trans_child = order.astype(np.int64)

    # Context rows: qualifying children grouped per parent.  The
    # division below is the same int64 / int64 -> float64 the uncompiled
    # path performs per request, so probabilities are bit-identical.
    non_root = parents >= 0
    parent_idx = np.where(non_root, parents, 0)
    parent_counts = counts[parent_idx]
    probs = np.zeros(n, dtype=np.float64)
    np.divide(counts, parent_counts, out=probs, where=parent_counts > 0)
    qualify = (
        non_root
        & (parent_counts > 0)
        & (probs + params.PROBABILITY_EPSILON >= threshold)
    )
    cand = np.nonzero(qualify)[0]
    grouped = cand[np.argsort(parents[cand], kind="stable")]
    row_counts = np.bincount(parents[cand], minlength=n) if len(cand) else (
        np.zeros(n, dtype=np.int64)
    )
    ctx_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(row_counts, out=ctx_offsets[1:])
    ctx_child = np.empty(len(grouped), dtype=np.int64)
    ctx_sym = np.empty(len(grouped), dtype=np.int64)
    ctx_prob = np.empty(len(grouped), dtype=np.float64)
    grouped_list = grouped.tolist()
    grouped_probs = probs[grouped].tolist()
    grouped_syms = syms[grouped].tolist()
    offsets_list = ctx_offsets.tolist()
    for parent in np.nonzero(row_counts)[0].tolist():
        lo, hi = offsets_list[parent], offsets_list[parent + 1]
        entries = sorted(
            range(lo, hi),
            key=lambda i: (-grouped_probs[i], url_of(grouped_syms[i])),
        )
        for out_pos, i in enumerate(entries, start=lo):
            ctx_child[out_pos] = grouped_list[i]
            ctx_sym[out_pos] = grouped_syms[i]
            ctx_prob[out_pos] = grouped_probs[i]

    # Special rows: PB-PPM's per-root linked predictions, aggregated by
    # URL, gated by the special-link threshold, with the contributing
    # node indices kept per row for usage marking.
    counts_list = counts.tolist()
    syms_list = syms.tolist()
    spc_row_counts = np.zeros(n, dtype=np.int64)
    spc_sym_list: list[int] = []
    spc_prob_list: list[float] = []
    spl_offsets_list: list[int] = [0]
    spl_nodes_list: list[int] = []
    for root in sorted(store.special_links):
        total = counts_list[root]
        if total <= 0:
            continue
        aggregated: dict[int, int] = {}
        groups: dict[int, list[int]] = {}
        for linked in store.special_links[root]:
            sym = syms_list[linked]
            aggregated[sym] = aggregated.get(sym, 0) + counts_list[linked]
            groups.setdefault(sym, []).append(linked)
        entries = []
        for sym, aggregate in aggregated.items():
            probability = min(1.0, aggregate / total)
            if clears_threshold(probability, special_threshold):
                entries.append((probability, sym))
        if not entries:
            continue
        entries.sort(key=lambda e: (-e[0], url_of(e[1])))
        spc_row_counts[root] = len(entries)
        for probability, sym in entries:
            spc_sym_list.append(sym)
            spc_prob_list.append(probability)
            spl_nodes_list.extend(groups[sym])
            spl_offsets_list.append(len(spl_nodes_list))
    spc_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(spc_row_counts, out=spc_offsets[1:])

    return PredictTable(
        threshold=threshold,
        special_threshold=special_threshold,
        ctx_offsets=ctx_offsets,
        ctx_sym=ctx_sym,
        ctx_prob=ctx_prob,
        ctx_child=ctx_child,
        spc_offsets=spc_offsets,
        spc_sym=np.asarray(spc_sym_list, dtype=np.int64),
        spc_prob=np.asarray(spc_prob_list, dtype=np.float64),
        spl_offsets=np.asarray(spl_offsets_list, dtype=np.int64),
        spl_nodes=np.asarray(spl_nodes_list, dtype=np.int64),
        trans_keys=trans_keys,
        trans_child=trans_child,
    )
