"""Dense integer interning of URLs.

Every distinct URL is assigned one id, in first-seen order, so the trie
kernels can key children on machine integers.  Ids are dense (``0..n-1``),
which lets grade tables and other per-URL side data live in flat lists
indexed by symbol instead of string-keyed dicts.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class SymbolTable:
    """A bijection between URLs and dense integer symbol ids.

    Ids are handed out in first-intern order starting at 0 and are never
    reused, so any sequence interned through one table stays decodable for
    the table's lifetime.  Tables pickle as a flat URL list, which is what
    makes interned model shards cheap to ship to worker processes.
    """

    __slots__ = ("_ids", "_urls")

    def __init__(self, urls: Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._urls: list[str] = []
        for url in urls:
            self.intern(url)

    # -- interning -----------------------------------------------------------

    def intern(self, url: str) -> int:
        """Return the id for ``url``, assigning the next dense id if new."""
        sym = self._ids.get(url)
        if sym is None:
            sym = len(self._urls)
            self._ids[url] = sym
            self._urls.append(url)
        return sym

    def intern_sequence(self, urls: Sequence[str]) -> tuple[int, ...]:
        """Intern a URL sequence in one pass (the per-session hot path)."""
        get = self._ids.get
        out: list[int] = []
        append = out.append
        for url in urls:
            sym = get(url)
            if sym is None:
                sym = len(self._urls)
                self._ids[url] = sym
                self._urls.append(url)
            append(sym)
        return tuple(out)

    # -- lookups -------------------------------------------------------------

    def get(self, url: str) -> int | None:
        """The id for ``url``, or None when it was never interned."""
        return self._ids.get(url)

    def url(self, sym: int) -> str:
        """The URL a symbol id stands for."""
        return self._urls[sym]

    def urls(self) -> tuple[str, ...]:
        """Every interned URL, in id order."""
        return tuple(self._urls)

    def __len__(self) -> int:
        return len(self._urls)

    def __contains__(self, url: str) -> bool:
        return url in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._urls)

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> list[str]:
        return self._urls

    def __setstate__(self, urls: list[str]) -> None:
        self._urls = list(urls)
        self._ids = {url: sym for sym, url in enumerate(self._urls)}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"SymbolTable({len(self._urls)} urls)"
