"""A struct-of-arrays trie store for Markov prediction forests.

One :class:`CompactTrie` holds an entire model forest.  Node *i* is
described by five parallel integer arrays (symbol, traversal count,
parent, first child, next sibling) plus one byte of usage flag; child
lookup goes through a single packed ``(parent << 32) | symbol -> child``
integer map instead of a per-node dict, so the build and match hot loops
run on machine-integer hashing and never allocate a Python object per
node.  The sibling chain exists so children can be enumerated without
consulting the packed map.

The store converts losslessly to and from the
:class:`~repro.core.node.TrieNode` forest the rest of the library's tree
API (serialisation, rendering, pruning ablations, statistics) is written
against: counts, usage flags and PB-PPM special links all survive the
round trip, in order.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.node import TrieNode
    from repro.kernel.symbols import SymbolTable

#: Bits reserved for the symbol in a packed child-map key.  Symbols are
#: dense ids, so 2**32 distinct URLs bounds the key scheme, far beyond any
#: trace this library targets.
KEY_SHIFT = 32

_NO_NODE = -1


class CompactTrie:
    """An append-only, array-backed prediction forest.

    Attributes
    ----------
    syms / counts / parents / first_child / next_sibling:
        Parallel per-node integer arrays.  ``first_child`` and
        ``next_sibling`` encode each node's child list as an intrusive
        linked chain (newest child first); -1 means "none".
    used:
        One byte per node, the prediction engine's usage flag.
    children:
        The packed ``(parent << 32) | symbol -> child index`` map used for
        O(1) child lookup on the hot paths.
    roots:
        Root node index per root symbol, in creation order.
    special_links:
        PB-PPM's rule-3 links: ``root index -> [linked node index, ...]``
        in link-creation order (the order serialisation preserves).
    """

    def __init__(self) -> None:
        self.syms = array("q")
        self.counts = array("q")
        self.parents = array("q")
        self.first_child = array("q")
        self.next_sibling = array("q")
        self.used = bytearray()
        self._children: dict[int, int] | None = {}
        self._roots: dict[int, int] | None = {}
        self.special_links: dict[int, list[int]] = {}
        self._live = 0

    # -- child / root maps -----------------------------------------------------

    @property
    def children(self) -> dict[int, int]:
        """The packed ``(parent << 32) | symbol -> child index`` map.

        Buffer-mapped stores defer building it (a compiled
        :class:`~repro.kernel.predict_table.PredictTable` makes it
        redundant for serving); first access builds both maps in one pass
        over the arrays.
        """
        if self._children is None:
            self._build_maps()
        return self._children

    @children.setter
    def children(self, value: dict[int, int]) -> None:
        self._children = value

    @property
    def roots(self) -> dict[int, int]:
        """Root node index per root symbol (lazily built like ``children``)."""
        if self._roots is None:
            self._build_maps()
        return self._roots

    @roots.setter
    def roots(self, value: dict[int, int]) -> None:
        self._roots = value

    @property
    def has_child_map(self) -> bool:
        """Whether the packed child map is already built (no lazy cost)."""
        return self._children is not None

    def _build_maps(self) -> None:
        # Only buffer-mapped stores defer the maps, and those are always
        # dense (trie_to_buffer compacts first), so every slot is live.
        roots: dict[int, int] = {}
        children: dict[int, int] = {}
        syms = self.syms
        for idx, parent in enumerate(self.parents):
            if parent == _NO_NODE:
                roots[syms[idx]] = idx
            else:
                children[(parent << KEY_SHIFT) | syms[idx]] = idx
        self._roots = roots
        self._children = children

    # -- node creation -------------------------------------------------------

    def _new_node(self, sym: int, parent: int) -> int:
        idx = len(self.syms)
        self.syms.append(sym)
        self.counts.append(0)
        self.parents.append(parent)
        self.first_child.append(_NO_NODE)
        self.next_sibling.append(_NO_NODE)
        self.used.append(0)
        self._live += 1
        return idx

    def ensure_root(self, sym: int) -> int:
        """Index of the root for ``sym``, creating it (count 0) if absent."""
        idx = self.roots.get(sym)
        if idx is None:
            idx = self._new_node(sym, _NO_NODE)
            self.roots[sym] = idx
        return idx

    def ensure_child(self, parent: int, sym: int) -> int:
        """Index of ``parent``'s child for ``sym``, creating it if absent."""
        key = (parent << KEY_SHIFT) | sym
        idx = self.children.get(key)
        if idx is None:
            idx = self._new_node(sym, parent)
            self.next_sibling[idx] = self.first_child[parent]
            self.first_child[parent] = idx
            self.children[key] = idx
        return idx

    # -- lookups -------------------------------------------------------------

    def child(self, parent: int, sym: int) -> int | None:
        """Index of ``parent``'s child for ``sym``, or None."""
        return self.children.get((parent << KEY_SHIFT) | sym)

    def iter_children(self, idx: int) -> Iterator[tuple[int, int]]:
        """Yield ``(symbol, child index)`` along the sibling chain."""
        child = self.first_child[idx]
        syms = self.syms
        sibling = self.next_sibling
        while child != _NO_NODE:
            yield syms[child], child
            child = sibling[child]

    def walk_indices(self, idx: int) -> Iterator[int]:
        """Yield ``idx`` and every descendant index (pre-order)."""
        stack = [idx]
        first = self.first_child
        sibling = self.next_sibling
        while stack:
            node = stack.pop()
            yield node
            child = first[node]
            while child != _NO_NODE:
                stack.append(child)
                child = sibling[child]

    @property
    def node_count(self) -> int:
        """Number of reachable nodes — the paper's space metric."""
        return self._live

    def __len__(self) -> int:
        return self._live

    # -- insertion hot paths -------------------------------------------------

    def insert_suffix(
        self, ids: Sequence[int], start: int, stop: int, weight: int = 1
    ) -> int:
        """Insert the id path ``ids[start:stop]`` from the root level.

        Bumps every traversed count by ``weight`` and returns the index of
        the path's last node.  This is the build hot loop: one packed-map
        probe per step, no slicing, no per-node object allocation.
        """
        sym = ids[start]
        idx = self.roots.get(sym)
        if idx is None:
            idx = self._new_node(sym, _NO_NODE)
            self.roots[sym] = idx
        counts = self.counts
        counts[idx] += weight
        children = self.children
        for position in range(start + 1, stop):
            sym = ids[position]
            key = (idx << KEY_SHIFT) | sym
            nxt = children.get(key)
            if nxt is None:
                nxt = self._new_node(sym, idx)
                self.next_sibling[nxt] = self.first_child[idx]
                self.first_child[idx] = nxt
                children[key] = nxt
            counts[nxt] += weight
            idx = nxt
        return idx

    def insert_path(self, ids: Sequence[int], weight: int = 1) -> int | None:
        """Insert a whole id path (:meth:`insert_suffix` over all of it)."""
        if not ids:
            return None
        return self.insert_suffix(ids, 0, len(ids), weight)

    # -- deletion ------------------------------------------------------------

    def _unlink_subtree(self, idx: int) -> list[int]:
        """Drop the subtree rooted at ``idx`` from every index structure.

        Array slots are left in place as garbage (they are unreachable);
        :meth:`compacted` rebuilds dense storage.  Returns the removed
        indices.
        """
        removed: list[int] = []
        stack = [idx]
        first = self.first_child
        sibling = self.next_sibling
        syms = self.syms
        children = self.children
        while stack:
            node = stack.pop()
            removed.append(node)
            child = first[node]
            while child != _NO_NODE:
                children.pop((node << KEY_SHIFT) | syms[child], None)
                stack.append(child)
                child = sibling[child]
            first[node] = _NO_NODE
        self._live -= len(removed)
        return removed

    def delete_child(self, parent: int, sym: int) -> list[int]:
        """Remove ``parent``'s child for ``sym`` with its whole subtree.

        Returns the removed node indices (for special-link cleanup).
        """
        key = (parent << KEY_SHIFT) | sym
        idx = self.children.pop(key, None)
        if idx is None:
            return []
        cursor = self.first_child[parent]
        if cursor == idx:
            self.first_child[parent] = self.next_sibling[idx]
        else:
            sibling = self.next_sibling
            while sibling[cursor] != idx:
                cursor = sibling[cursor]
            sibling[cursor] = sibling[idx]
        return self._unlink_subtree(idx)

    def delete_root(self, sym: int) -> list[int]:
        """Remove the root for ``sym`` with its whole branch set."""
        idx = self.roots.pop(sym, None)
        if idx is None:
            return []
        self.special_links.pop(idx, None)
        return self._unlink_subtree(idx)

    def drop_special_links_to(self, removed: Sequence[int]) -> None:
        """Filter dangling special links after subtree removals."""
        if not removed or not self.special_links:
            return
        gone = set(removed)
        for root_idx in list(self.special_links):
            kept = [idx for idx in self.special_links[root_idx] if idx not in gone]
            if kept:
                self.special_links[root_idx] = kept
            else:
                del self.special_links[root_idx]

    def compacted(self) -> "CompactTrie":
        """A dense copy with every garbage slot dropped.

        Call after deletion-heavy builds (LRS level pruning, the PB space
        optimisations) so the arrays shrink back to the live node set.
        """
        dense = CompactTrie()
        remap: dict[int, int] = {}
        for sym, root in self.roots.items():
            new_root = dense.ensure_root(sym)
            dense.counts[new_root] = self.counts[root]
            dense.used[new_root] = self.used[root]
            remap[root] = new_root
            stack = [root]
            while stack:
                old = stack.pop()
                new = remap[old]
                for child_sym, child in self.iter_children(old):
                    new_child = dense.ensure_child(new, child_sym)
                    dense.counts[new_child] = self.counts[child]
                    dense.used[new_child] = self.used[child]
                    remap[child] = new_child
                    stack.append(child)
        for root_idx, links in self.special_links.items():
            if root_idx in remap:
                mapped = [remap[idx] for idx in links if idx in remap]
                if mapped:
                    dense.special_links[remap[root_idx]] = mapped
        return dense

    # -- usage flags and path statistics --------------------------------------

    def reset_used(self) -> None:
        """Clear every usage flag."""
        self.used = bytearray(len(self.used))

    def path_stats(self) -> tuple[int, int]:
        """``(leaf paths, used leaf paths)`` — Figure 2's utilisation input."""
        total = 0
        used_total = 0
        first = self.first_child
        sibling = self.next_sibling
        used = self.used
        for root in self.roots.values():
            stack = [root]
            while stack:
                idx = stack.pop()
                child = first[idx]
                if child == _NO_NODE:
                    total += 1
                    if used[idx]:
                        used_total += 1
                else:
                    while child != _NO_NODE:
                        stack.append(child)
                        child = sibling[child]
        return total, used_total

    def collect_used_paths(
        self, symbols: "SymbolTable"
    ) -> list[tuple[str, ...]]:
        """Root URL paths of every node whose usage flag is set.

        Deterministic order matching the :class:`TrieNode` collector in
        :mod:`repro.parallel.worker`: roots sorted by URL, children
        visited in URL order.
        """
        url_of = symbols.url
        paths: list[tuple[str, ...]] = []
        for sym in sorted(self.roots, key=url_of):
            stack: list[tuple[int, tuple[str, ...]]] = [
                (self.roots[sym], (url_of(sym),))
            ]
            while stack:
                idx, path = stack.pop()
                if self.used[idx]:
                    paths.append(path)
                pairs = sorted(
                    self.iter_children(idx),
                    key=lambda pair: url_of(pair[0]),
                    reverse=True,
                )
                for child_sym, child in pairs:
                    stack.append((child, path + (url_of(child_sym),)))
        return paths

    def mark_used_paths(
        self, symbols: "SymbolTable", paths: Sequence[tuple[str, ...]]
    ) -> None:
        """Set the usage flag on the nodes named by root URL paths.

        Paths that no longer resolve are ignored, mirroring the
        :class:`TrieNode` marker.
        """
        get_sym = symbols.get
        for path in paths:
            if not path:
                continue
            sym = get_sym(path[0])
            idx = self.roots.get(sym) if sym is not None else None
            for url in path[1:]:
                if idx is None:
                    break
                sym = get_sym(url)
                idx = self.child(idx, sym) if sym is not None else None
            if idx is not None:
                self.used[idx] = 1

    # -- conversion ----------------------------------------------------------

    def to_node_forest(self, symbols: "SymbolTable") -> "dict[str, TrieNode]":
        """Materialise the equivalent :class:`TrieNode` forest (lossless)."""
        from repro.core.node import TrieNode

        url_of = symbols.url
        node_of: dict[int, TrieNode] = {}
        forest: dict[str, TrieNode] = {}
        for sym, root in self.roots.items():
            root_node = TrieNode(url_of(sym), self.counts[root])
            root_node.used = bool(self.used[root])
            node_of[root] = root_node
            forest[root_node.url] = root_node
            stack = [root]
            while stack:
                idx = stack.pop()
                parent_node = node_of[idx]
                for child_sym, child in self.iter_children(idx):
                    child_node = TrieNode(url_of(child_sym), self.counts[child])
                    child_node.used = bool(self.used[child])
                    parent_node.children[child_node.url] = child_node
                    node_of[child] = child_node
                    stack.append(child)
        for root_idx, links in self.special_links.items():
            node_of[root_idx].special_links = [node_of[idx] for idx in links]
        return forest

    @classmethod
    def from_node_forest(
        cls, roots: "Mapping[str, TrieNode]", symbols: "SymbolTable"
    ) -> "CompactTrie":
        """Build a store equivalent to a :class:`TrieNode` forest.

        ``symbols`` is extended in place with any URL the forest contains.
        """
        store = cls()
        intern = symbols.intern
        index_of: dict[int, int] = {}
        for url, root in roots.items():
            root_idx = store.ensure_root(intern(url))
            store.counts[root_idx] = root.count
            store.used[root_idx] = 1 if root.used else 0
            index_of[id(root)] = root_idx
            stack = [(root, root_idx)]
            while stack:
                node, idx = stack.pop()
                for child_url, child in node.children.items():
                    child_idx = store.ensure_child(idx, intern(child_url))
                    store.counts[child_idx] = child.count
                    store.used[child_idx] = 1 if child.used else 0
                    index_of[id(child)] = child_idx
                    stack.append((child, child_idx))
        for url, root in roots.items():
            if root.special_links:
                linked = [
                    index_of[id(node)]
                    for node in root.special_links
                    if id(node) in index_of
                ]
                if linked:
                    store.special_links[index_of[id(root)]] = linked
        return store

    # -- buffer plane ----------------------------------------------------------

    def to_buffer(self) -> bytes:
        """One contiguous buffer holding the whole store (header + arrays).

        The zero-copy plane used by shared-memory serving; see
        :mod:`repro.kernel.buffer` for the layout.
        """
        from repro.kernel.buffer import trie_to_buffer

        return trie_to_buffer(self)

    @classmethod
    def from_buffer(
        cls, data: "bytes | bytearray | memoryview", *, copy: bool = False
    ) -> "CompactTrie":
        """Reconstruct a store from :meth:`to_buffer` bytes.

        Zero-copy by default (the arrays are read-only views into
        ``data``); ``copy=True`` builds a private mutable store.  Raises
        :class:`~repro.errors.ModelError` on a bad magic, version,
        truncation or checksum mismatch.
        """
        from repro.kernel.buffer import trie_from_buffer

        return trie_from_buffer(data, copy=copy)

    # -- introspection -------------------------------------------------------

    def storage_bytes(self) -> int:
        """Approximate bytes held by the array storage (diagnostics)."""
        arrays = (
            self.syms,
            self.counts,
            self.parents,
            self.first_child,
            self.next_sibling,
        )
        # Buffer-backed stores (from_buffer) hold memoryviews, which have
        # no over-allocation to report; arrays report allocated slots.
        total = sum(
            a.buffer_info()[1] * a.itemsize
            if isinstance(a, array)
            else len(a) * a.itemsize
            for a in arrays
        )
        return total + len(self.used)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"CompactTrie(nodes={self._live}, roots={len(self.roots)}, "
            f"slots={len(self.syms)})"
        )
