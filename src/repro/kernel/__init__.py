"""The compact model kernel: interned URL ids and array-backed tries.

The paper's selling point is high accuracy at *low storage*, yet a naive
reproduction spends most of its build time and memory on Python string
keys and one ``dict``-of-children object per trie node.  This package is
the storage/latency substrate every model builds on when the compact
kernel is enabled (the default, see
:data:`repro.params.COMPACT_MODEL_KERNEL`):

* :mod:`repro.kernel.symbols` — :class:`SymbolTable` interns every URL
  into a dense integer id once, so the hot trie loops hash machine
  integers instead of URL strings;
* :mod:`repro.kernel.compact` — :class:`CompactTrie` stores a whole
  prediction forest in parallel integer arrays (counts / parents /
  first-child / next-sibling) plus one packed ``(parent, symbol) -> child``
  int map, with lossless conversion to and from the
  :class:`~repro.core.node.TrieNode` forest API;
* :mod:`repro.kernel.bulk` — vectorised level-by-level trie
  construction: the PPM builds are n-gram counting, so the whole forest
  is discovered with ``np.unique`` over packed (parent, symbol) keys and
  loaded into the arrays in bulk;
* :mod:`repro.kernel.prune` — the paper's two space-optimisation passes
  reimplemented over the array store.

Equivalence guarantee: a model fitted through the compact kernel
predicts, serialises and renders **identically** to one fitted on
:class:`~repro.core.node.TrieNode` objects; ``tests/kernel/`` pins this
contract model by model.
"""

from repro.kernel.buffer import (
    TRIE_BUFFER_VERSION,
    trie_from_buffer,
    trie_to_buffer,
)
from repro.kernel.bulk import build_branch_trie, build_ngram_trie, dedup_sequences
from repro.kernel.compact import CompactTrie
from repro.kernel.prune import (
    prune_compact_by_absolute_count,
    prune_compact_by_relative_probability,
    prune_dense,
)
from repro.kernel.symbols import SymbolTable

__all__ = [
    "CompactTrie",
    "SymbolTable",
    "TRIE_BUFFER_VERSION",
    "trie_from_buffer",
    "trie_to_buffer",
    "build_branch_trie",
    "build_ngram_trie",
    "dedup_sequences",
    "prune_compact_by_absolute_count",
    "prune_compact_by_relative_probability",
    "prune_dense",
]
