"""The zero-copy buffer plane of the compact kernel.

Serialises a :class:`~repro.kernel.compact.CompactTrie` into one
contiguous bytes block — the five parallel int64 arrays, the usage bytes
and the special links, behind a fixed header — so a whole prediction
forest can live in a single ``multiprocessing.shared_memory`` segment and
be mapped read-only by N serving workers at once instead of copied N
times.

Layout (little-endian)::

    offset  size  field
    0       4     magic  b"RPTR"
    4       4     format version (TRIE_BUFFER_VERSION)
    8       4     CRC-32 of the payload (everything after the header)
    12      4     reserved (0)
    16      8     node count n
    24      8     special-links section length, in int64 entries
    32      n*8   syms
    ..      n*8   counts
    ..      n*8   parents
    ..      n*8   first_child
    ..      n*8   next_sibling
    ..      n     used bytes, zero-padded to a multiple of 8
    ..      L*8   special links, flattened as (root, k, link*k) groups

The child map and the root table are *not* stored: both are fully implied
by ``parents`` and ``syms`` (a node with parent -1 is a root; every other
node is its parent's child for its own symbol), so
:func:`trie_from_buffer` rebuilds them in one pass and the wire format
cannot desynchronise from the arrays.

``trie_from_buffer`` is zero-copy by default: the arrays are read-only
``memoryview`` casts straight into the caller's buffer, which stays the
case when that buffer is a shared-memory segment — the worker's model
then *is* the segment.  A view-backed trie rejects mutation (the views
are read-only); pass ``copy=True`` for a private, mutable store.

Trailing bytes beyond what the header promises are ignored, because POSIX
shared memory rounds segment sizes up to a page.
"""

from __future__ import annotations

import struct
from array import array

from repro.kernel.compact import CompactTrie
from repro.validation import (
    checksum,
    require_checksum,
    require_length,
    require_magic,
    require_version,
)

#: Magic prefix of every trie buffer.
TRIE_BUFFER_MAGIC = b"RPTR"

#: Format version written into (and required from) every trie buffer.
TRIE_BUFFER_VERSION = 1

_HEADER = struct.Struct("<4sIIIQQ")


def _padded(length: int) -> int:
    return (length + 7) & ~7


def trie_to_buffer(store: CompactTrie) -> bytes:
    """Serialise ``store`` into one contiguous buffer (header + arrays).

    Deletion leaves garbage slots in the arrays; a store with any is
    densified first (:meth:`~repro.kernel.compact.CompactTrie.compacted`)
    so node indices in the buffer are exactly ``0..n-1`` and readers never
    see unreachable slots.
    """
    if len(store.syms) != store.node_count:
        store = store.compacted()
    n = len(store.syms)
    links = array("q")
    for root_idx, linked in store.special_links.items():
        links.append(root_idx)
        links.append(len(linked))
        links.extend(linked)
    used = bytes(store.used).ljust(_padded(n), b"\x00")
    payload = b"".join(
        (
            store.syms.tobytes(),
            store.counts.tobytes(),
            store.parents.tobytes(),
            store.first_child.tobytes(),
            store.next_sibling.tobytes(),
            used,
            links.tobytes(),
        )
    )
    header = _HEADER.pack(
        TRIE_BUFFER_MAGIC,
        TRIE_BUFFER_VERSION,
        checksum(payload),
        0,
        n,
        len(links),
    )
    return header + payload


def trie_from_buffer(data: bytes | bytearray | memoryview, *, copy: bool = False) -> CompactTrie:
    """Reconstruct a :class:`CompactTrie` from :func:`trie_to_buffer` bytes.

    With ``copy=False`` (the default) the five node arrays and the usage
    bytes are read-only views into ``data`` — zero copies, which is the
    point of the shared-memory plane; the caller must keep the underlying
    buffer alive for the trie's lifetime.  With ``copy=True`` the store
    owns private mutable arrays.

    Raises :class:`~repro.errors.ModelError` on a wrong magic, an
    unsupported format version, a truncated buffer or a checksum mismatch.
    """
    view = memoryview(data).toreadonly().cast("B")
    require_length(len(view), _HEADER.size, "compact-trie buffer")
    magic, version, stored_crc, _reserved, n, links_len = _HEADER.unpack_from(view)
    require_magic(magic, TRIE_BUFFER_MAGIC, "compact-trie buffer")
    require_version(version, TRIE_BUFFER_VERSION, "compact-trie buffer version")
    payload_len = 5 * n * 8 + _padded(n) + links_len * 8
    require_length(len(view) - _HEADER.size, payload_len, "compact-trie buffer")
    payload = view[_HEADER.size : _HEADER.size + payload_len]
    require_checksum(stored_crc, checksum(payload), "compact-trie buffer")

    offset = 0

    def int64_section(count: int):
        nonlocal offset
        raw = payload[offset : offset + count * 8]
        offset += count * 8
        if copy:
            copied = array("q")
            copied.frombytes(raw)
            return copied
        return raw.cast("q")

    store = CompactTrie()
    store.syms = int64_section(n)
    store.counts = int64_section(n)
    store.parents = int64_section(n)
    store.first_child = int64_section(n)
    store.next_sibling = int64_section(n)
    used = payload[offset : offset + n]
    offset = offset + _padded(n)
    store.used = bytearray(used) if copy else used
    links = payload[offset : offset + links_len * 8].cast("q")

    # The root table and packed child map are fully implied by the arrays;
    # defer building them so a worker serving from a compiled prediction
    # table (which carries its own transition array) never pays the O(n)
    # rebuild per remap.  First access to .roots / .children builds both.
    store._roots = None
    store._children = None

    special_links: dict[int, list[int]] = {}
    cursor = 0
    while cursor < links_len:
        root_idx = links[cursor]
        count = links[cursor + 1]
        cursor += 2
        special_links[root_idx] = list(links[cursor : cursor + count])
        cursor += count
    store.special_links = special_links
    store._live = n
    return store
