"""Vectorised bulk construction of compact prediction tries.

The build loops of the PPM family reduce to *n-gram counting*:

* Standard PPM inserts, for every start position of every session, the
  window capped at ``max_height`` — its trie holds every n-gram of
  length <= ``max_height`` together with its occurrence count.
* LRS-PPM's Apriori level build keeps exactly the n-grams occurring at
  least ``min_repeats`` times: an n-gram's count is monotone
  non-increasing under extension (every occurrence of an extension
  contains an occurrence of the prefix), so the level-wise pruning
  equals a plain per-level count filter.
* The first-order Markov baseline is the ``max_height=2`` special case.
* PB-PPM opens windows only at rule-4 root positions with grade-scaled
  stops, and wires rule-3 special links along the way.

This module builds those tries level-by-level with numpy.  All windows
advance one symbol per level; ``np.unique`` over packed
``(parent index << 32) | symbol`` keys discovers the distinct trie nodes
of the level (the packed values double as the store's child-map keys),
and the per-node arrays of :class:`CompactTrie` are filled in bulk via
``frombytes``.  Python-level work is proportional to the number of
*distinct* trie nodes, never to the number of clicks.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Sequence

import numpy as np

from repro.kernel.compact import KEY_SHIFT, CompactTrie

_SYM_MASK = (1 << KEY_SHIFT) - 1
#: Packed keys leave 63 - KEY_SHIFT bits for the parent node index.
_MAX_NODES = 1 << (63 - KEY_SHIFT)


def dedup_sequences(
    sequences: "Sequence[Hashable]",
) -> "tuple[list, np.ndarray | None]":
    """Collapse duplicate sequences into ``(uniques, multiplicities)``.

    Training corpora repeat whole sessions; counting each distinct
    sequence once with a weight shrinks every downstream window array.
    First-seen order is preserved (PB-PPM's special-link creation order
    depends on it) and ``multiplicities`` is None when nothing repeats.
    """
    counter = Counter(sequences)
    if len(counter) == len(sequences):
        return list(counter), None
    weights = np.fromiter(counter.values(), dtype=np.int64, count=len(counter))
    return list(counter), weights


def symbol_grades(symbols, grade_of) -> np.ndarray:
    """Popularity grade per symbol id, as a flat array (PB rule input)."""
    return np.fromiter(
        (grade_of(url) for url in symbols.urls()),
        dtype=np.int64,
        count=len(symbols),
    )


def _flatten(sequences) -> "tuple[np.ndarray, np.ndarray]":
    """Concatenate id sequences into one flat array plus their lengths."""
    lens = np.fromiter(
        (len(seq) for seq in sequences), dtype=np.int64, count=len(sequences)
    )
    flat = np.empty(int(lens.sum()), dtype=np.int64)
    pos = 0
    for seq in sequences:
        flat[pos : pos + len(seq)] = seq
        pos += len(seq)
    return flat, lens


def _byte_view(values: np.ndarray) -> memoryview:
    """A zero-copy byte view for ``array.frombytes`` bulk loads."""
    return memoryview(np.ascontiguousarray(values)).cast("B")


def _unique_counts(keys, weights):
    uniq, inv = np.unique(keys, return_inverse=True)
    if weights is None:
        cnt = np.bincount(inv, minlength=len(uniq))
    else:
        cnt = np.bincount(inv, weights=weights, minlength=len(uniq)).astype(
            np.int64
        )
    return uniq, inv, cnt


def _grow_trie(
    store: CompactTrie,
    flat: np.ndarray,
    win_pos: np.ndarray,
    win_stop: np.ndarray,
    win_weight: "np.ndarray | None",
    min_count: int,
    grades: "np.ndarray | None" = None,
    max_grade: int = 0,
) -> None:
    """Fill the empty ``store`` from windows ``flat[p:stop]``, one level at
    a time, optionally collecting PB special links along the way."""
    level_syms: list[np.ndarray] = []
    level_counts: list[np.ndarray] = []
    level_parents: list[np.ndarray] = []
    level_first: list[np.ndarray] = []
    level_next: list[np.ndarray] = []
    child_items: list[tuple[np.ndarray, np.ndarray]] = []
    bases: list[int] = []
    link_pos: list[np.ndarray] = []
    link_root: list[np.ndarray] = []
    link_tgt: list[np.ndarray] = []
    link_depth: list[np.ndarray] = []
    collect = grades is not None
    win_root = head_grade = gid = None
    base = 0
    depth = 1
    while win_pos.size:
        offset = depth - 1
        if depth > 1:
            alive = win_pos + offset < win_stop
            if not alive.all():
                win_pos = win_pos[alive]
                win_stop = win_stop[alive]
                gid = gid[alive]
                if win_weight is not None:
                    win_weight = win_weight[alive]
                if collect:
                    win_root = win_root[alive]
                    head_grade = head_grade[alive]
                if not win_pos.size:
                    break
        syms = flat[win_pos + offset]
        keys = syms if depth == 1 else (gid << KEY_SHIFT) | syms
        uniq, inv, cnt = _unique_counts(keys, win_weight)
        if min_count > 1:
            keep = cnt >= min_count
            if not keep.all():
                slot = (np.cumsum(keep) - 1)[inv]
                alive = keep[inv]
                uniq = uniq[keep]
                cnt = cnt[keep]
                win_pos = win_pos[alive]
                win_stop = win_stop[alive]
                inv = slot[alive]
                if win_weight is not None:
                    win_weight = win_weight[alive]
                if collect:
                    win_root = win_root[alive]
                    head_grade = head_grade[alive]
            if not uniq.size:
                break
        k = len(uniq)
        if base + k > _MAX_NODES:  # pragma: no cover - 2**31 nodes
            raise OverflowError("trie exceeds the packed child-key capacity")
        node_idx = base + np.arange(k, dtype=np.int64)
        gid = node_idx[inv]
        if depth == 1:
            level_syms.append(uniq)
            level_parents.append(np.full(k, -1, dtype=np.int64))
            level_next.append(np.full(k, -1, dtype=np.int64))
            store.roots = dict(zip(uniq.tolist(), node_idx.tolist()))
            if collect:
                win_root = gid.copy()
                head_grade = grades[flat[win_pos]]
        else:
            parents = uniq >> KEY_SHIFT
            level_syms.append(uniq & _SYM_MASK)
            level_parents.append(parents)
            # np.unique sorted by (parent, symbol): each parent's children
            # are one contiguous run — chain the run and point the parent
            # (previous level, still a plain numpy array) at its start.
            nxt = np.full(k, -1, dtype=np.int64)
            is_first = np.empty(k, dtype=bool)
            is_first[0] = True
            if k > 1:
                same = parents[:-1] == parents[1:]
                nxt[:-1][same] = node_idx[1:][same]
                is_first[1:] = ~same
            level_next.append(nxt)
            level_first[-1][parents[is_first] - bases[-1]] = node_idx[is_first]
            child_items.append((uniq, node_idx))
            if collect and offset >= 2:  # rule 3: not right after the head
                g = grades[syms] if min_count <= 1 else grades[flat[win_pos + offset]]
                hit = (g > head_grade) | (g == max_grade)
                if hit.any():
                    link_pos.append(win_pos[hit])
                    link_root.append(win_root[hit])
                    link_tgt.append(gid[hit])
                    link_depth.append(
                        np.full(int(hit.sum()), depth, dtype=np.int64)
                    )
        level_counts.append(cnt)
        level_first.append(np.full(k, -1, dtype=np.int64))
        bases.append(base)
        base += k
        depth += 1
    if not base:
        return
    for target, chunks in (
        (store.syms, level_syms),
        (store.counts, level_counts),
        (store.parents, level_parents),
        (store.first_child, level_first),
        (store.next_sibling, level_next),
    ):
        merged = np.concatenate(chunks)
        chunks.clear()  # free the per-level copies before the next column
        target.frombytes(_byte_view(merged))
    store.used = bytearray(base)
    store._live = base
    children = store.children
    for keys_arr, vals in child_items:
        children.update(zip(keys_arr.tolist(), vals.tolist()))
    if link_pos:
        # Replay link creation in the per-click order: windows in corpus
        # order, positions (depths) ascending within each window.
        pos = np.concatenate(link_pos)
        dep = np.concatenate(link_depth)
        roots = np.concatenate(link_root)
        targets = np.concatenate(link_tgt)
        order = np.lexsort((dep, pos))
        links = store.special_links
        for root, target in zip(
            roots[order].tolist(), targets[order].tolist()
        ):
            known = links.get(root)
            if known is None:
                links[root] = [target]
            elif target not in known:
                known.append(target)


def build_ngram_trie(
    sequences: "Sequence[Sequence[int]]",
    *,
    max_height: "int | None" = None,
    min_count: int = 1,
    weights: "np.ndarray | None" = None,
) -> CompactTrie:
    """Count every n-gram of the id ``sequences`` into a fresh store.

    The result equals inserting, for every start position, the window of
    at most ``max_height`` symbols, then dropping every node whose count
    is below ``min_count`` (level-filtered, so an infrequent prefix
    removes its whole subtree — the Apriori property).  ``weights``
    carries per-sequence multiplicities from :func:`dedup_sequences`.
    """
    store = CompactTrie()
    flat, lens = _flatten(sequences)
    if not flat.size:
        return store
    ends = np.repeat(np.cumsum(lens), lens)
    win_pos = np.arange(flat.size, dtype=np.int64)
    win_stop = ends if max_height is None else np.minimum(ends, win_pos + max_height)
    win_weight = None if weights is None else np.repeat(weights, lens)
    _grow_trie(store, flat, win_pos, win_stop, win_weight, min_count)
    return store


def build_branch_trie(
    sequences: "Sequence[Sequence[int]]",
    *,
    grades: np.ndarray,
    grade_heights: Sequence[int],
    absolute_max_height: int,
    max_grade: int,
    weights: "np.ndarray | None" = None,
) -> CompactTrie:
    """Build PB-PPM's forest (construction rules 1-4) in bulk.

    Windows open at rule-4 root positions only (sequence start or grade
    rise), run to the head's grade-scaled height (rules 1-2), and wire
    rule-3 special links in per-click creation order.
    """
    store = CompactTrie()
    flat, lens = _flatten(sequences)
    if not flat.size:
        return store
    ends = np.repeat(np.cumsum(lens), lens)
    starts = np.zeros(flat.size, dtype=bool)
    starts[0] = True
    boundaries = np.cumsum(lens)[:-1]
    starts[boundaries[boundaries < flat.size]] = True
    g = grades[flat]
    prev = np.empty_like(g)
    prev[0] = 0
    prev[1:] = g[:-1]
    win_pos = np.nonzero(starts | (g > prev))[0].astype(np.int64)
    heights = np.minimum(
        np.asarray(grade_heights, dtype=np.int64), absolute_max_height
    )
    win_stop = np.minimum(ends[win_pos], win_pos + heights[g[win_pos]])
    win_weight = None if weights is None else np.repeat(weights, lens)[win_pos]
    _grow_trie(
        store,
        flat,
        win_pos,
        win_stop,
        win_weight,
        1,
        grades=grades,
        max_grade=max_grade,
    )
    return store
