"""Section 3.4's space optimisations over the array-backed store.

Same contracts as :mod:`repro.core.pruning`, re-expressed on
:class:`~repro.kernel.compact.CompactTrie` indices so PB-PPM's two
post-build passes never have to materialise a :class:`TrieNode` forest.
Each pass mutates the store in place, drops special links into removed
subtrees, and returns the number of nodes removed — the same number the
node-based pass reports on the equivalent forest.
"""

from __future__ import annotations

import numpy as np

from repro import params
from repro.kernel.bulk import _byte_view
from repro.kernel.compact import KEY_SHIFT, CompactTrie


def prune_compact_by_relative_probability(
    store: CompactTrie,
    *,
    cutoff: float = params.PRUNE_RELATIVE_PROBABILITY,
) -> int:
    """Remove non-root nodes with relative access probability below ``cutoff``.

    Mirrors :func:`repro.core.pruning.prune_by_relative_probability`: the
    comparison is strict, a zero-count parent yields probability 0.0 for
    every child, and roots are never touched.
    """
    if not 0.0 <= cutoff <= 1.0:
        raise ValueError(f"cutoff must be within [0, 1]: {cutoff}")
    counts = store.counts
    removed: list[int] = []
    stack = list(store.roots.values())
    while stack:
        idx = stack.pop()
        parent_count = counts[idx]
        for sym, child in list(store.iter_children(idx)):
            probability = counts[child] / parent_count if parent_count else 0.0
            if probability < cutoff:
                removed.extend(store.delete_child(idx, sym))
            else:
                stack.append(child)
    store.drop_special_links_to(removed)
    return len(removed)


def prune_compact_by_absolute_count(
    store: CompactTrie,
    *,
    max_count: int = params.PRUNE_ABSOLUTE_COUNT,
) -> int:
    """Remove every node accessed at most ``max_count`` times.

    Mirrors :func:`repro.core.pruning.prune_by_absolute_count`, including
    removal of failing roots together with their whole branch set.
    """
    if max_count < 0:
        raise ValueError(f"max_count must be >= 0: {max_count}")
    counts = store.counts
    removed: list[int] = []
    stack: list[int] = []
    for sym in list(store.roots):
        root = store.roots[sym]
        if counts[root] <= max_count:
            removed.extend(store.delete_root(sym))
        else:
            stack.append(root)
    while stack:
        idx = stack.pop()
        for sym, child in list(store.iter_children(idx)):
            if counts[child] <= max_count:
                removed.extend(store.delete_child(idx, sym))
            else:
                stack.append(child)
    store.drop_special_links_to(removed)
    return len(removed)


def prune_dense(
    store: CompactTrie,
    *,
    cutoff: float | None = None,
    max_count: int | None = None,
) -> tuple[CompactTrie, int]:
    """Both space-optimisation passes fused into one vectorised rebuild.

    Equivalent to running :func:`prune_compact_by_relative_probability`
    then :func:`prune_compact_by_absolute_count` followed by
    :meth:`~repro.kernel.compact.CompactTrie.compacted` — a node goes
    when it fails either test or any ancestor does, so the sequential
    passes and the fused mask remove the identical node set.  Requires a
    dense (garbage-free) store, which fresh builds always are; returns
    ``(new dense store, removed node count)``.  The input is unmodified.
    """
    if cutoff is not None and not 0.0 <= cutoff <= 1.0:
        raise ValueError(f"cutoff must be within [0, 1]: {cutoff}")
    if max_count is not None and max_count < 0:
        raise ValueError(f"max_count must be >= 0: {max_count}")
    total = len(store.syms)
    if store.node_count != total:
        raise ValueError("prune_dense requires a dense store")
    if not total or (cutoff is None and max_count is None):
        return store, 0
    syms = np.frombuffer(store.syms, dtype=np.int64)
    counts = np.frombuffer(store.counts, dtype=np.int64)
    parents = np.frombuffer(store.parents, dtype=np.int64)
    is_child = parents >= 0
    parent_or_zero = np.where(is_child, parents, 0)
    fail = np.zeros(total, dtype=bool)
    if cutoff is not None:
        parent_counts = counts[parent_or_zero]
        probability = np.where(
            parent_counts > 0, counts / np.maximum(parent_counts, 1), 0.0
        )
        fail |= is_child & (probability < cutoff)
    if max_count is not None:
        fail |= counts <= max_count
    # A removed node takes its subtree: spread the mask one level per
    # round (parents always precede children, rounds = removal depth).
    removed = fail
    while True:
        spread = removed | (is_child & removed[parent_or_zero])
        if int(spread.sum()) == int(removed.sum()):
            break
        removed = spread
    removed_total = int(removed.sum())
    if not removed_total:
        return store, 0
    keep = ~removed
    remap = np.cumsum(keep) - 1
    kept = np.nonzero(keep)[0]
    new_syms = syms[kept]
    new_counts = counts[kept]
    new_parents = np.where(
        parents[kept] >= 0, remap[np.maximum(parents[kept], 0)], -1
    )
    kept_count = len(kept)
    first = np.full(kept_count, -1, dtype=np.int64)
    nxt = np.full(kept_count, -1, dtype=np.int64)
    dense = CompactTrie()
    order = np.lexsort((np.arange(kept_count), new_parents))
    child_rows = order[new_parents[order] >= 0]
    if child_rows.size:
        grouped_parents = new_parents[child_rows]
        same = grouped_parents[:-1] == grouped_parents[1:]
        nxt[child_rows[:-1][same]] = child_rows[1:][same]
        head = np.empty(len(child_rows), dtype=bool)
        head[0] = True
        head[1:] = ~same
        first[grouped_parents[head]] = child_rows[head]
        keys = (grouped_parents << KEY_SHIFT) | new_syms[child_rows]
        dense.children = dict(zip(keys.tolist(), child_rows.tolist()))
    dense.syms.frombytes(_byte_view(new_syms))
    dense.counts.frombytes(_byte_view(new_counts))
    dense.parents.frombytes(_byte_view(new_parents))
    dense.first_child.frombytes(_byte_view(first))
    dense.next_sibling.frombytes(_byte_view(nxt))
    dense.used = bytearray(
        memoryview(np.frombuffer(bytes(store.used), dtype=np.uint8)[kept])
    )
    dense._live = kept_count
    for sym, idx in store.roots.items():
        if keep[idx]:
            dense.roots[sym] = int(remap[idx])
    for root_idx, links in store.special_links.items():
        if keep[root_idx]:
            mapped = [int(remap[i]) for i in links if keep[i]]
            if mapped:
                dense.special_links[int(remap[root_idx])] = mapped
    return dense, removed_total
