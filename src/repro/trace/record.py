"""Value types shared by the whole trace pipeline.

A :class:`LogRecord` is one raw line of a server access log.  After the
embedding-folding pass (:mod:`repro.trace.embedding`) the stream becomes a
sequence of :class:`Request` objects: one per *page view*, each carrying the
image objects that were fetched as part of rendering the page.  Sessions,
prediction models and the simulator all operate on :class:`Request` streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One access-log entry.

    Attributes
    ----------
    client:
        Client identifier.  Like the paper we use the request's IP address
        (or host name), accepting that an IP may stand for a whole proxy.
    timestamp:
        Seconds since the trace epoch.  The public NASA/UCB logs have
        one-second resolution; synthetic traces use full float precision.
    url:
        Requested path, already stripped of query strings by the parser.
    size:
        Response body size in bytes (0 for 304 responses).
    status:
        HTTP status code.
    method:
        HTTP method, upper-case.
    latency:
        Observed request latency in seconds, when the log carries one
        (synthetic traces do; the public logs do not, in which case the
        simulator's latency model supplies estimates).
    """

    client: str
    timestamp: float
    url: str
    size: int
    status: int = 200
    method: str = "GET"
    latency: float | None = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative response size: {self.size}")
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp: {self.timestamp}")

    @property
    def is_successful_get(self) -> bool:
        """True for the requests every model trains on: 2xx/304 GETs."""
        return self.method == "GET" and (200 <= self.status < 300 or self.status == 304)

    def shifted(self, delta_seconds: float) -> "LogRecord":
        """Return a copy whose timestamp is moved by ``delta_seconds``."""
        return replace(self, timestamp=self.timestamp + delta_seconds)


@dataclass(frozen=True, slots=True)
class EmbeddedObject:
    """An image object folded into its parent HTML request."""

    url: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative embedded-object size: {self.size}")


@dataclass(frozen=True, slots=True)
class Request:
    """One page view: an HTML (or other top-level) fetch plus its images.

    The paper records embedded image files *with* their HTML document, so a
    prediction for a URL implicitly prefetches the whole page bundle; the
    simulator therefore accounts :attr:`total_bytes` when it moves a page.
    """

    client: str
    timestamp: float
    url: str
    size: int
    embedded: tuple[EmbeddedObject, ...] = field(default_factory=tuple)
    latency: float | None = None

    @property
    def total_bytes(self) -> int:
        """Page bytes including all embedded objects."""
        return self.size + sum(obj.size for obj in self.embedded)

    @property
    def object_count(self) -> int:
        """Number of HTTP objects this page view stands for (1 + images)."""
        return 1 + len(self.embedded)

    def shifted(self, delta_seconds: float) -> "Request":
        """Return a copy whose timestamp is moved by ``delta_seconds``."""
        return replace(self, timestamp=self.timestamp + delta_seconds)


def sort_records(records: Iterable[LogRecord]) -> list[LogRecord]:
    """Return records ordered by (timestamp, client, url).

    Log files are normally already time-ordered; the secondary keys make the
    order deterministic for equal one-second timestamps, which matters for
    reproducible sessionisation.
    """
    return sorted(records, key=lambda r: (r.timestamp, r.client, r.url))


def iter_by_client(records: Iterable[LogRecord]) -> Iterator[tuple[str, list[LogRecord]]]:
    """Group time-ordered records by client, preserving each client's order.

    Yields ``(client, records_of_client)`` pairs sorted by client id so the
    traversal order is deterministic.
    """
    by_client: dict[str, list[LogRecord]] = {}
    for record in records:
        by_client.setdefault(record.client, []).append(record)
    for client in sorted(by_client):
        yield client, by_client[client]
