"""Access-session extraction.

Paper Section 1: *"We characterize the surfing behavior of each individual
client as an access session which consists of a sequence of Web URLs
continuously visited by the same client.  If a client has been idle for more
than 30 minutes, we assume that the next request from the client starts a
new access session."*

Sessions are the unit every prediction model trains on: the URL sequence of
a session is the "surfing path" whose continuation the models predict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro import params
from repro.trace.record import Request


@dataclass(frozen=True, slots=True)
class Session:
    """One client's continuous surfing path.

    Attributes
    ----------
    client:
        The client the session belongs to.
    requests:
        The page views of the session, in time order.
    """

    client: str
    requests: tuple[Request, ...]
    _urls: "tuple[str, ...] | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a session must contain at least one request")

    @property
    def urls(self) -> tuple[str, ...]:
        """The session's URL sequence (the input to every PPM model).

        Cached: model builds and the simulation engine read this many
        times per session, and the requests tuple is immutable.
        """
        urls = self._urls
        if urls is None:
            urls = tuple(request.url for request in self.requests)
            object.__setattr__(self, "_urls", urls)
        return urls

    @property
    def start_time(self) -> float:
        return self.requests[0].timestamp

    @property
    def end_time(self) -> float:
        return self.requests[-1].timestamp

    @property
    def duration(self) -> float:
        """Seconds between the first and last click of the session."""
        return self.end_time - self.start_time

    @property
    def length(self) -> int:
        """Number of clicks (page views) in the session."""
        return len(self.requests)

    @property
    def entry_url(self) -> str:
        """The URL that heads the session (Regularities 1 and 2)."""
        return self.requests[0].url

    @property
    def exit_url(self) -> str:
        """The URL the session exits from (Regularity 3)."""
        return self.requests[-1].url

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)


def split_client_requests(
    requests: Sequence[Request],
    *,
    idle_timeout_seconds: float = params.SESSION_IDLE_TIMEOUT_S,
) -> list[Session]:
    """Split one client's time-ordered page views at idle gaps.

    A gap strictly greater than ``idle_timeout_seconds`` between consecutive
    page views starts a new session.
    """
    if not requests:
        return []
    sessions: list[Session] = []
    current: list[Request] = [requests[0]]
    for request in requests[1:]:
        if request.timestamp - current[-1].timestamp > idle_timeout_seconds:
            sessions.append(Session(client=current[0].client, requests=tuple(current)))
            current = [request]
        else:
            current.append(request)
    sessions.append(Session(client=current[0].client, requests=tuple(current)))
    return sessions


def sessionize(
    requests: Iterable[Request],
    *,
    idle_timeout_seconds: float = params.SESSION_IDLE_TIMEOUT_S,
) -> list[Session]:
    """Extract every client's sessions from a page-view stream.

    The result is ordered by session start time (ties broken by client id)
    so downstream consumers see sessions in the order they began.
    """
    by_client: dict[str, list[Request]] = {}
    for request in requests:
        by_client.setdefault(request.client, []).append(request)
    sessions: list[Session] = []
    for client in sorted(by_client):
        ordered = sorted(by_client[client], key=lambda r: r.timestamp)
        sessions.extend(
            split_client_requests(ordered, idle_timeout_seconds=idle_timeout_seconds)
        )
    sessions.sort(key=lambda s: (s.start_time, s.client))
    return sessions


def session_length_quantile(sessions: Sequence[Session], quantile: float) -> int:
    """Return the session length at the given quantile (0..1).

    The paper motivates its maximum branch height with "more than 95% of
    the access sessions have 9 or less URLs"; this helper lets callers
    verify that property on any trace.
    """
    if not sessions:
        raise ValueError("no sessions")
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile out of range: {quantile}")
    lengths = sorted(len(s) for s in sessions)
    index = min(len(lengths) - 1, max(0, int(round(quantile * (len(lengths) - 1)))))
    return lengths[index]
