"""Access-log substrate: records, parsing, embedding folding, sessions.

This package implements everything the paper's Section 2 ("Evaluation
Methodology") needs from the raw server logs:

* :mod:`repro.trace.record` — the :class:`LogRecord` and :class:`Request`
  value types that every other subsystem consumes;
* :mod:`repro.trace.filetypes` — the HTML / embedded-image content
  classification lists the paper enumerates;
* :mod:`repro.trace.clf_parser` — a Common Log Format parser able to read
  the real NASA-KSC and UCB-CS logs if a user supplies them;
* :mod:`repro.trace.embedding` — folding of embedded image fetches into
  their parent HTML request;
* :mod:`repro.trace.sessions` — 30-minute-idle sessionisation;
* :mod:`repro.trace.dataset` — the :class:`Trace` container with per-day
  splits and the train-on-days-1..d / test-on-day-d+1 protocol.
"""

from repro.trace.record import EmbeddedObject, LogRecord, Request
from repro.trace.filetypes import (
    EMBEDDED_IMAGE_EXTENSIONS,
    HTML_EXTENSIONS,
    classify_url,
    is_embedded_image,
    is_html,
)
from repro.trace.clf_parser import (
    ParseStats,
    format_clf_line,
    iter_clf_file,
    parse_clf_file,
    parse_clf_line,
    parse_clf_lines,
)
from repro.trace.embedding import fold_embedded_objects
from repro.trace.sessions import Session, sessionize
from repro.trace.dataset import Trace, TrainTestSplit
from repro.trace.columnar import (
    COLUMNAR_SUFFIX,
    ColumnarWriter,
    RequestBatch,
    TraceColumns,
    convert_clf_to_columnar,
    convert_columnar_to_clf,
)
from repro.trace.filters import (
    apply_filters,
    by_clients,
    by_method,
    by_status,
    by_time_window,
    exclude_bots,
    exclude_url_prefixes,
    successful,
)

__all__ = [
    "EmbeddedObject",
    "LogRecord",
    "Request",
    "EMBEDDED_IMAGE_EXTENSIONS",
    "HTML_EXTENSIONS",
    "classify_url",
    "is_embedded_image",
    "is_html",
    "ParseStats",
    "format_clf_line",
    "iter_clf_file",
    "parse_clf_file",
    "parse_clf_line",
    "parse_clf_lines",
    "fold_embedded_objects",
    "Session",
    "sessionize",
    "Trace",
    "TrainTestSplit",
    "COLUMNAR_SUFFIX",
    "ColumnarWriter",
    "RequestBatch",
    "TraceColumns",
    "convert_clf_to_columnar",
    "convert_columnar_to_clf",
    "apply_filters",
    "by_clients",
    "by_method",
    "by_status",
    "by_time_window",
    "exclude_bots",
    "exclude_url_prefixes",
    "successful",
]
