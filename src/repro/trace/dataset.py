"""The :class:`Trace` container and the paper's train/test protocol.

The paper evaluates every model by training it on the first *d* days of a
trace and replaying day *d+1* against it ("Using historical data of five
days to predict data accesses of the sixth day").  :class:`Trace` owns the
raw records, derives page views and sessions lazily, and hands out
:class:`TrainTestSplit` objects implementing that protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.clf_parser import ParseStats

import numpy as np

from repro import params
from repro.errors import TraceError
from repro.trace.columnar import (
    RequestBatch,
    TraceColumns,
    TracePlane,
    materialize_sessions,
)
from repro.trace.embedding import fold_embedded_objects
from repro.trace.record import LogRecord, Request, sort_records
from repro.trace.sessions import Session, sessionize

SECONDS_PER_DAY: float = 86_400.0


@dataclass(frozen=True)
class TrainTestSplit:
    """Sessions and page views for a train-on-days/test-on-day experiment."""

    train_days: tuple[int, ...]
    test_days: tuple[int, ...]
    train_sessions: tuple[Session, ...]
    test_sessions: tuple[Session, ...]
    train_requests: tuple[Request, ...]
    test_requests: tuple[Request, ...]

    @property
    def train_url_counts(self) -> dict[str, int]:
        """Access count per URL over the training days.

        This is the historical information the server ranks popularity
        from; test-day accesses are never visible to it.
        """
        counts: dict[str, int] = {}
        for request in self.train_requests:
            counts[request.url] = counts.get(request.url, 0) + 1
        return counts


class Trace:
    """An access trace: raw records plus derived page views and sessions.

    Parameters
    ----------
    records:
        Raw log records in any order; they are filtered to successful GETs
        (the only requests the paper's models consider) and time-sorted.
    name:
        A label used in reports ("nasa-like", "ucb-like", ...).
    idle_timeout_seconds / embed_window_seconds:
        Sessionisation and embedding-fold constants, defaulting to the
        paper's values.
    parse_stats:
        Optional :class:`~repro.trace.clf_parser.ParseStats` describing the
        log file the records came from (malformed-line counts etc.);
        surfaced in trace summaries.

    ``records`` may also be a :class:`repro.trace.columnar.TraceColumns`
    (e.g. from :meth:`from_columnar_file`).  Whether the derivation pipeline
    runs over columns or objects is decided **once**, here, from
    :data:`repro.params.COLUMNAR_TRACE`; both paths produce bit-identical
    records, requests, sessions and splits.
    """

    def __init__(
        self,
        records: "Iterable[LogRecord] | TraceColumns",
        *,
        name: str = "trace",
        idle_timeout_seconds: float = params.SESSION_IDLE_TIMEOUT_S,
        embed_window_seconds: float = params.EMBEDDED_OBJECT_WINDOW_S,
        parse_stats: "ParseStats | None" = None,
    ) -> None:
        self.name = name
        self.idle_timeout_seconds = idle_timeout_seconds
        self.embed_window_seconds = embed_window_seconds
        if parse_stats is None and isinstance(records, TraceColumns):
            parse_stats = records.parse_stats
        self.parse_stats = parse_stats
        self._plane: TracePlane | None = None
        self._materialized: tuple[LogRecord, ...] | None = None
        self._requests: tuple[Request, ...] | None = None
        self._sessions: tuple[Session, ...] | None = None
        self._day_requests: dict[frozenset[int], tuple[Request, ...]] = {}
        self._day_sessions: dict[frozenset[int], tuple[Session, ...]] = {}
        self._splits: dict[tuple[int, int], TrainTestSplit] = {}
        if params.COLUMNAR_TRACE:
            columns = (
                records
                if isinstance(records, TraceColumns)
                else TraceColumns.from_records(records)
            )
            plane = TracePlane(
                columns,
                embed_window_seconds=embed_window_seconds,
                idle_timeout_seconds=idle_timeout_seconds,
            )
            if not len(plane):
                raise TraceError("trace contains no successful GET records")
            self._plane = plane
            first = float(plane.columns.timestamps[0])
        else:
            if isinstance(records, TraceColumns):
                records = records.iter_records()
            kept = [r for r in sort_records(records) if r.is_successful_get]
            if not kept:
                raise TraceError("trace contains no successful GET records")
            self._materialized = tuple(kept)
            first = self._materialized[0].timestamp
        self._epoch = math.floor(first / SECONDS_PER_DAY) * SECONDS_PER_DAY

    # -- construction ------------------------------------------------------

    @classmethod
    def from_clf_file(cls, path: str, *, name: str | None = None, **kwargs) -> "Trace":
        """Load a trace from a Common Log Format file on disk.

        The file is streamed and parsed exactly once (no intermediate
        per-line record list, no re-parse on later day splits) and the
        resulting trace carries the parse counters as ``parse_stats``.
        """
        from repro.trace.clf_parser import ParseStats, iter_clf_file

        stats = ParseStats()
        return cls(
            iter_clf_file(path, stats=stats),
            name=name or path,
            parse_stats=stats,
            **kwargs,
        )

    @classmethod
    def from_columnar_file(
        cls,
        path: str,
        *,
        name: str | None = None,
        use_mmap: bool = True,
        **kwargs,
    ) -> "Trace":
        """Load a trace from a columnar binary file (``repro convert``).

        The columns are memory-mapped by default, so loading a
        multi-million-event trace touches no more pages than the pipeline
        actually reads.  Parse statistics persisted at conversion time come
        back as ``parse_stats``.
        """
        return cls(
            TraceColumns.load(path, use_mmap=use_mmap),
            name=name or path,
            **kwargs,
        )

    def sampled(self, sampler, *, name: str | None = None) -> "Trace":
        """A whole-client subsample of this trace.

        ``sampler`` is duck-typed (a
        :class:`repro.sampling.ClientSampler`): the columnar path asks
        it for a keep-mask over the interned client table and slices
        the plane in one vectorised pass; the object path filters the
        record stream through ``sampler.keeps``.  Both select the
        identical client set, so the derived trace is bit-identical
        either way (pinned by the sampling differential suite).
        """
        label = name or f"{self.name}@r={getattr(sampler, 'rate', '?')}"
        if self._plane is not None:
            columns = self._plane.columns
            rows = np.flatnonzero(
                sampler.table_mask(columns.client_table)[columns.clients]
            )
            if not len(rows):
                raise TraceError(
                    f"sample of {self.name!r} kept no records; raise the "
                    f"rate or change the salt"
                )
            source: "Iterable[LogRecord] | TraceColumns" = columns.select(rows)
        else:
            kept = [r for r in self.records if sampler.keeps(r.client)]
            if not kept:
                raise TraceError(
                    f"sample of {self.name!r} kept no records; raise the "
                    f"rate or change the salt"
                )
            source = kept
        return Trace(
            source,
            name=label,
            idle_timeout_seconds=self.idle_timeout_seconds,
            embed_window_seconds=self.embed_window_seconds,
            parse_stats=self.parse_stats,
        )

    # -- basic accessors ----------------------------------------------------

    @property
    def records(self) -> tuple[LogRecord, ...]:
        """The filtered, time-ordered raw records."""
        if self._materialized is None:
            assert self._plane is not None
            self._materialized = tuple(self._plane.columns.iter_records())
        return self._materialized

    @property
    def requests(self) -> tuple[Request, ...]:
        """Page views after the embedded-object fold (computed once)."""
        if self._requests is None:
            if self._plane is not None:
                self._requests = tuple(self._plane.requests.materialize())
            else:
                self._requests = tuple(
                    fold_embedded_objects(
                        self.records, window_seconds=self.embed_window_seconds
                    )
                )
        return self._requests

    @property
    def sessions(self) -> tuple[Session, ...]:
        """All access sessions of the trace (computed once)."""
        if self._sessions is None:
            if self._plane is not None:
                self._sessions = tuple(
                    materialize_sessions(
                        self._plane.sessions,
                        self.requests,
                        self._plane.columns.client_table,
                    )
                )
            else:
                self._sessions = tuple(
                    sessionize(
                        self.requests,
                        idle_timeout_seconds=self.idle_timeout_seconds,
                    )
                )
        return self._sessions

    @property
    def epoch(self) -> float:
        """Midnight preceding the first record; day 0 starts here."""
        return self._epoch

    def day_of(self, timestamp: float) -> int:
        """Return the 0-based day index a timestamp falls in."""
        return int((timestamp - self._epoch) // SECONDS_PER_DAY)

    @property
    def num_days(self) -> int:
        """Number of (possibly partially covered) days the trace spans."""
        if self._plane is not None:
            last = float(self._plane.columns.timestamps[-1])
        else:
            last = self.records[-1].timestamp
        return self.day_of(last) + 1

    @property
    def urls(self) -> frozenset[str]:
        """Every page URL appearing in the trace."""
        if self._plane is not None:
            counts = self._plane.requests.url_counts()
            table = self._plane.requests.url_table
            return frozenset(
                table[i] for i in np.flatnonzero(counts).tolist()
            )
        return frozenset(r.url for r in self.requests)

    @property
    def clients(self) -> frozenset[str]:
        """Every client id appearing in the trace."""
        if self._plane is not None:
            return self._plane.record_clients()
        return frozenset(r.client for r in self.records)

    # -- day slicing ---------------------------------------------------------

    def requests_for_days(self, days: Iterable[int]) -> tuple[Request, ...]:
        """Page views whose timestamp falls on any of the given days."""
        wanted = frozenset(days)
        cached = self._day_requests.get(wanted)
        if cached is not None:
            return cached
        if self._plane is not None:
            day = self._plane.requests.day_index(self._epoch)
            rows = np.flatnonzero(
                np.isin(day, np.fromiter(wanted, dtype=np.int64, count=len(wanted)))
            )
            requests = self.requests
            selected = tuple(requests[i] for i in rows.tolist())
        else:
            selected = tuple(
                r for r in self.requests if self.day_of(r.timestamp) in wanted
            )
        self._day_requests[wanted] = selected
        return selected

    def sessions_for_days(self, days: Iterable[int]) -> tuple[Session, ...]:
        """Sessions *starting* on any of the given days.

        A session belongs to the day it begins on, so a session straddling
        midnight is trained on with the day that produced its first click —
        the same convention a server updating its model nightly would use.
        """
        wanted = frozenset(days)
        cached = self._day_sessions.get(wanted)
        if cached is not None:
            return cached
        if self._plane is not None:
            day = np.floor_divide(
                self._plane.sessions.start_times - self._epoch, SECONDS_PER_DAY
            ).astype(np.int64)
            rows = np.flatnonzero(
                np.isin(day, np.fromiter(wanted, dtype=np.int64, count=len(wanted)))
            )
            sessions = self.sessions
            selected = tuple(sessions[i] for i in rows.tolist())
        else:
            selected = tuple(
                s for s in self.sessions if self.day_of(s.start_time) in wanted
            )
        self._day_sessions[wanted] = selected
        return selected

    def split(self, train_days: int, *, test_days: int = 1) -> TrainTestSplit:
        """Train on days ``0..train_days-1``, test on the following days.

        Splits are cached: asking for the same (train, test) shape twice
        returns the same object without re-slicing days.
        """
        if train_days < 1:
            raise TraceError(f"need at least one training day, got {train_days}")
        if train_days + test_days > self.num_days:
            raise TraceError(
                f"trace {self.name!r} spans {self.num_days} days; cannot train "
                f"on {train_days} and test on {test_days}"
            )
        cached = self._splits.get((train_days, test_days))
        if cached is not None:
            return cached
        train = tuple(range(train_days))
        test = tuple(range(train_days, train_days + test_days))
        split = TrainTestSplit(
            train_days=train,
            test_days=test,
            train_sessions=self.sessions_for_days(train),
            test_sessions=self.sessions_for_days(test),
            train_requests=self.requests_for_days(train),
            test_requests=self.requests_for_days(test),
        )
        self._splits[(train_days, test_days)] = split
        return split

    def request_batch_for_days(self, days: Iterable[int]) -> RequestBatch:
        """Column-backed replay batch of the given days' page views.

        The batch feeds :meth:`repro.sim.engine.PrefetchSimulator.run`
        directly (and shards by row range under the parallel engine); on a
        columnar trace it is sliced from the request columns without
        materialising a single :class:`Request`.
        """
        wanted = frozenset(days)
        if self._plane is not None:
            day = self._plane.requests.day_index(self._epoch)
            rows = np.flatnonzero(
                np.isin(day, np.fromiter(wanted, dtype=np.int64, count=len(wanted)))
            )
            return RequestBatch.from_request_columns(self._plane.requests, rows)
        return RequestBatch.from_requests(self.requests_for_days(wanted))

    def request_batch_after(self, cut: float) -> RequestBatch:
        """Column-backed replay batch of page views after a time cut.

        The fraction-split counterpart of :meth:`request_batch_for_days`:
        the grid's test window (``timestamp > cut``) as a batch sliced
        straight from the request columns, so evaluating a cell never
        materialises its test requests as objects.
        """
        if self._plane is not None:
            rows = np.flatnonzero(self._plane.requests.timestamps > cut)
            return RequestBatch.from_request_columns(self._plane.requests, rows)
        return RequestBatch.from_requests(
            tuple(r for r in self.requests if r.timestamp > cut)
        )

    # -- derived tables -------------------------------------------------------

    def url_access_counts(
        self, requests: Sequence[Request] | None = None
    ) -> dict[str, int]:
        """Access count per page URL (over given requests, or all of them)."""
        if requests is None and self._plane is not None:
            return self._plane.url_access_counts()
        counts: dict[str, int] = {}
        for request in requests if requests is not None else self.requests:
            counts[request.url] = counts.get(request.url, 0) + 1
        return counts

    def url_size_table(self) -> dict[str, int]:
        """Bytes a prefetch of each page URL moves (page + embedded objects).

        When a URL was observed with several sizes (dynamic pages, changed
        documents) the largest observation is used, which is conservative
        for traffic accounting.
        """
        if self._plane is not None:
            return self._plane.url_size_table()
        sizes: dict[str, int] = {}
        for request in self.requests:
            total = request.total_bytes
            if total > sizes.get(request.url, -1):
                sizes[request.url] = total
        return sizes

    def requests_per_client_per_day(self) -> dict[str, float]:
        """Mean raw-request rate per client per active day.

        Used to classify clients as proxies versus browsers (paper: a
        client issuing more than 100 requests per day is a proxy).
        """
        if self._plane is not None:
            return self._plane.requests_per_client_per_day(self._epoch)
        per_client_days: dict[str, set[int]] = {}
        per_client_count: dict[str, int] = {}
        for record in self.records:
            per_client_days.setdefault(record.client, set()).add(
                self.day_of(record.timestamp)
            )
            per_client_count[record.client] = per_client_count.get(record.client, 0) + 1
        return {
            client: per_client_count[client] / len(per_client_days[client])
            for client in per_client_count
        }

    def classify_clients(
        self, *, proxy_requests_per_day: float = params.PROXY_REQUESTS_PER_DAY
    ) -> dict[str, str]:
        """Map each client id to ``"proxy"`` or ``"browser"``."""
        rates = self.requests_per_client_per_day()
        return {
            client: "proxy" if rate > proxy_requests_per_day else "browser"
            for client, rate in rates.items()
        }

    def __len__(self) -> int:
        if self._plane is not None:
            return len(self._plane)
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"Trace(name={self.name!r}, records={len(self)}, "
            f"days={self.num_days}, clients={len(self.clients)})"
        )
