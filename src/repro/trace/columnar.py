"""The columnar binary trace plane: mmap-able columns + vectorised replay.

The object path parses an access log into one :class:`LogRecord` per event
and walks Python loops for every derived view — fine for a day of traffic,
hopeless for the multi-million-event NASA/UCB logs the paper replays.  This
module stores a trace as a struct-of-arrays instead:

* one NumPy column per record field (timestamp, size, status, latency),
* client / URL / method strings interned through
  :class:`repro.kernel.symbols.SymbolTable` into dense int ids, stored as
  id columns next to their string tables,
* an on-disk form framed exactly like the kernel's trie buffer — magic,
  format version and a CRC-32 over everything after it, checked through the
  shared :mod:`repro.validation` helpers — that loads by ``mmap`` without
  copying the columns.

On top of the columns sit batched twins of every hot trace loop: the
successful-GET filter, the deterministic ``(timestamp, client, url)`` sort,
the embedded-object fold, 30-minute sessionisation, popularity counting and
day splitting — each a handful of NumPy passes producing **bit-identical**
results to the per-record code (``tests/differential/test_columnar_replay``
pins that equivalence).  :class:`repro.trace.dataset.Trace` dispatches to
them when :data:`repro.params.COLUMNAR_TRACE` is on.

On-disk layout (little-endian), magic ``b"RPCT"``::

    offset  size  field
    0       4     magic b"RPCT"
    4       4     format version (TRACE_FORMAT_VERSION)
    8       4     CRC-32 of everything after this field (header tail + payload)
    12      4     reserved (0)
    16      8*12  u64: n_records, n_clients, n_urls, n_methods,
                  client_blob_len, url_blob_len, method_blob_len,
                  stats_present, stats_total, stats_parsed, stats_blank,
                  stats_malformed
    112     ...   payload sections, each zero-padded to a multiple of 8:
                  timestamps f8[n] | clients i4[n] | urls i4[n] |
                  sizes i8[n] | statuses i4[n] | methods i2[n] |
                  latencies f8[n] (NaN = none) |
                  client_offsets i8[n_clients+1] | client utf-8 blob |
                  url_offsets i8[n_urls+1] | url blob |
                  method_offsets i8[n_methods+1] | method blob

Because the CRC covers the header tail too, a bit flip anywhere in the
promised bytes — counts, parse stats, any column — raises one typed
:class:`~repro.errors.ModelError` instead of returning silently wrong
columns; bytes beyond the promised length are ignored (mmap of a
page-rounded file).
"""

from __future__ import annotations

import math
import mmap as _mmap
import struct
from array import array
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro import params
from repro.errors import ModelError
from repro.kernel.symbols import SymbolTable
from repro.trace.filetypes import UrlKind, classify_url
from repro.trace.record import EmbeddedObject, LogRecord, Request
from repro.trace.sessions import Session
from repro.validation import (
    checksum,
    require_checksum,
    require_length,
    require_magic,
    require_version,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.clf_parser import ParseStats

#: Magic prefix of every columnar trace file.
TRACE_COLUMNS_MAGIC = b"RPCT"

#: Format version written into (and required from) every columnar trace.
TRACE_FORMAT_VERSION = 1

#: Conventional file extension for columnar traces (``repro convert``).
COLUMNAR_SUFFIX = ".rpt"

_HEADER = struct.Struct("<4sIII12Q")
#: CRC coverage starts after the CRC field + reserved word (offset 12).
_CRC_OFFSET = 12

_SECONDS_PER_DAY = 86_400.0


def _padded(length: int) -> int:
    return (length + 7) & ~7


def _string_ranks(table: Sequence[str]) -> np.ndarray:
    """Lexicographic rank of each table entry, by Python string order.

    Sorting interned *ids* would order URLs by first appearance; the object
    path orders by the strings themselves, so the vectorised sorts map ids
    through these ranks to reproduce ``sorted(...)`` exactly.
    """
    order = sorted(range(len(table)), key=table.__getitem__)
    ranks = np.empty(len(table), dtype=np.int64)
    ranks[np.asarray(order, dtype=np.int64)] = np.arange(
        len(table), dtype=np.int64
    )
    return ranks


def _encode_table(table: Sequence[str]) -> tuple[bytes, np.ndarray]:
    """One utf-8 blob + (n+1) cumulative byte offsets for a string table."""
    encoded = [item.encode("utf-8") for item in table]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(item) for item in encoded], out=offsets[1:])
    return b"".join(encoded), offsets


def _decode_table(blob: bytes, offsets: np.ndarray, what: str) -> tuple[str, ...]:
    bounds = offsets.tolist()
    if bounds and (bounds[0] != 0 or any(
        a > b for a, b in zip(bounds, bounds[1:])
    ) or bounds[-1] != len(blob)):
        raise ModelError(f"corrupt {what} string table offsets")
    try:
        return tuple(
            blob[a:b].decode("utf-8") for a, b in zip(bounds, bounds[1:])
        )
    except UnicodeDecodeError as exc:  # pragma: no cover - needs CRC collision
        raise ModelError(f"corrupt {what} string table: {exc}") from exc


class TraceColumns:
    """A trace as parallel NumPy columns plus interned string tables.

    The struct-of-arrays twin of a ``list[LogRecord]``: row ``i`` of every
    column describes record ``i``.  Instances are cheap views — ``select``
    shares the string tables, and columns loaded with ``mmap=True`` are
    read-only views straight into the file.
    """

    __slots__ = (
        "timestamps", "clients", "urls", "sizes", "statuses", "methods",
        "latencies", "client_table", "url_table", "method_table",
        "parse_stats", "_backing",
    )

    def __init__(
        self,
        *,
        timestamps: np.ndarray,
        clients: np.ndarray,
        urls: np.ndarray,
        sizes: np.ndarray,
        statuses: np.ndarray,
        methods: np.ndarray,
        latencies: np.ndarray,
        client_table: tuple[str, ...],
        url_table: tuple[str, ...],
        method_table: tuple[str, ...],
        parse_stats: "ParseStats | None" = None,
        _backing: object = None,
    ) -> None:
        self.timestamps = timestamps
        self.clients = clients
        self.urls = urls
        self.sizes = sizes
        self.statuses = statuses
        self.methods = methods
        self.latencies = latencies
        self.client_table = client_table
        self.url_table = url_table
        self.method_table = method_table
        self.parse_stats = parse_stats
        # Keeps the mmap (and its file) alive while views reference it.
        self._backing = _backing

    def __len__(self) -> int:
        return len(self.timestamps)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[LogRecord],
        *,
        parse_stats: "ParseStats | None" = None,
    ) -> "TraceColumns":
        """Intern a record stream into columns (single pass)."""
        acc = _ColumnAccumulator()
        for record in records:
            acc.append(record)
        return acc.to_columns(parse_stats=parse_stats)

    def select(self, indices: np.ndarray) -> "TraceColumns":
        """Rows at ``indices`` (in that order), sharing the string tables."""
        return TraceColumns(
            timestamps=self.timestamps[indices],
            clients=self.clients[indices],
            urls=self.urls[indices],
            sizes=self.sizes[indices],
            statuses=self.statuses[indices],
            methods=self.methods[indices],
            latencies=self.latencies[indices],
            client_table=self.client_table,
            url_table=self.url_table,
            method_table=self.method_table,
            parse_stats=self.parse_stats,
        )

    # -- materialisation ----------------------------------------------------

    def iter_records(self) -> Iterator[LogRecord]:
        """Materialise rows back into :class:`LogRecord` objects."""
        clients, urls, methods = self.client_table, self.url_table, self.method_table
        latencies = self.latencies.tolist()
        for ts, cid, uid, size, status, mid, latency in zip(
            self.timestamps.tolist(),
            self.clients.tolist(),
            self.urls.tolist(),
            self.sizes.tolist(),
            self.statuses.tolist(),
            self.methods.tolist(),
            latencies,
        ):
            yield LogRecord(
                client=clients[cid],
                timestamp=ts,
                url=urls[uid],
                size=size,
                status=status,
                method=methods[mid],
                latency=None if math.isnan(latency) else latency,
            )

    # -- persistence ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise into one framed buffer (header + CRC'd payload)."""
        n = len(self)
        client_blob, client_offsets = _encode_table(self.client_table)
        url_blob, url_offsets = _encode_table(self.url_table)
        method_blob, method_offsets = _encode_table(self.method_table)
        sections = [
            np.ascontiguousarray(self.timestamps, dtype=np.float64).tobytes(),
            np.ascontiguousarray(self.clients, dtype=np.int32).tobytes(),
            np.ascontiguousarray(self.urls, dtype=np.int32).tobytes(),
            np.ascontiguousarray(self.sizes, dtype=np.int64).tobytes(),
            np.ascontiguousarray(self.statuses, dtype=np.int32).tobytes(),
            np.ascontiguousarray(self.methods, dtype=np.int16).tobytes(),
            np.ascontiguousarray(self.latencies, dtype=np.float64).tobytes(),
            client_offsets.tobytes(),
            client_blob,
            url_offsets.tobytes(),
            url_blob,
            method_offsets.tobytes(),
            method_blob,
        ]
        payload = b"".join(
            part.ljust(_padded(len(part)), b"\x00") for part in sections
        )
        stats = self.parse_stats
        buffer = bytearray(
            _HEADER.pack(
                TRACE_COLUMNS_MAGIC,
                TRACE_FORMAT_VERSION,
                0,
                0,
                n,
                len(self.client_table),
                len(self.url_table),
                len(self.method_table),
                len(client_blob),
                len(url_blob),
                len(method_blob),
                1 if stats is not None else 0,
                stats.total_lines if stats is not None else 0,
                stats.parsed if stats is not None else 0,
                stats.blank if stats is not None else 0,
                stats.malformed if stats is not None else 0,
            )
        )
        buffer += payload
        struct.pack_into("<I", buffer, 8, checksum(memoryview(buffer)[_CRC_OFFSET:]))
        return bytes(buffer)

    def save(self, path: str) -> None:
        """Write the columnar file (one-shot; see :class:`ColumnarWriter`)."""
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def from_bytes(
        cls, data: bytes | bytearray | memoryview, *, copy: bool = False,
        _backing: object = None,
    ) -> "TraceColumns":
        """Decode a framed buffer; raises :class:`ModelError` on any damage.

        With ``copy=False`` the columns are read-only views into ``data``
        (the zero-copy mmap path); ``copy=True`` gives private arrays.
        """
        view = memoryview(data).toreadonly().cast("B")
        require_length(len(view), _HEADER.size, "columnar trace header")
        (
            magic, version, stored_crc, _reserved,
            n, n_clients, n_urls, n_methods,
            client_blob_len, url_blob_len, method_blob_len,
            stats_present, stats_total, stats_parsed, stats_blank,
            stats_malformed,
        ) = _HEADER.unpack_from(view, 0)
        require_magic(bytes(magic), TRACE_COLUMNS_MAGIC, "columnar trace")
        require_version(version, TRACE_FORMAT_VERSION, "columnar trace version")

        layout = (
            (np.float64, n), (np.int32, n), (np.int32, n), (np.int64, n),
            (np.int32, n), (np.int16, n), (np.float64, n),
            (np.int64, n_clients + 1), (np.uint8, client_blob_len),
            (np.int64, n_urls + 1), (np.uint8, url_blob_len),
            (np.int64, n_methods + 1), (np.uint8, method_blob_len),
        )
        offset = _HEADER.size
        spans = []
        for dtype, count in layout:
            length = int(count) * np.dtype(dtype).itemsize
            spans.append((offset, dtype, int(count)))
            offset += _padded(length)
        require_length(len(view), offset, "columnar trace")
        require_checksum(
            stored_crc, checksum(view[_CRC_OFFSET:offset]), "columnar trace"
        )

        def section(index: int) -> np.ndarray:
            start, dtype, count = spans[index]
            arr = np.frombuffer(view, dtype=dtype, count=count, offset=start)
            return arr.copy() if copy else arr

        client_table = _decode_table(
            section(8).tobytes(), section(7), "client"
        )
        url_table = _decode_table(section(10).tobytes(), section(9), "url")
        method_table = _decode_table(
            section(12).tobytes(), section(11), "method"
        )
        stats = None
        if stats_present:
            from repro.trace.clf_parser import ParseStats

            stats = ParseStats(
                total_lines=stats_total,
                parsed=stats_parsed,
                blank=stats_blank,
                malformed=stats_malformed,
            )
        return cls(
            timestamps=section(0),
            clients=section(1),
            urls=section(2),
            sizes=section(3),
            statuses=section(4),
            methods=section(5),
            latencies=section(6),
            client_table=client_table,
            url_table=url_table,
            method_table=method_table,
            parse_stats=stats,
            _backing=None if copy else _backing,
        )

    @classmethod
    def load(cls, path: str, *, use_mmap: bool = True) -> "TraceColumns":
        """Load a columnar trace file, memory-mapped by default.

        The mapped columns are read-only views into the page cache; the
        mapping lives as long as any view does (the instance keeps it
        referenced).  ``use_mmap=False`` reads the file into private arrays.
        """
        with open(path, "rb") as handle:
            if not use_mmap:
                return cls.from_bytes(handle.read(), copy=True)
            try:
                mapped = _mmap.mmap(
                    handle.fileno(), 0, access=_mmap.ACCESS_READ
                )
            except (ValueError, OSError) as exc:
                raise ModelError(
                    f"cannot map columnar trace {path!r}: {exc}"
                ) from exc
        return cls.from_bytes(mapped, _backing=mapped)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"TraceColumns(records={len(self)}, clients="
            f"{len(self.client_table)}, urls={len(self.url_table)})"
        )


class _ColumnAccumulator:
    """Shared append-side of :meth:`TraceColumns.from_records` and the writer."""

    def __init__(self) -> None:
        self.timestamps = array("d")
        self.clients = array("l")
        self.urls = array("l")
        self.sizes = array("q")
        self.statuses = array("l")
        self.methods = array("h")
        self.latencies = array("d")
        self.client_symbols = SymbolTable()
        self.url_symbols = SymbolTable()
        self.method_symbols = SymbolTable()

    def __len__(self) -> int:
        return len(self.timestamps)

    #: Append-order numeric buffers: (attribute, array typecode, disk
    #: dtype).  The chunked spill path drains them through this single
    #: source of truth, so buffer order always matches the file layout.
    _NUMERIC = (
        ("timestamps", "d", np.float64),
        ("clients", "l", np.int32),
        ("urls", "l", np.int32),
        ("sizes", "q", np.int64),
        ("statuses", "l", np.int32),
        ("methods", "h", np.int16),
        ("latencies", "d", np.float64),
    )

    def append(self, record: LogRecord) -> None:
        self.timestamps.append(record.timestamp)
        self.clients.append(self.client_symbols.intern(record.client))
        self.urls.append(self.url_symbols.intern(record.url))
        self.sizes.append(record.size)
        self.statuses.append(record.status)
        self.methods.append(self.method_symbols.intern(record.method))
        self.latencies.append(
            float("nan") if record.latency is None else record.latency
        )

    def drain_numeric(self) -> tuple[bytes, ...]:
        """Final-dtype bytes of the numeric columns buffered so far.

        Resets the numeric buffers (the symbol tables keep growing — ids
        must stay stable across chunks).  The bytes are exactly the slice
        each column contributes to :meth:`TraceColumns.to_bytes`, which is
        what lets the spill-file writer below produce byte-identical files.
        """
        chunks = tuple(
            np.asarray(getattr(self, name), dtype=dtype).tobytes()
            for name, _typecode, dtype in self._NUMERIC
        )
        for name, typecode, _dtype in self._NUMERIC:
            setattr(self, name, array(typecode))
        return chunks

    def to_columns(
        self, *, parse_stats: "ParseStats | None" = None
    ) -> TraceColumns:
        return TraceColumns(
            timestamps=np.asarray(self.timestamps, dtype=np.float64),
            clients=np.asarray(self.clients, dtype=np.int32),
            urls=np.asarray(self.urls, dtype=np.int32),
            sizes=np.asarray(self.sizes, dtype=np.int64),
            statuses=np.asarray(self.statuses, dtype=np.int32),
            methods=np.asarray(self.methods, dtype=np.int16),
            latencies=np.asarray(self.latencies, dtype=np.float64),
            client_table=self.client_symbols.urls(),
            url_table=self.url_symbols.urls(),
            method_table=self.method_symbols.urls(),
            parse_stats=parse_stats,
        )


class ColumnarWriter:
    """Streaming writer for a columnar trace file.

    Records append in compact primitive buffers (tens of bytes per event,
    no ``LogRecord`` retained), so producers that generate day batches —
    the synthetic generator, the CLF converter — never hold the object
    form of the whole trace.  ``close()`` frames and writes the file;
    usable as a context manager.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.parse_stats: "ParseStats | None" = None
        self._acc: _ColumnAccumulator | None = _ColumnAccumulator()

    def _live(self) -> _ColumnAccumulator:
        if self._acc is None:
            raise ModelError(f"columnar writer for {self.path!r} is closed")
        return self._acc

    def append(self, record: LogRecord) -> None:
        self._live().append(record)

    def extend(self, records: Iterable[LogRecord]) -> int:
        acc = self._live()
        count = 0
        for record in records:
            acc.append(record)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._live())

    def close(self) -> int:
        """Frame and write the file; returns the record count."""
        acc = self._live()
        columns = acc.to_columns(parse_stats=self.parse_stats)
        columns.save(self.path)
        self._acc = None
        return len(columns)

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        if exc_type is None:
            if self._acc is not None:
                self.close()
        else:  # pragma: no cover - error propagation, nothing to persist
            self._acc = None


class StreamingColumnarWriter:
    """Bounded-memory columnar writer: column chunks spill to temp files.

    :class:`ColumnarWriter` keeps every column buffered until ``close()``
    — tens of bytes per event, which at 10⁷+ events is hundreds of
    megabytes.  This writer drains the accumulator every ``flush_events``
    records into one anonymous temp file per numeric column, so peak RSS
    is bounded by the flush chunk plus the interned string tables
    (distinct clients/URLs/methods — workload-population sized, never
    event-count sized).  ``close()`` assembles the final file in one
    sequential pass over the spill files with an incrementally computed
    CRC, then patches the CRC into the header.

    The output is **byte-identical** to :class:`ColumnarWriter` for the
    same record stream, for every ``flush_events`` value — chunking only
    changes when bytes move, never which bytes
    (``tests/trace/test_streaming_writer`` pins this).
    """

    #: Spill-file read granularity during final assembly.
    _COPY_CHUNK = 1 << 20

    def __init__(self, path: str, *, flush_events: int = 65_536) -> None:
        if flush_events < 1:
            raise ModelError(
                f"flush_events must be >= 1, got {flush_events}"
            )
        import tempfile

        self.path = path
        self.flush_events = flush_events
        self.parse_stats: "ParseStats | None" = None
        self._count = 0
        self._acc: _ColumnAccumulator | None = _ColumnAccumulator()
        self._spills = [
            tempfile.TemporaryFile()
            for _ in _ColumnAccumulator._NUMERIC
        ]

    def _live(self) -> _ColumnAccumulator:
        if self._acc is None:
            raise ModelError(f"columnar writer for {self.path!r} is closed")
        return self._acc

    def _flush(self) -> None:
        acc = self._live()
        if not len(acc):
            return
        for spill, chunk in zip(self._spills, acc.drain_numeric()):
            spill.write(chunk)

    def append(self, record: LogRecord) -> None:
        acc = self._live()
        acc.append(record)
        self._count += 1
        if len(acc) >= self.flush_events:
            self._flush()

    def extend(self, records: Iterable[LogRecord]) -> int:
        count = 0
        for record in records:
            self.append(record)
            count += 1
        return count

    def __len__(self) -> int:
        return self._count

    def close(self) -> int:
        """Assemble and write the file; returns the record count."""
        import zlib

        acc = self._live()
        self._flush()
        client_blob, client_offsets = _encode_table(acc.client_symbols.urls())
        url_blob, url_offsets = _encode_table(acc.url_symbols.urls())
        method_blob, method_offsets = _encode_table(acc.method_symbols.urls())
        stats = self.parse_stats
        header = bytearray(
            _HEADER.pack(
                TRACE_COLUMNS_MAGIC,
                TRACE_FORMAT_VERSION,
                0,
                0,
                self._count,
                len(client_offsets) - 1,
                len(url_offsets) - 1,
                len(method_offsets) - 1,
                len(client_blob),
                len(url_blob),
                len(method_blob),
                1 if stats is not None else 0,
                stats.total_lines if stats is not None else 0,
                stats.parsed if stats is not None else 0,
                stats.blank if stats is not None else 0,
                stats.malformed if stats is not None else 0,
            )
        )
        crc = zlib.crc32(memoryview(header)[_CRC_OFFSET:])
        with open(self.path, "wb") as out:
            out.write(header)
            for spill in self._spills:
                length = spill.tell()
                spill.seek(0)
                while True:
                    piece = spill.read(self._COPY_CHUNK)
                    if not piece:
                        break
                    crc = zlib.crc32(piece, crc)
                    out.write(piece)
                pad = b"\x00" * (_padded(length) - length)
                if pad:
                    crc = zlib.crc32(pad, crc)
                    out.write(pad)
                spill.close()
            for section in (
                client_offsets.tobytes(),
                client_blob,
                url_offsets.tobytes(),
                url_blob,
                method_offsets.tobytes(),
                method_blob,
            ):
                padded = section.ljust(_padded(len(section)), b"\x00")
                crc = zlib.crc32(padded, crc)
                out.write(padded)
            out.seek(8)
            out.write(struct.pack("<I", crc & 0xFFFFFFFF))
        self._spills = []
        self._acc = None
        return self._count

    def _discard(self) -> None:
        for spill in self._spills:
            spill.close()
        self._spills = []
        self._acc = None

    def __enter__(self) -> "StreamingColumnarWriter":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        if exc_type is None:
            if self._acc is not None:
                self.close()
        else:
            self._discard()


# ---------------------------------------------------------------------------
# Converters
# ---------------------------------------------------------------------------


def convert_clf_to_columnar(
    source: str, dest: str, *, strict: bool = False
) -> "ParseStats":
    """One-shot CLF → columnar conversion; parses the log exactly once.

    The final :class:`~repro.trace.clf_parser.ParseStats` (including the
    malformed-line count) is persisted in the columnar header, so the
    provenance of a converted NASA-style log survives the format change.
    """
    from repro.trace.clf_parser import ParseStats, iter_clf_file

    stats = ParseStats()
    writer = ColumnarWriter(dest)
    writer.extend(iter_clf_file(source, strict=strict, stats=stats))
    writer.parse_stats = stats
    writer.close()
    return stats


def convert_columnar_to_clf(source: str, dest: str) -> int:
    """Columnar → CLF conversion; returns the number of lines written.

    Parsed records round-trip byte-identically through
    :func:`~repro.trace.clf_parser.format_clf_line`; lines the original
    parse skipped as malformed are gone (their count lives in the columnar
    header's parse stats), and sub-second timestamps truncate to CLF's
    one-second resolution.
    """
    from repro.trace.clf_parser import write_clf_file

    columns = TraceColumns.load(source)
    with open(dest, "w", encoding="latin-1") as handle:
        return write_clf_file(columns.iter_records(), handle)


# ---------------------------------------------------------------------------
# Vectorised kernels over the columns
# ---------------------------------------------------------------------------

_KIND_IMAGE = 1


def successful_get_mask(columns: TraceColumns) -> np.ndarray:
    """Boolean mask of 2xx/304 GETs (``LogRecord.is_successful_get``)."""
    is_get = np.fromiter(
        (method == "GET" for method in columns.method_table),
        dtype=bool,
        count=len(columns.method_table),
    )
    status = columns.statuses
    ok = ((status >= 200) & (status < 300)) | (status == 304)
    if len(columns.method_table):
        ok &= is_get[columns.methods]
    return ok


def record_sort_order(columns: TraceColumns) -> np.ndarray:
    """Indices ordering rows by ``(timestamp, client, url)`` — the exact
    (stable) order of :func:`repro.trace.record.sort_records`."""
    client_rank = _string_ranks(columns.client_table)[columns.clients]
    url_rank = _string_ranks(columns.url_table)[columns.urls]
    return np.lexsort((url_rank, client_rank, columns.timestamps))


def url_kind_codes(url_table: Sequence[str]) -> np.ndarray:
    """Per-URL content class (``UrlKind``), computed once per distinct URL."""
    codes = {UrlKind.HTML: 0, UrlKind.IMAGE: _KIND_IMAGE, UrlKind.OTHER: 2}
    return np.fromiter(
        (codes[classify_url(url)] for url in url_table),
        dtype=np.int8,
        count=len(url_table),
    )


class RequestColumns:
    """Folded page views as columns (struct-of-arrays ``list[Request]``).

    Rows are in the global ``(timestamp, client, url)`` request order the
    object pipeline produces.  Embedded objects are stored flattened:
    request ``i`` owns ``emb_urls[emb_offsets[i]:emb_offsets[i+1]]``.
    """

    __slots__ = (
        "timestamps", "clients", "urls", "sizes", "total_bytes", "latencies",
        "emb_offsets", "emb_urls", "emb_sizes", "client_table", "url_table",
        "_client_ranks",
    )

    def __init__(
        self,
        *,
        timestamps: np.ndarray,
        clients: np.ndarray,
        urls: np.ndarray,
        sizes: np.ndarray,
        total_bytes: np.ndarray,
        latencies: np.ndarray,
        emb_offsets: np.ndarray,
        emb_urls: np.ndarray,
        emb_sizes: np.ndarray,
        client_table: tuple[str, ...],
        url_table: tuple[str, ...],
    ) -> None:
        self.timestamps = timestamps
        self.clients = clients
        self.urls = urls
        self.sizes = sizes
        self.total_bytes = total_bytes
        self.latencies = latencies
        self.emb_offsets = emb_offsets
        self.emb_urls = emb_urls
        self.emb_sizes = emb_sizes
        self.client_table = client_table
        self.url_table = url_table
        self._client_ranks: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.timestamps)

    def client_ranks(self) -> np.ndarray:
        """Per-row lexicographic client rank (cached)."""
        if self._client_ranks is None:
            self._client_ranks = _string_ranks(self.client_table)[self.clients]
        return self._client_ranks

    def url_counts(self) -> np.ndarray:
        """Access count per URL id over these page views (popularity)."""
        return np.bincount(self.urls, minlength=len(self.url_table))

    def day_index(self, epoch: float) -> np.ndarray:
        """0-based day of each request (vectorised ``Trace.day_of``)."""
        return np.floor_divide(self.timestamps - epoch, _SECONDS_PER_DAY).astype(
            np.int64
        )

    def materialize(self) -> list[Request]:
        """Bit-identical :class:`Request` objects, in row order."""
        clients, urls = self.client_table, self.url_table
        offsets = self.emb_offsets.tolist()
        emb_urls = self.emb_urls.tolist()
        emb_sizes = self.emb_sizes.tolist()
        out: list[Request] = []
        for i, (ts, cid, uid, size, latency) in enumerate(
            zip(
                self.timestamps.tolist(),
                self.clients.tolist(),
                self.urls.tolist(),
                self.sizes.tolist(),
                self.latencies.tolist(),
            )
        ):
            lo, hi = offsets[i], offsets[i + 1]
            out.append(
                Request(
                    client=clients[cid],
                    timestamp=ts,
                    url=urls[uid],
                    size=size,
                    embedded=tuple(
                        EmbeddedObject(url=urls[emb_urls[j]], size=emb_sizes[j])
                        for j in range(lo, hi)
                    ),
                    latency=None if math.isnan(latency) else latency,
                )
            )
        return out


def fold_request_columns(
    columns: TraceColumns,
    *,
    window_seconds: float = params.EMBEDDED_OBJECT_WINDOW_S,
) -> RequestColumns:
    """Vectorised embedded-object fold over filtered, sorted columns.

    ``columns`` must already be in ``(timestamp, client, url)`` order (the
    output of the successful-GET filter + sort).  The object fold walks
    each client's records keeping one open HTML window; here the same
    decision is a closed-form test: because records are time-ordered, an
    image attaches iff its client has a preceding non-image record within
    ``window_seconds`` and no earlier image of the same window already
    fell outside it — and that second condition is implied by the first
    (windows only ever close earlier, never reopen).  So one segmented
    running maximum finds every image's candidate parent and one subtract
    decides attachment, for any number of clients at once.
    """
    n = len(columns)
    order = np.argsort(
        _string_ranks(columns.client_table)[columns.clients], kind="stable"
    )
    ts = columns.timestamps[order]
    clients = columns.clients[order]
    sizes = columns.sizes[order]
    is_image = (url_kind_codes(columns.url_table) == _KIND_IMAGE)[
        columns.urls[order]
    ]

    idx = np.arange(n, dtype=np.int64)
    segment_start_mask = np.ones(n, dtype=bool)
    if n > 1:
        segment_start_mask[1:] = clients[1:] != clients[:-1]
    segment_start = np.maximum.accumulate(np.where(segment_start_mask, idx, 0))
    last_non_image = np.maximum.accumulate(np.where(is_image, -1, idx))
    parent = np.where(last_non_image >= segment_start, last_non_image, -1)
    has_parent = parent >= 0
    attach = (
        is_image
        & has_parent
        & (ts - ts[np.maximum(parent, 0)] <= window_seconds)
    )

    total = sizes.copy()
    if attach.any():
        np.add.at(total, parent[attach], sizes[attach])
    emb_count = np.bincount(parent[attach], minlength=n) if attach.any() else (
        np.zeros(n, dtype=np.int64)
    )

    generator_rows = np.flatnonzero(~attach)
    attached_rows = np.flatnonzero(attach)

    # Requests come out per client in record order; the global request
    # order re-sorts by (timestamp, client, url), stable — identical to
    # the object pipeline's final merge sort.
    g_ts = ts[generator_rows]
    g_clients = clients[generator_rows]
    g_urls = columns.urls[order][generator_rows]
    g_rank_c = _string_ranks(columns.client_table)[g_clients]
    g_rank_u = _string_ranks(columns.url_table)[g_urls]
    final = np.lexsort((g_rank_u, g_rank_c, g_ts))

    counts = emb_count[generator_rows][final]
    offsets = np.zeros(len(generator_rows) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])

    # Attached rows are contiguous right after their parent page, so the
    # per-request embedded slices are gathers of one flattened array.
    if len(attached_rows):
        # Map each attached row to its parent's final position, then
        # stable-sort attached rows by it: the flattened embedded array
        # lines up with the per-request offsets computed above.
        parent_pos = np.empty(n, dtype=np.int64)
        parent_pos[generator_rows[final]] = np.arange(
            len(generator_rows), dtype=np.int64
        )
        att_order = np.argsort(parent_pos[parent[attached_rows]], kind="stable")
        emb_urls = columns.urls[order][attached_rows][att_order]
        emb_sizes = sizes[attached_rows][att_order]
    else:
        emb_urls = np.empty(0, dtype=np.int32)
        emb_sizes = np.empty(0, dtype=np.int64)

    return RequestColumns(
        timestamps=g_ts[final],
        clients=g_clients[final],
        urls=g_urls[final],
        sizes=sizes[generator_rows][final],
        total_bytes=total[generator_rows][final],
        latencies=columns.latencies[order][generator_rows][final],
        emb_offsets=offsets,
        emb_urls=emb_urls,
        emb_sizes=emb_sizes,
        client_table=columns.client_table,
        url_table=columns.url_table,
    )


class SessionLayout:
    """Sessions as index spans over a :class:`RequestColumns` row order.

    ``grouped[starts[k]:ends[k]]`` are the request-row indices of session
    ``k``, already in the object pipeline's session order (start time,
    then client id).
    """

    __slots__ = ("grouped", "starts", "ends", "client_ids", "start_times")

    def __init__(
        self,
        grouped: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        client_ids: np.ndarray,
        start_times: np.ndarray,
    ) -> None:
        self.grouped = grouped
        self.starts = starts
        self.ends = ends
        self.client_ids = client_ids
        self.start_times = start_times

    def __len__(self) -> int:
        return len(self.starts)

    def url_id_sequences(self, requests: RequestColumns) -> list[np.ndarray]:
        """Per-session URL id arrays (model-build input, no objects)."""
        grouped_urls = requests.urls[self.grouped]
        return [
            grouped_urls[start:end]
            for start, end in zip(self.starts.tolist(), self.ends.tolist())
        ]


def session_layout(
    requests: RequestColumns,
    *,
    idle_timeout_seconds: float = params.SESSION_IDLE_TIMEOUT_S,
) -> SessionLayout:
    """Vectorised sessionisation: idle-gap splits per client, in one pass.

    Matches :func:`repro.trace.sessions.sessionize` bit for bit: a gap
    strictly greater than the timeout (or a client change) starts a new
    session, and sessions order by (start time, client id string).
    """
    n = len(requests)
    grouped = np.argsort(requests.client_ranks(), kind="stable")
    ts = requests.timestamps[grouped]
    clients = requests.clients[grouped]
    boundary = np.ones(n, dtype=bool)
    if n > 1:
        boundary[1:] = (clients[1:] != clients[:-1]) | (
            ts[1:] - ts[:-1] > idle_timeout_seconds
        )
    starts = np.flatnonzero(boundary)
    ends = np.append(starts[1:], n)

    start_times = ts[starts]
    client_ids = clients[starts]
    rank_of = _string_ranks(requests.client_table)
    order = np.lexsort((rank_of[client_ids], start_times))
    return SessionLayout(
        grouped=grouped,
        starts=starts[order],
        ends=ends[order],
        client_ids=client_ids[order],
        start_times=start_times[order],
    )


def materialize_sessions(
    layout: SessionLayout,
    requests: Sequence[Request],
    client_table: Sequence[str],
) -> list[Session]:
    """Bit-identical :class:`Session` objects over materialised requests.

    ``requests`` must be the materialised rows of the same
    :class:`RequestColumns` the layout was computed from, so sessions share
    request object identity with ``trace.requests`` exactly like the
    object pipeline does.
    """
    grouped = layout.grouped.tolist()
    out: list[Session] = []
    for start, end, cid in zip(
        layout.starts.tolist(), layout.ends.tolist(), layout.client_ids.tolist()
    ):
        out.append(
            Session(
                client=client_table[cid],
                requests=tuple(requests[grouped[i]] for i in range(start, end)),
            )
        )
    return out


# ---------------------------------------------------------------------------
# The replay batch the simulator and the parallel engine consume
# ---------------------------------------------------------------------------


class RequestBatch:
    """Column-backed page views in replay order, for the simulator.

    Rows are pre-sorted by the engine's ``(timestamp, client)`` replay
    key, so the serial engine iterates primitive columns directly instead
    of sorting and unpacking ``Request`` objects; the parallel engine
    shards by slicing row ranges (cheap array pickles) instead of
    pickling request lists.
    """

    __slots__ = (
        "timestamps", "clients", "urls", "total_bytes",
        "client_table", "url_table",
    )

    def __init__(
        self,
        *,
        timestamps: np.ndarray,
        clients: np.ndarray,
        urls: np.ndarray,
        total_bytes: np.ndarray,
        client_table: tuple[str, ...],
        url_table: tuple[str, ...],
    ) -> None:
        self.timestamps = timestamps
        self.clients = clients
        self.urls = urls
        self.total_bytes = total_bytes
        self.client_table = client_table
        self.url_table = url_table

    def __len__(self) -> int:
        return len(self.timestamps)

    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    @classmethod
    def from_request_columns(
        cls, requests: RequestColumns, rows: np.ndarray | None = None
    ) -> "RequestBatch":
        """Batch over (a row subset of) request columns.

        Request-column row order is ``(timestamp, client, url)``; its
        restriction to any subset is already stable-sorted by the replay
        key, so no re-sort happens here.
        """
        if rows is None:
            rows = slice(None)
        return cls(
            timestamps=requests.timestamps[rows],
            clients=requests.clients[rows],
            urls=requests.urls[rows],
            total_bytes=requests.total_bytes[rows],
            client_table=requests.client_table,
            url_table=requests.url_table,
        )

    @classmethod
    def from_requests(cls, requests: Sequence[Request]) -> "RequestBatch":
        """Batch from :class:`Request` objects (sorted into replay order)."""
        clients = SymbolTable()
        urls = SymbolTable()
        client_ids = np.fromiter(
            (clients.intern(r.client) for r in requests),
            dtype=np.int32,
            count=len(requests),
        )
        url_ids = np.fromiter(
            (urls.intern(r.url) for r in requests),
            dtype=np.int32,
            count=len(requests),
        )
        ts = np.fromiter(
            (r.timestamp for r in requests), dtype=np.float64, count=len(requests)
        )
        totals = np.fromiter(
            (r.total_bytes for r in requests), dtype=np.int64, count=len(requests)
        )
        client_table = clients.urls()
        order = np.lexsort((_string_ranks(client_table)[client_ids], ts))
        return cls(
            timestamps=ts[order],
            clients=client_ids[order],
            urls=url_ids[order],
            total_bytes=totals[order],
            client_table=client_table,
            url_table=urls.urls(),
        )

    def iter_rows(self) -> Iterator[tuple[str, str, float, int]]:
        """Yield ``(client, url, timestamp, total_bytes)`` in replay order."""
        client_table, url_table = self.client_table, self.url_table
        return (
            (client_table[cid], url_table[uid], ts, total)
            for cid, uid, ts, total in zip(
                self.clients.tolist(),
                self.urls.tolist(),
                self.timestamps.tolist(),
                self.total_bytes.tolist(),
            )
        )

    def replay_keys(self) -> list[tuple[float, str]]:
        """Per-row ``(timestamp, client)`` keys, aligned with replay order."""
        client_table = self.client_table
        return [
            (ts, client_table[cid])
            for ts, cid in zip(self.timestamps.tolist(), self.clients.tolist())
        ]

    def take(self, rows: np.ndarray) -> "RequestBatch":
        """Row subset (ascending ``rows`` keeps replay order), tables shared."""
        return RequestBatch(
            timestamps=self.timestamps[rows],
            clients=self.clients[rows],
            urls=self.urls[rows],
            total_bytes=self.total_bytes[rows],
            client_table=self.client_table,
            url_table=self.url_table,
        )

    def select_clients(self, wanted: Iterable[str]) -> "RequestBatch":
        """Rows belonging to ``wanted`` clients (proxy-study subsets)."""
        names = frozenset(wanted)
        keep = np.fromiter(
            (name in names for name in self.client_table),
            dtype=bool,
            count=len(self.client_table),
        )
        if not len(self):
            return self
        return self.take(np.flatnonzero(keep[self.clients]))


# ---------------------------------------------------------------------------
# The trace plane: filtered columns + lazily derived request/session views
# ---------------------------------------------------------------------------


class TracePlane:
    """The vectorised pipeline behind :class:`repro.trace.dataset.Trace`.

    Owns the successful-GET-filtered, ``(timestamp, client, url)``-sorted
    columns and derives the request fold and session layout lazily — the
    columnar twin of the Trace's lazy ``requests`` / ``sessions``
    properties, minus any Python-object materialisation.
    """

    __slots__ = (
        "columns", "embed_window_seconds", "idle_timeout_seconds",
        "_requests", "_sessions",
    )

    def __init__(
        self,
        raw: TraceColumns,
        *,
        embed_window_seconds: float = params.EMBEDDED_OBJECT_WINDOW_S,
        idle_timeout_seconds: float = params.SESSION_IDLE_TIMEOUT_S,
    ) -> None:
        mask = successful_get_mask(raw)
        order = record_sort_order(raw)
        self.columns = raw.select(order[mask[order]])
        self.embed_window_seconds = embed_window_seconds
        self.idle_timeout_seconds = idle_timeout_seconds
        self._requests: RequestColumns | None = None
        self._sessions: SessionLayout | None = None

    def __len__(self) -> int:
        return len(self.columns)

    @property
    def requests(self) -> RequestColumns:
        if self._requests is None:
            self._requests = fold_request_columns(
                self.columns, window_seconds=self.embed_window_seconds
            )
        return self._requests

    @property
    def sessions(self) -> SessionLayout:
        if self._sessions is None:
            self._sessions = session_layout(
                self.requests, idle_timeout_seconds=self.idle_timeout_seconds
            )
        return self._sessions

    # -- derived tables (vectorised Trace twins) ----------------------------

    def url_access_counts(self) -> dict[str, int]:
        counts = self.requests.url_counts()
        table = self.requests.url_table
        return {
            table[i]: int(counts[i]) for i in np.flatnonzero(counts).tolist()
        }

    def url_size_table(self) -> dict[str, int]:
        requests = self.requests
        sizes = np.full(len(requests.url_table), -1, dtype=np.int64)
        np.maximum.at(sizes, requests.urls, requests.total_bytes)
        table = requests.url_table
        return {
            table[i]: int(sizes[i]) for i in np.flatnonzero(sizes >= 0).tolist()
        }

    def requests_per_client_per_day(self, epoch: float) -> dict[str, float]:
        columns = self.columns
        day = np.floor_divide(
            columns.timestamps - epoch, _SECONDS_PER_DAY
        ).astype(np.int64)
        counts = np.bincount(
            columns.clients, minlength=len(columns.client_table)
        )
        span = int(day.max()) + 1 if len(day) else 1
        pair_keys = np.unique(columns.clients.astype(np.int64) * span + day)
        active_days = np.bincount(
            (pair_keys // span).astype(np.int64),
            minlength=len(columns.client_table),
        )
        table = columns.client_table
        return {
            table[i]: counts[i] / active_days[i]
            for i in np.flatnonzero(counts).tolist()
        }

    def record_clients(self) -> frozenset[str]:
        table = self.columns.client_table
        present = np.bincount(
            self.columns.clients, minlength=len(table)
        ).astype(bool)
        return frozenset(table[i] for i in np.flatnonzero(present).tolist())
