"""Folding embedded image fetches into their parent page view.

Paper Section 2.2: *"If an HTML file of the same client is followed by image
files in 10 seconds, we consider the image file as an embedded file in the
HTML file.  For these embedded files, we record them with the HTML files."*

The fold converts a per-client stream of raw :class:`LogRecord` objects into
:class:`Request` page views.  Image records with no eligible parent (a
bookmark straight to an image, or an image arriving after the window) become
stand-alone requests, so no bytes are lost.
"""

from __future__ import annotations

from typing import Iterable

from repro import params
from repro.trace.filetypes import UrlKind, classify_url
from repro.trace.record import EmbeddedObject, LogRecord, Request, iter_by_client


def _finish(
    page: LogRecord, embedded: list[EmbeddedObject]
) -> Request:
    return Request(
        client=page.client,
        timestamp=page.timestamp,
        url=page.url,
        size=page.size,
        embedded=tuple(embedded),
        latency=page.latency,
    )


def fold_client_records(
    records: list[LogRecord],
    *,
    window_seconds: float = params.EMBEDDED_OBJECT_WINDOW_S,
) -> list[Request]:
    """Fold one client's time-ordered records into page views.

    The most recent HTML request opens a window of ``window_seconds``;
    every image request inside the window attaches to it.  A new HTML (or
    other non-image) request closes the previous window.
    """
    requests: list[Request] = []
    open_page: LogRecord | None = None
    open_embedded: list[EmbeddedObject] = []

    def close() -> None:
        nonlocal open_page, open_embedded
        if open_page is not None:
            requests.append(_finish(open_page, open_embedded))
            open_page = None
            open_embedded = []

    for record in records:
        kind = classify_url(record.url)
        if kind is UrlKind.IMAGE:
            if (
                open_page is not None
                and record.timestamp - open_page.timestamp <= window_seconds
            ):
                open_embedded.append(EmbeddedObject(url=record.url, size=record.size))
            else:
                close()
                requests.append(
                    Request(
                        client=record.client,
                        timestamp=record.timestamp,
                        url=record.url,
                        size=record.size,
                        latency=record.latency,
                    )
                )
        else:
            close()
            open_page = record
            open_embedded = []
    close()
    return requests


def fold_embedded_objects(
    records: Iterable[LogRecord],
    *,
    window_seconds: float = params.EMBEDDED_OBJECT_WINDOW_S,
) -> list[Request]:
    """Fold a whole trace of records into page views.

    Records are grouped per client (windows never span clients), folded,
    then merged back into global timestamp order.
    """
    all_requests: list[Request] = []
    for _, client_records in iter_by_client(records):
        ordered = sorted(client_records, key=lambda r: r.timestamp)
        all_requests.extend(
            fold_client_records(ordered, window_seconds=window_seconds)
        )
    all_requests.sort(key=lambda r: (r.timestamp, r.client, r.url))
    return all_requests
