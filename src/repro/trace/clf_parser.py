"""Common Log Format parsing and formatting.

The NASA-KSC and UCB-CS traces the paper evaluates on are plain Common Log
Format (CLF)::

    host - - [01/Jul/1995:00:00:01 -0400] "GET /history/apollo/ HTTP/1.0" 200 6245

This module parses that format into :class:`~repro.trace.record.LogRecord`
objects and can write records back out, which the synthetic generator uses
so a generated trace is byte-compatible with tools expecting real logs.
Malformed lines — the 1995 NASA log famously contains some — are skipped or
raised depending on ``strict``.
"""

from __future__ import annotations

import calendar
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.errors import ParseError
from repro.trace.record import LogRecord


@dataclass
class ParseStats:
    """Counters accumulated while parsing a CLF stream.

    Pass an instance as ``stats=`` to :func:`parse_clf_lines`,
    :func:`iter_clf_file`, or :func:`parse_clf_file`; the counters fill in
    as the stream is consumed (so with the lazy iterators they are only
    final once iteration completes).
    """

    total_lines: int = 0
    parsed: int = 0
    blank: int = 0
    malformed: int = 0

    @property
    def malformed_fraction(self) -> float:
        """Malformed lines as a share of non-blank lines."""
        considered = self.total_lines - self.blank
        return self.malformed / considered if considered else 0.0

_CLF_RE = re.compile(
    r"""
    ^(?P<host>\S+)\s+
    (?P<ident>\S+)\s+
    (?P<user>\S+)\s+
    \[(?P<time>[^\]]+)\]\s+
    "(?P<request>[^"]*)"\s+
    (?P<status>\d{3})\s+
    (?P<size>\d+|-)
    \s*$
    """,
    re.VERBOSE,
)

_MONTHS = {
    "Jan": 1, "Feb": 2, "Mar": 3, "Apr": 4, "May": 5, "Jun": 6,
    "Jul": 7, "Aug": 8, "Sep": 9, "Oct": 10, "Nov": 11, "Dec": 12,
}
_MONTH_NAMES = {v: k for k, v in _MONTHS.items()}

_TIME_RE = re.compile(
    r"^(?P<day>\d{2})/(?P<mon>[A-Z][a-z]{2})/(?P<year>\d{4})"
    r":(?P<h>\d{2}):(?P<m>\d{2}):(?P<s>\d{2})\s*(?P<tz>[+-]\d{4})?$"
)


def _parse_clf_time(text: str) -> float:
    """Convert a CLF timestamp to epoch seconds (UTC)."""
    match = _TIME_RE.match(text.strip())
    if match is None:
        raise ValueError(f"bad CLF time: {text!r}")
    month = _MONTHS.get(match.group("mon"))
    if month is None:
        raise ValueError(f"bad CLF month: {text!r}")
    day = int(match.group("day"))
    if not 1 <= day <= 31:
        raise ValueError(f"bad CLF day of month: {text!r}")
    hour, minute, second = (
        int(match.group("h")),
        int(match.group("m")),
        int(match.group("s")),
    )
    if hour > 23 or minute > 59 or second > 60:  # 60 allows leap seconds
        raise ValueError(f"bad CLF time of day: {text!r}")
    epoch = calendar.timegm(
        (
            int(match.group("year")),
            month,
            int(match.group("day")),
            int(match.group("h")),
            int(match.group("m")),
            int(match.group("s")),
            0,
            0,
            0,
        )
    )
    tz = match.group("tz")
    if tz:
        offset = int(tz[1:3]) * 3600 + int(tz[3:5]) * 60
        if tz[0] == "+":
            epoch -= offset
        else:
            epoch += offset
    return float(epoch)


def _format_clf_time(timestamp: float) -> str:
    """Render epoch seconds as a CLF timestamp in UTC."""
    import time as _time

    tm = _time.gmtime(timestamp)
    return (
        f"{tm.tm_mday:02d}/{_MONTH_NAMES[tm.tm_mon]}/{tm.tm_year:04d}"
        f":{tm.tm_hour:02d}:{tm.tm_min:02d}:{tm.tm_sec:02d} +0000"
    )


def _split_request(request: str) -> tuple[str, str]:
    """Split the quoted request field into (method, url).

    Tolerates the HTTP-version field being absent (HTTP/0.9 requests in the
    NASA log) and strips query strings from the URL, as the paper's models
    key on document paths.
    """
    parts = request.split()
    if not parts:
        raise ValueError("empty request field")
    if len(parts) == 1:
        # Bare URL, implicit GET (HTTP/0.9 style).
        return "GET", parts[0].split("?", 1)[0]
    method = parts[0].upper()
    url = parts[1].split("?", 1)[0]
    return method, url


def parse_clf_line(line: str) -> LogRecord:
    """Parse one CLF line into a :class:`LogRecord`.

    Raises
    ------
    ParseError
        If the line does not match the Common Log Format.
    """
    match = _CLF_RE.match(line)
    if match is None:
        raise ParseError(line, "does not match CLF grammar")
    try:
        timestamp = _parse_clf_time(match.group("time"))
    except ValueError as exc:
        raise ParseError(line, str(exc)) from exc
    try:
        method, url = _split_request(match.group("request"))
    except ValueError as exc:
        raise ParseError(line, str(exc)) from exc
    size_field = match.group("size")
    size = 0 if size_field == "-" else int(size_field)
    return LogRecord(
        client=match.group("host"),
        timestamp=timestamp,
        url=url,
        size=size,
        status=int(match.group("status")),
        method=method,
    )


def parse_clf_lines(
    lines: Iterable[str], *, strict: bool = False, stats: ParseStats | None = None
) -> Iterator[LogRecord]:
    """Parse many CLF lines lazily, skipping blanks.

    Parameters
    ----------
    lines:
        Any iterable of text lines (a file object works).  Lines are
        consumed one at a time; no intermediate list is built.
    strict:
        When true, malformed lines raise :class:`ParseError`; when false
        (the default, matching how the paper's traces must be handled) they
        are skipped and counted.
    stats:
        Optional :class:`ParseStats` whose counters are incremented as the
        stream is consumed.
    """
    if stats is None:
        stats = ParseStats()
    for line in lines:
        stats.total_lines += 1
        stripped = line.strip()
        if not stripped:
            stats.blank += 1
            continue
        try:
            record = parse_clf_line(stripped)
        except ParseError:
            stats.malformed += 1
            if strict:
                raise
            continue
        stats.parsed += 1
        yield record


def iter_clf_file(
    path: str, *, strict: bool = False, stats: ParseStats | None = None
) -> Iterator[LogRecord]:
    """Stream records from a CLF log file on disk.

    The file is read line by line and closed when the generator is
    exhausted or discarded; nothing is buffered, so arbitrarily large logs
    parse in constant memory.
    """
    with open(path, "r", encoding="latin-1") as handle:
        yield from parse_clf_lines(handle, strict=strict, stats=stats)


def parse_clf_file(
    path: str, *, strict: bool = False, stats: ParseStats | None = None
) -> list[LogRecord]:
    """Parse a CLF log file from disk into a record list.

    Convenience wrapper over :func:`iter_clf_file` for callers that want
    the whole log in memory anyway.
    """
    return list(iter_clf_file(path, strict=strict, stats=stats))


def format_clf_line(record: LogRecord) -> str:
    """Render a record as one CLF line (inverse of :func:`parse_clf_line`)."""
    return (
        f"{record.client} - - [{_format_clf_time(record.timestamp)}] "
        f'"{record.method} {record.url} HTTP/1.0" {record.status} {record.size}'
    )


def write_clf_file(records: Iterable[LogRecord], handle: TextIO) -> int:
    """Write records in CLF to an open text handle; returns the line count."""
    count = 0
    for record in records:
        handle.write(format_clf_line(record))
        handle.write("\n")
        count += 1
    return count
