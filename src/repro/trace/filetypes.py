"""Content classification of URLs, per the paper's Section 2.2 lists.

The paper enumerates the extensions treated as embedded images and those
treated as HTML documents; an image request arriving within ten seconds of
an HTML request from the same client is folded into that page view.
"""

from __future__ import annotations

import posixpath
from enum import Enum

#: Image-file extensions the paper lists as embeddable in an HTML document.
EMBEDDED_IMAGE_EXTENSIONS: frozenset[str] = frozenset(
    {
        ".gif",
        ".xbm",
        ".jpg",
        ".jpeg",
        ".gif89",
        ".tif",
        ".tiff",
        ".bmp",
        ".ief",
        ".jpe",
        ".ras",
        ".pnm",
        ".pgm",
        ".ppm",
        ".rgb",
        ".xpm",
        ".xwd",
        ".pcx",
        ".pbm",
        ".pic",
    }
)

#: Extensions the paper treats as HTML documents.
HTML_EXTENSIONS: frozenset[str] = frozenset({".html", ".htm", ".shtml"})


class UrlKind(Enum):
    """Coarse content classification used by the embedding folder."""

    HTML = "html"
    IMAGE = "image"
    OTHER = "other"


def url_extension(url: str) -> str:
    """Return the lower-cased extension of a URL path ('' if none).

    Query strings and fragments are stripped before the extension is read,
    so ``/a/b.html?x=1`` classifies as ``.html``.
    """
    path = url.split("?", 1)[0].split("#", 1)[0]
    return posixpath.splitext(path)[1].lower()


def is_html(url: str) -> bool:
    """True if the URL looks like an HTML document.

    Directory URLs (trailing slash or no extension) serve index documents,
    so they count as HTML too — exactly the URLs that head surfing paths in
    the NASA and UCB traces.
    """
    ext = url_extension(url)
    return ext in HTML_EXTENSIONS or ext == ""


def is_embedded_image(url: str) -> bool:
    """True if the URL's extension is in the paper's embeddable-image list."""
    return url_extension(url) in EMBEDDED_IMAGE_EXTENSIONS


def classify_url(url: str) -> UrlKind:
    """Classify a URL as HTML, embeddable image, or other content."""
    if is_embedded_image(url):
        return UrlKind.IMAGE
    if is_html(url):
        return UrlKind.HTML
    return UrlKind.OTHER
