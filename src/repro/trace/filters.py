"""Composable record filters for trace preprocessing.

Real server logs need cleaning before they feed a prediction model: crawler
traffic, error responses, non-GET methods, date windows.  Each filter here
is a plain predicate factory; :func:`apply_filters` chains them.  The
:class:`Trace` constructor already applies the successful-GET filter the
paper uses; these are for callers preparing their own record streams.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.trace.record import LogRecord

RecordPredicate = Callable[[LogRecord], bool]


def by_status(*allowed: int) -> RecordPredicate:
    """Keep records whose status code is one of ``allowed``."""
    allowed_set = frozenset(allowed)

    def predicate(record: LogRecord) -> bool:
        return record.status in allowed_set

    return predicate


def successful() -> RecordPredicate:
    """Keep 2xx and 304 responses (the paper's notion of a served hit)."""

    def predicate(record: LogRecord) -> bool:
        return 200 <= record.status < 300 or record.status == 304

    return predicate


def by_method(*methods: str) -> RecordPredicate:
    """Keep records with one of the given HTTP methods (case-insensitive)."""
    wanted = frozenset(m.upper() for m in methods)

    def predicate(record: LogRecord) -> bool:
        return record.method.upper() in wanted

    return predicate


def by_time_window(start: float, end: float) -> RecordPredicate:
    """Keep records with ``start <= timestamp < end``."""
    if end < start:
        raise ValueError(f"empty window: [{start}, {end})")

    def predicate(record: LogRecord) -> bool:
        return start <= record.timestamp < end

    return predicate


def by_clients(clients: Iterable[str], *, keep: bool = True) -> RecordPredicate:
    """Keep (or with ``keep=False`` drop) records from the given clients."""
    wanted = frozenset(clients)

    def predicate(record: LogRecord) -> bool:
        return (record.client in wanted) is keep

    return predicate


def exclude_url_prefixes(*prefixes: str) -> RecordPredicate:
    """Drop records whose URL starts with any prefix (e.g. ``/cgi-bin/``)."""

    def predicate(record: LogRecord) -> bool:
        return not any(record.url.startswith(prefix) for prefix in prefixes)

    return predicate


def exclude_bots(
    *, max_requests_per_minute: float = 60.0
) -> Callable[[Sequence[LogRecord]], list[LogRecord]]:
    """A whole-stream filter dropping clients with bot-like request rates.

    A client whose *peak* request rate within any minute exceeds the bound
    is treated as a crawler and removed entirely.  Returns a function over
    the full record list (the decision needs global per-client context).
    """
    if max_requests_per_minute <= 0:
        raise ValueError("max_requests_per_minute must be positive")

    def apply(records: Sequence[LogRecord]) -> list[LogRecord]:
        per_client_minutes: dict[tuple[str, int], int] = {}
        for record in records:
            key = (record.client, int(record.timestamp // 60))
            per_client_minutes[key] = per_client_minutes.get(key, 0) + 1
        bots = {
            client
            for (client, _), count in per_client_minutes.items()
            if count > max_requests_per_minute
        }
        return [record for record in records if record.client not in bots]

    return apply


def apply_filters(
    records: Iterable[LogRecord], *predicates: RecordPredicate
) -> Iterator[LogRecord]:
    """Yield records passing every predicate, in order."""
    for record in records:
        if all(predicate(record) for predicate in predicates):
            yield record
