"""The workload lab: one generated trace, many cached evaluations.

Several experiments sweep the same (profile, training-days) grid; the lab
generates each trace once, fits each (model, train-days) pair once, and
caches every simulator run, so a full benchmark session does not repeat
work.  ``REPRO_BENCH_SCALE`` (environment variable) scales the client
population of every lab — set it below 1.0 for quick smoke runs.

Replay parallelism: every client-mode cell replays through
:class:`repro.parallel.ParallelPrefetchSimulator`, sharded across the
lab's ``workers`` (CLI ``--workers``, ``REPRO_WORKERS`` environment
variable, or :func:`set_default_workers`).  Sharded results are
bit-identical to serial replay, so the fit/run caches are shard-safe by
construction: ``workers`` is deliberately *not* part of any cache key —
it only changes wall-clock, never numbers — and models are always fitted
in the parent process before shards are dispatched.
"""

from __future__ import annotations

import os
from typing import Callable, Mapping, Sequence

from repro import params
from repro.core.base import PPMModel
from repro.core.extras import FirstOrderMarkov, TopNPush
from repro.core.lrs import LRSPPM
from repro.core.pb import PopularityBasedPPM
from repro.core.popularity import PopularityTable
from repro.core.standard import StandardPPM
from repro.errors import ExperimentError
from repro.parallel import ParallelPrefetchSimulator
from repro.sim.config import SimulationConfig
from repro.sim.latency import LatencyModel
from repro.sim.metrics import SimulationResult
from repro.synth.generator import generate_trace
from repro.trace.dataset import Trace, TrainTestSplit

#: Default seed of every registered experiment (fixed for reproducibility).
DEFAULT_SEED = 7


def bench_scale() -> float:
    """Workload scale factor from the REPRO_BENCH_SCALE environment variable."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


_default_workers_override: int | None = None


def default_workers() -> int:
    """Worker-process count new labs replay with.

    Resolution order: :func:`set_default_workers` override, then the
    ``REPRO_WORKERS`` environment variable, then
    :data:`repro.params.DEFAULT_WORKERS` (1, i.e. serial).  ``0`` means
    one worker per CPU core.
    """
    if _default_workers_override is not None:
        return _default_workers_override
    return int(os.environ.get("REPRO_WORKERS", str(params.DEFAULT_WORKERS)))


def set_default_workers(workers: int | None) -> None:
    """Set (or with ``None`` clear) the process-wide replay worker count.

    The CLI's ``--workers`` flag lands here.  Only wall-clock changes:
    sharded replay is bit-identical to serial, so cached runs stay valid.
    Existing labs are updated too, since :func:`get_lab` hands out
    long-lived cached instances.
    """
    global _default_workers_override
    if workers is not None and workers < 0:
        raise ExperimentError(f"workers must be >= 0, got {workers}")
    _default_workers_override = workers
    for lab in _LABS.values():
        lab.workers = default_workers()


_default_sampling_override: "tuple[float, int] | None" = None


def default_sampling() -> "tuple[float, int] | None":
    """The (rate, salt) new labs subsample their trace with, or None.

    Resolution order: :func:`set_default_sampling` override, then the
    ``REPRO_SAMPLE_RATE`` / ``REPRO_SAMPLE_SALT`` environment
    variables, then no sampling.  A rate of 1.0 means full trace.
    """
    if _default_sampling_override is not None:
        return _default_sampling_override
    rate = os.environ.get("REPRO_SAMPLE_RATE")
    if rate is None:
        return None
    return (float(rate), int(os.environ.get("REPRO_SAMPLE_SALT", "0")))


def set_default_sampling(rate: float | None, salt: int = 0) -> None:
    """Set (or with ``None`` clear) process-wide client-hash sampling.

    The CLI's ``--sample-rate`` flag lands here.  Unlike ``workers``
    this *changes results* (a sampled lab replays a client subset), so
    existing labs are left untouched — the sampling spec is part of the
    :func:`get_lab` cache key, and only labs built after this call see
    the new default.
    """
    global _default_sampling_override
    if rate is None:
        _default_sampling_override = None
        return
    from repro.sampling.sampler import ClientSampler

    sampler = ClientSampler(rate, salt=salt)  # validates rate and salt
    _default_sampling_override = (sampler.rate, sampler.salt)


class WorkloadLab:
    """Caches trace, splits, popularity tables, models and simulator runs.

    Parameters
    ----------
    profile:
        Built-in profile name (``nasa-like`` or ``ucb-like``).
    total_days:
        Days to generate; training sweeps may use up to ``total_days - 1``.
    seed / scale:
        Generator seed and client-population scale.
    workers:
        Worker processes for sharded client-mode replay (default: the
        process-wide :func:`default_workers`).  Never affects results —
        only how fast a cell evaluates — so it is excluded from every
        cache key.
    sample_rate / sample_salt:
        Client-hash sampling applied to the generated trace before any
        derivation (default: the process-wide :func:`default_sampling`).
        Sampling changes results, so it *is* part of the lab cache key.
    """

    def __init__(
        self,
        profile: str,
        total_days: int,
        *,
        seed: int = DEFAULT_SEED,
        scale: float | None = None,
        workers: int | None = None,
        sample_rate: float | None = None,
        sample_salt: int | None = None,
    ) -> None:
        self.profile = profile
        self.total_days = total_days
        self.seed = seed
        self.scale = scale if scale is not None else bench_scale()
        self.workers = workers if workers is not None else default_workers()
        if sample_rate is None:
            default = default_sampling()
            if default is not None:
                sample_rate, sample_salt = default
        self.sample_rate = sample_rate
        self.sample_salt = int(sample_salt or 0)
        self.trace: Trace = generate_trace(
            profile, days=total_days, seed=seed, scale=self.scale
        )
        if self.sample_rate is not None and self.sample_rate < 1.0:
            from repro.sampling.sampler import ClientSampler

            self.trace = self.trace.sampled(
                ClientSampler(self.sample_rate, salt=self.sample_salt)
            )
        self.url_sizes = self.trace.url_size_table()
        self.client_kinds = self.trace.classify_clients()
        self._splits: dict[int, TrainTestSplit] = {}
        self._popularity: dict[int, PopularityTable] = {}
        self._latency: dict[int, LatencyModel] = {}
        self._models: dict[tuple[str, int], PPMModel] = {}
        self._runs: dict[tuple, SimulationResult] = {}

    # -- cached building blocks ------------------------------------------------

    def split(self, train_days: int) -> TrainTestSplit:
        if train_days not in self._splits:
            self._splits[train_days] = self.trace.split(train_days)
        return self._splits[train_days]

    def popularity(self, train_days: int) -> PopularityTable:
        if train_days not in self._popularity:
            self._popularity[train_days] = PopularityTable.from_requests(
                self.split(train_days).train_requests
            )
        return self._popularity[train_days]

    def latency(self, train_days: int) -> LatencyModel:
        if train_days not in self._latency:
            self._latency[train_days] = LatencyModel.fit_requests(
                self.split(train_days).train_requests
            )
        return self._latency[train_days]

    # -- model construction --------------------------------------------------------

    def _model_factories(
        self, train_days: int
    ) -> Mapping[str, Callable[[], PPMModel]]:
        """Model builders for one training window, keyed by model key."""
        # The paper applies PB-PPM's absolute-count pruning pass on the
        # UCB-CS trace only.
        absolute = 1 if self.profile.startswith("ucb") else None
        popularity = self.popularity(train_days)
        return {
            "standard": StandardPPM,
            "standard3": StandardPPM.order_3,
            "lrs": LRSPPM,
            "pb": lambda: PopularityBasedPPM(
                popularity, prune_absolute_count=absolute
            ),
            "pb-unpruned": lambda: PopularityBasedPPM(
                popularity,
                prune_relative_probability=None,
                prune_absolute_count=None,
            ),
            "markov1": FirstOrderMarkov,
            "top10": lambda: TopNPush(n=10),
        }

    def model(self, key: str, train_days: int) -> PPMModel:
        """A fitted model for the given training window (cached)."""
        cache_key = (key, train_days)
        if cache_key not in self._models:
            factories = self._model_factories(train_days)
            if key not in factories:
                raise ExperimentError(
                    f"unknown model key {key!r}; available: {sorted(factories)}"
                )
            model = factories[key]()
            model.fit(self.split(train_days).train_sessions)
            self._models[cache_key] = model
        return self._models[cache_key]

    # -- simulator runs -------------------------------------------------------------

    def config_for(self, model_key: str, **overrides) -> SimulationConfig:
        """The paper's Section-4 configuration for a model key."""
        base_name = "pb" if model_key.startswith("pb") else model_key
        return SimulationConfig.for_model(base_name, **overrides)

    def run(
        self,
        model_key: str,
        train_days: int,
        *,
        topology: str = "client",
        clients: tuple[str, ...] | None = None,
        threshold: float | None = None,
        prefetch_limit: int | None = None,
        escape: bool | None = None,
        cache_policy: str | None = None,
    ) -> SimulationResult:
        """Replay the test day against a model; results are cached.

        Parameters
        ----------
        topology:
            ``"client"`` for the Section-4 per-client experiments,
            ``"proxy"`` for the Section-5 shared-proxy experiments.
        clients:
            Proxy topology only: the client subset connected to the proxy.
        threshold / prefetch_limit:
            Optional overrides of the prediction-probability threshold and
            the prefetch-size limit (bytes) for ablations and Section 5.
        escape:
            Optional override enabling compression-style PPM escape (an
            ablation; the registered experiments leave it unset).
        cache_policy:
            Optional cache-replacement policy override ("lru", "fifo",
            "lfu", "gdsf") for the replacement-policy ablation.
        """
        run_key = (
            model_key,
            train_days,
            topology,
            clients,
            threshold,
            prefetch_limit,
            escape,
            cache_policy,
        )
        if run_key in self._runs:
            return self._runs[run_key]
        overrides: dict = {}
        if threshold is not None:
            overrides["prediction_threshold"] = threshold
        if prefetch_limit is not None:
            overrides["prefetch_size_limit_bytes"] = prefetch_limit
        if cache_policy is not None:
            overrides["cache_policy"] = cache_policy
        config = self.config_for(model_key, workers=self.workers, **overrides)
        model = self.model(model_key, train_days)
        if escape is not None:
            model = _EscapeWrapper(model, escape)
        simulator = ParallelPrefetchSimulator(
            model,
            self.url_sizes,
            self.latency(train_days),
            config,
            popularity=self.popularity(train_days),
        )
        split = self.split(train_days)
        if topology == "client":
            result = simulator.run(
                split.test_requests, client_kinds=self.client_kinds
            )
        elif topology == "proxy":
            result = simulator.run_proxy(split.test_requests, clients=clients)
        else:
            raise ExperimentError(f"unknown topology {topology!r}")
        result.labels.update(
            {
                "profile": self.profile,
                "train_days": train_days,
                "model_key": model_key,
                "topology": topology,
            }
        )
        if self.sample_rate is not None and self.sample_rate < 1.0:
            result.labels["sample_rate"] = self.sample_rate
        self._runs[run_key] = result
        return result

    def run_grid(
        self, cells: "Sequence[Mapping[str, object]]"
    ) -> list[SimulationResult]:
        """Evaluate a list of grid cells, one :meth:`run` call per cell.

        Each cell is a keyword mapping for :meth:`run` (``model_key`` and
        ``train_days`` required).  Cells are evaluated in order — results
        must not depend on evaluation order, and they do not: each cell's
        replay is itself sharded across the lab's ``workers`` and cached
        under the same keys a direct :meth:`run` call would use, so grid
        sweeps (Figure 3/4 style) transparently use parallel replay.
        """
        return [self.run(**dict(cell)) for cell in cells]

    def browser_clients(self) -> list[str]:
        """Browser-classified client ids active on the trace, sorted."""
        return sorted(
            client
            for client, kind in self.client_kinds.items()
            if kind == "browser"
        )


class _EscapeWrapper:
    """Delegate that forces the ``escape`` flag on every prediction."""

    def __init__(self, model: PPMModel, escape: bool) -> None:
        self._model = model
        self._escape = escape

    def __getattr__(self, name: str):
        return getattr(self._model, name)

    def predict(self, context, *, threshold=params.PREDICTION_PROBABILITY_THRESHOLD, mark_used=True, escape=False):
        del escape
        return self._model.predict(
            context, threshold=threshold, mark_used=mark_used, escape=self._escape
        )


_LABS: dict[tuple, WorkloadLab] = {}


def get_lab(
    profile: str,
    total_days: int,
    *,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
    workers: int | None = None,
    sample_rate: float | None = None,
    sample_salt: int | None = None,
) -> WorkloadLab:
    """Process-wide lab cache so experiments share traces and models.

    ``workers`` updates the cached lab's replay parallelism when given;
    it is not part of the cache key because sharded replay is
    bit-identical to serial (only wall-clock changes).  The sampling
    spec *is* part of the key: a sampled lab replays a client subset,
    so its results must never be confused with a full lab's.
    """
    resolved_scale = scale if scale is not None else bench_scale()
    if sample_rate is None:
        default = default_sampling()
        if default is not None:
            sample_rate, sample_salt = default
    resolved_salt = int(sample_salt or 0)
    key = (profile, total_days, seed, resolved_scale, sample_rate, resolved_salt)
    if key not in _LABS:
        _LABS[key] = WorkloadLab(
            profile,
            total_days,
            seed=seed,
            scale=resolved_scale,
            sample_rate=sample_rate,
            sample_salt=resolved_salt,
        )
    lab = _LABS[key]
    if workers is not None:
        lab.workers = workers
    return lab


def clear_labs() -> None:
    """Drop every cached lab (tests use this to bound memory)."""
    _LABS.clear()
