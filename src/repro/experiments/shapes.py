"""Programmatic verification of the paper's result shapes.

EXPERIMENTS.md makes claims of the form "PB-PPM stores fewer nodes than
LRS-PPM, and the gap widens with training days".  This module encodes
each such claim as a named, checkable :class:`ShapeCheck` over the
corresponding experiment's rows, so ``repro verify`` (or
:func:`verify_shapes`) re-validates the whole reproduction in one call —
no pytest required.

Checks are written against the *shapes* (orderings, growth directions,
bounded gaps), never absolute values, so they hold across seeds and
workload scales within reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.experiments.registry import run_experiment
from repro.experiments.result import ExperimentResult


@dataclass(frozen=True)
class ShapeCheck:
    """One named claim over one experiment's result rows."""

    name: str
    experiment_id: str
    description: str
    predicate: Callable[[ExperimentResult], bool]


@dataclass(frozen=True)
class ShapeOutcome:
    """The verdict for one check."""

    check: ShapeCheck
    passed: bool
    error: str | None = None


def _mean_by_model(result: ExperimentResult, column: str, *, min_days: int = 0):
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for row in result.rows:
        if row.get("train_days", min_days) < min_days:
            continue
        model = str(row["model"])
        sums[model] = sums.get(model, 0.0) + float(row[column])
        counts[model] = counts.get(model, 0) + 1
    return {model: sums[model] / counts[model] for model in sums}


def _space_rows(result: ExperimentResult) -> dict[int, dict]:
    return {row["train_days"]: row for row in result.rows}


# -- the checks --------------------------------------------------------------


def _check_space_ordering(result: ExperimentResult) -> bool:
    rows = _space_rows(result)
    last = rows[max(rows)]
    return last["standard"] > last["lrs"] > last["pb"]


def _check_space_ratio_widens(result: ExperimentResult) -> bool:
    rows = _space_rows(result)
    days = sorted(rows)
    return rows[days[-1]]["lrs_over_pb"] > rows[days[0]]["lrs_over_pb"]


def _check_pb_growth_slowest(result: ExperimentResult) -> bool:
    rows = _space_rows(result)
    days = sorted(rows)
    first, last = rows[days[0]], rows[days[-1]]
    pb_growth = last["pb"] / max(1, first["pb"])
    std_growth = last["standard"] / max(1, first["standard"])
    return pb_growth < std_growth


def _check_nasa_hit_ordering(result: ExperimentResult) -> bool:
    means = _mean_by_model(result, "hit_ratio", min_days=2)
    return (
        means["pb"] > means["lrs"]
        and means["pb"] > means["standard3"]
        and means["pb"] > means["standard"] - 0.015
    )


def _check_nasa_traffic_ordering(result: ExperimentResult) -> bool:
    means = _mean_by_model(result, "traffic_increment")
    return means["standard"] > 1.4 * means["pb"]


def _check_prefetch_beats_caching(result: ExperimentResult) -> bool:
    return all(
        row["hit_ratio"] >= row["shadow_hit_ratio"] for row in result.rows
    )


def _check_ucb_standard_leads_slightly(result: ExperimentResult) -> bool:
    means = _mean_by_model(result, "hit_ratio", min_days=2)
    gap = means["standard"] - means["pb"]
    return -0.01 <= gap < 0.06


def _check_popular_share_majority(result: ExperimentResult) -> bool:
    means = _mean_by_model(result, "popular_share")
    return all(share > 0.5 for share in means.values())


def _check_utilization_ordering(result: ExperimentResult) -> bool:
    means = _mean_by_model(result, "path_utilization")
    return means["pb"] > means["standard3"]


def _check_utilization_declines_for_baselines(result: ExperimentResult) -> bool:
    series: dict[str, list[tuple[int, float]]] = {}
    for row in result.rows:
        series.setdefault(row["model"], []).append(
            (row["train_days"], row["path_utilization"])
        )
    for model in ("standard3", "lrs"):
        points = sorted(series[model])
        if points[-1][1] > points[0][1]:
            return False
    return True


def _check_proxy_hits_grow_with_clients(result: ExperimentResult) -> bool:
    series: dict[str, list[tuple[int, float]]] = {}
    for row in result.rows:
        series.setdefault(row["model"], []).append(
            (row["clients"], row["hit_ratio"])
        )
    return all(
        sorted(points)[-1][1] > sorted(points)[0][1]
        for points in series.values()
    )


def _check_regularities_hold(result: ExperimentResult) -> bool:
    by_profile = {row["profile"]: row for row in result.rows}
    nasa = by_profile["nasa-like"]
    return bool(nasa["r1"]) and bool(nasa["r2"]) and bool(nasa["r3"])


#: Every claim, in reading order of EXPERIMENTS.md.
SHAPE_CHECKS: tuple[ShapeCheck, ...] = (
    ShapeCheck(
        "space-ordering-nasa",
        "table1-nasa-space",
        "standard >> lrs > pb at the full training window (Table 1)",
        _check_space_ordering,
    ),
    ShapeCheck(
        "space-ratio-widens-nasa",
        "table1-nasa-space",
        "the lrs/pb node ratio widens with training days (Table 1)",
        _check_space_ratio_widens,
    ),
    ShapeCheck(
        "pb-growth-slowest-nasa",
        "table1-nasa-space",
        "pb's node count grows more slowly than the standard model's",
        _check_pb_growth_slowest,
    ),
    ShapeCheck(
        "space-ordering-ucb",
        "table2-ucb-space",
        "standard >> lrs > pb at the full training window (Table 2)",
        _check_space_ordering,
    ),
    ShapeCheck(
        "hit-ordering-nasa",
        "fig3-nasa",
        "pb beats lrs and 3-ppm, ties unlimited standard (Figure 3, NASA)",
        _check_nasa_hit_ordering,
    ),
    ShapeCheck(
        "traffic-ordering-nasa",
        "fig3-nasa",
        "the standard model's traffic increment is far above pb's (Figure 4)",
        _check_nasa_traffic_ordering,
    ),
    ShapeCheck(
        "prefetch-beats-caching-nasa",
        "fig3-nasa",
        "every model's hit ratio exceeds the caching-only shadow",
        _check_prefetch_beats_caching,
    ),
    ShapeCheck(
        "ucb-standard-leads",
        "fig3-ucb",
        "on the irregular trace the standard model leads pb slightly",
        _check_ucb_standard_leads_slightly,
    ),
    ShapeCheck(
        "popular-share-majority",
        "fig2-popular-share",
        "most prefetch hits are popular documents, for every model (Fig. 2)",
        _check_popular_share_majority,
    ),
    ShapeCheck(
        "utilization-ordering",
        "fig2-utilization",
        "pb's path utilisation far exceeds 3-ppm's (Figure 2 right)",
        _check_utilization_ordering,
    ),
    ShapeCheck(
        "utilization-declines",
        "fig2-utilization",
        "baseline utilisation falls as training days grow (Figure 2 right)",
        _check_utilization_declines_for_baselines,
    ),
    ShapeCheck(
        "proxy-hits-grow",
        "fig5-proxy",
        "proxy hit ratios grow with the client group (Figure 5)",
        _check_proxy_hits_grow_with_clients,
    ),
    ShapeCheck(
        "regularities-nasa",
        "regularity-check",
        "Regularities 1-3 hold on the NASA-like workload (Section 1)",
        _check_regularities_hold,
    ),
)


def verify_shapes(
    checks: Sequence[ShapeCheck] = SHAPE_CHECKS,
    *,
    seed: int | None = None,
    scale: float | None = None,
) -> list[ShapeOutcome]:
    """Run every check, reusing experiment results across checks.

    A predicate that raises counts as a failure with the error recorded —
    a verification harness must never crash half-way.
    """
    overrides: dict = {}
    if seed is not None:
        overrides["seed"] = seed
    if scale is not None:
        overrides["scale"] = scale
    results: dict[str, ExperimentResult] = {}
    outcomes: list[ShapeOutcome] = []
    for check in checks:
        if check.experiment_id not in results:
            results[check.experiment_id] = run_experiment(
                check.experiment_id, **overrides
            )
        try:
            passed = bool(check.predicate(results[check.experiment_id]))
            outcomes.append(ShapeOutcome(check, passed))
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            outcomes.append(ShapeOutcome(check, False, error=repr(exc)))
    return outcomes


def format_outcomes(outcomes: Sequence[ShapeOutcome]) -> str:
    """Render verification outcomes as an aligned text report."""
    lines = []
    width = max(len(outcome.check.name) for outcome in outcomes)
    for outcome in outcomes:
        status = "PASS" if outcome.passed else "FAIL"
        line = f"{status}  {outcome.check.name:<{width}}  {outcome.check.description}"
        if outcome.error:
            line += f"  [{outcome.error}]"
        lines.append(line)
    passed = sum(1 for o in outcomes if o.passed)
    lines.append(f"\n{passed}/{len(outcomes)} shape checks passed")
    return "\n".join(lines)
