"""The result record every experiment returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """Rows of numbers for one table or figure, plus rendering helpers.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"fig3-nasa"``.
    title:
        Human-readable title including the paper artefact it reproduces.
    columns:
        Column order for table rendering.
    rows:
        One dict per row; keys are column names.
    notes:
        Free-form remarks (paper-vs-measured caveats and the like).
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        """Append a row (values keyed by column name)."""
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def series(
        self, x: str, y: str, label: str | None = None
    ) -> dict[str, list[tuple[Any, Any]]]:
        """Group rows into (x, y) series keyed by the ``label`` column.

        With ``label=None`` a single series named after ``y`` is returned.
        This is the figure-shaped view of the data: one series per curve.
        """
        series: dict[str, list[tuple[Any, Any]]] = {}
        for row in self.rows:
            key = str(row[label]) if label is not None else y
            series.setdefault(key, []).append((row.get(x), row.get(y)))
        return series

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    def format_table(self) -> str:
        """Render the rows as an aligned text table."""
        headers = list(self.columns)
        body = [
            [self._format_cell(row.get(column, "")) for column in headers]
            for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        if self.notes:
            lines.append("")
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render rows as CSV (simple values only, commas escaped)."""
        def esc(value: Any) -> str:
            text = self._format_cell(value)
            if "," in text or '"' in text:
                return '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(esc(row.get(c, "")) for c in self.columns))
        return "\n".join(lines)
