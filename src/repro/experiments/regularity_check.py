"""Regularity check: the generated workloads show the paper's Section-1 laws.

Not a paper artefact itself but the validity condition of the synthetic
substitution (DESIGN.md Section 5): both workload profiles must exhibit
Regularity 1 strongly; the UCB-like profile deliberately weakens
Regularity 2 (popular entries not leading long sessions), exactly the
deviation the paper blames for its UCB results.
"""

from __future__ import annotations

from repro.analysis.regularities import analyze_regularities
from repro.experiments.lab import DEFAULT_SEED, get_lab
from repro.experiments.result import ExperimentResult


def regularity_check(
    *,
    profiles: tuple[str, ...] = ("nasa-like", "ucb-like"),
    days: int = 6,
    train_days: int = 5,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Measure Regularities 1-3 on each generated workload profile."""
    result = ExperimentResult(
        experiment_id="regularity-check",
        title="Regularities 1-3 on the generated workloads (paper Section 1)",
        columns=[
            "profile",
            "popular_entry_frac",
            "popular_url_frac",
            "long_popular_head_frac",
            "len_popular_head",
            "len_unpopular_head",
            "grade_entry",
            "grade_middle",
            "grade_exit",
            "descending_frac",
            "r1",
            "r2",
            "r3",
        ],
        notes=(
            "r1: majority sessions enter popular URLs while the minority of "
            "URLs are popular; r2: majority long sessions headed by popular "
            "URLs (deliberately weaker on ucb-like); r3: grades descend "
            "along sessions."
        ),
    )
    for profile in profiles:
        lab = get_lab(profile, days, seed=seed, scale=scale)
        split = lab.split(train_days)
        report = analyze_regularities(
            split.train_sessions, lab.popularity(train_days)
        )
        result.add_row(
            profile=profile,
            popular_entry_frac=report.popular_entry_fraction,
            popular_url_frac=report.popular_url_fraction,
            long_popular_head_frac=report.long_session_popular_head_fraction,
            len_popular_head=report.mean_length_popular_head,
            len_unpopular_head=report.mean_length_unpopular_head,
            grade_entry=report.entry_grade_mean,
            grade_middle=report.middle_grade_mean,
            grade_exit=report.exit_grade_mean,
            descending_frac=report.descending_session_fraction,
            r1=report.regularity1_holds,
            r2=report.regularity2_holds,
            r3=report.regularity3_holds,
        )
    return result
