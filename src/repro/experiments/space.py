"""Tables 1-2 and Figure 4: model space and traffic overhead.

Tables 1 (NASA) and 2 (UCB-CS) list the number of URL nodes each model
stores as the training window grows.  Shapes to hold:

* the standard model's node count grows dramatically (it stores every
  suffix of every session);
* LRS-PPM is far smaller but grows quickly with days (new cross-day
  repeats keep qualifying);
* PB-PPM is the smallest and grows the slowest; the LRS/PB ratio widens
  with every added day (1.7x -> 6.9x over days 2-7 in the paper's Table 1,
  10x-dozens on UCB-CS).

Figure 4 adds the traffic increments: the standard model's is the highest
on both traces.
"""

from __future__ import annotations

from repro.experiments.lab import DEFAULT_SEED, get_lab
from repro.experiments.result import ExperimentResult

SPACE_MODELS = ("standard", "lrs", "pb")


def _space_table(
    experiment_id: str,
    table_name: str,
    profile: str,
    max_train_days: int,
    seed: int,
    scale: float | None,
) -> ExperimentResult:
    lab = get_lab(profile, max_train_days + 1, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"{table_name} — space (number of stored nodes) by training days, {profile}",
        columns=["train_days", "standard", "lrs", "pb", "lrs_over_pb"],
        notes=(
            "Paper shape: standard >> lrs >> pb; the lrs/pb ratio widens "
            "as training days accumulate."
        ),
    )
    for days in range(1, max_train_days + 1):
        nodes = {key: lab.model(key, days).node_count for key in SPACE_MODELS}
        result.add_row(
            train_days=days,
            standard=nodes["standard"],
            lrs=nodes["lrs"],
            pb=nodes["pb"],
            lrs_over_pb=(nodes["lrs"] / nodes["pb"]) if nodes["pb"] else 0.0,
        )
    return result


def table1_nasa_space(
    *,
    max_train_days: int = 7,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Table 1: node counts on the NASA-like trace, 1..7 training days."""
    return _space_table(
        "table1-nasa-space", "Table 1", "nasa-like", max_train_days, seed, scale
    )


def table2_ucb_space(
    *,
    max_train_days: int = 5,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Table 2: node counts on the UCB-like trace, 1..5 training days."""
    return _space_table(
        "table2-ucb-space", "Table 2", "ucb-like", max_train_days, seed, scale
    )


def _fig4(
    profile: str,
    max_train_days: int,
    seed: int,
    scale: float | None,
) -> ExperimentResult:
    lab = get_lab(profile, max_train_days + 1, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id=f"fig4-{profile.split('-')[0]}",
        title=(
            f"Figure 4 — node growth (lrs vs pb) and traffic increase, {profile}"
        ),
        columns=[
            "train_days",
            "model",
            "node_count",
            "traffic_increment",
            "prefetch_bytes",
            "demand_miss_bytes",
        ],
        notes=(
            "Paper shape: lrs node count grows roughly linearly with days "
            "while pb grows slowly; the standard model has the highest "
            "traffic increase on both traces."
        ),
    )
    for days in range(1, max_train_days + 1):
        for model_key in SPACE_MODELS:
            run = lab.run(model_key, days)
            result.add_row(
                train_days=days,
                model=model_key,
                node_count=run.node_count,
                traffic_increment=run.traffic_increment,
                prefetch_bytes=run.prefetch_bytes,
                demand_miss_bytes=run.demand_miss_bytes,
            )
    return result


def fig4_nasa(
    *,
    max_train_days: int = 7,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Figure 4 panels 1-2: space growth and traffic, NASA-like."""
    return _fig4("nasa-like", max_train_days, seed, scale)


def fig4_ucb(
    *,
    max_train_days: int = 5,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Figure 4 panels 3-4: space growth and traffic, UCB-like."""
    return _fig4("ucb-like", max_train_days, seed, scale)
