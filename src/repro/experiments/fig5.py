"""Figure 5: prefetching between Web servers and proxies (Section 5).

1 to 32 randomly selected clients connect through one shared proxy; the
server prefetches into the proxy's cache.  Hits come from three sources:
browser caches, proxy-cached documents, and proxy-prefetched documents.

Shapes to hold (paper, NASA trace):

* the LRS model's total hit-ratio curve is the lowest; PB-PPM with the
  10 KB prefetch-size threshold is the highest; the standard model and
  PB-PPM-4KB sit in the middle and converge as clients grow;
* traffic increments fall as the client count grows for every model; the
  standard model's is the highest, PB-PPM-4KB's the lowest.
"""

from __future__ import annotations

import numpy as np

from repro import params
from repro.experiments.lab import DEFAULT_SEED, get_lab
from repro.experiments.result import ExperimentResult

#: Client-group sizes the paper sweeps.
DEFAULT_CLIENT_COUNTS = (1, 2, 4, 8, 16, 24, 32)

#: (model key, prefetch-size limit override) per Figure-5 curve.
FIG5_CURVES = (
    ("standard", None),
    ("lrs", None),
    ("pb", params.PROXY_STUDY_THRESHOLDS[0]),  # PB-PPM-4KB
    ("pb", params.PROXY_STUDY_THRESHOLDS[1]),  # PB-PPM-10KB
)


def _curve_label(model_key: str, limit: int | None) -> str:
    if limit is None:
        return model_key
    return f"{model_key}-{limit // 1024}KB"


def fig5_proxy(
    *,
    profile: str = "nasa-like",
    train_days: int = 5,
    client_counts: tuple[int, ...] = DEFAULT_CLIENT_COUNTS,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Reproduce Figure 5: proxy hit ratio and traffic vs clients/proxy."""
    lab = get_lab(profile, train_days + 1, seed=seed, scale=scale)
    rng = np.random.default_rng(seed)
    browsers = set(lab.browser_clients())
    # Build the selection pool from browsers active on the test day,
    # favouring the busier ones so even small client groups contribute a
    # statistically meaningful request stream (the paper's groups are
    # drawn from a trace with vastly more requests per client).
    activity: dict[str, int] = {}
    for request in lab.split(train_days).test_requests:
        if request.client in browsers:
            activity[request.client] = activity.get(request.client, 0) + 1
    ranked = sorted(activity, key=lambda c: (-activity[c], c))
    if not ranked:
        ranked = sorted(browsers)
    # Shuffle within the busy half to keep the "randomly selected" spirit.
    busy = ranked[: max(max(client_counts), len(ranked) // 2)]
    pool = list(rng.permutation(busy))
    result = ExperimentResult(
        experiment_id="fig5-proxy",
        title=(
            f"Figure 5 — server-to-proxy prefetching: hit ratio and traffic "
            f"vs clients per proxy, {profile}"
        ),
        columns=[
            "clients",
            "model",
            "hit_ratio",
            "browser_hits",
            "proxy_hits",
            "traffic_increment",
            "requests",
        ],
        notes=(
            "Paper shape: lrs lowest hit-ratio curve, pb-10KB highest, "
            "standard and pb-4KB converging in the middle; traffic "
            "increments fall with client count, standard's the highest."
        ),
    )
    for count in client_counts:
        group = tuple(pool[: min(count, len(pool))])
        for model_key, limit in FIG5_CURVES:
            run = lab.run(
                model_key,
                train_days,
                topology="proxy",
                clients=group,
                prefetch_limit=limit,
            )
            result.add_row(
                clients=count,
                model=_curve_label(model_key, limit),
                hit_ratio=run.hit_ratio,
                browser_hits=run.browser_hits,
                proxy_hits=run.proxy_hits,
                traffic_increment=run.traffic_increment,
                requests=run.requests,
            )
    return result
