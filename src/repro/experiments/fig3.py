"""Figure 3: hit ratios and latency reductions versus training days.

Four panels in the paper: hit ratio and latency reduction for the NASA
trace (up to 7 training days) and for the UCB-CS trace (up to 5).  Shapes
to hold:

* NASA — PB-PPM's hit ratio and latency reduction are the highest of the
  three models;
* UCB-CS — PB-PPM trails the standard model slightly (~2-3 points) and
  beats LRS-PPM, remaining the most cost-effective given its space.

Both the unlimited-height standard model (the paper's accuracy upper
bound) and the practical fixed-height 3-PPM are reported.
"""

from __future__ import annotations

from repro.experiments.lab import DEFAULT_SEED, get_lab
from repro.experiments.result import ExperimentResult

FIG3_MODELS = ("pb", "standard", "standard3", "lrs")


def _fig3(
    profile: str,
    max_train_days: int,
    seed: int,
    scale: float | None,
) -> ExperimentResult:
    lab = get_lab(profile, max_train_days + 1, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id=f"fig3-{profile.split('-')[0]}",
        title=(
            f"Figure 3 — hit ratio and latency reduction vs training days, "
            f"{profile}"
        ),
        columns=[
            "train_days",
            "model",
            "hit_ratio",
            "latency_reduction",
            "shadow_hit_ratio",
            "traffic_increment",
        ],
        notes=(
            "NASA shape: PB-PPM highest hit ratio and latency reduction. "
            "UCB shape: standard slightly above PB-PPM, LRS lowest. "
            "shadow_hit_ratio is the caching-only baseline (no prefetch)."
        ),
    )
    cells = [
        {"model_key": model_key, "train_days": days}
        for days in range(1, max_train_days + 1)
        for model_key in FIG3_MODELS
    ]
    for cell, run in zip(cells, lab.run_grid(cells)):
        result.add_row(
            train_days=cell["train_days"],
            model=cell["model_key"],
            hit_ratio=run.hit_ratio,
            latency_reduction=run.latency_reduction,
            shadow_hit_ratio=run.shadow_hit_ratio,
            traffic_increment=run.traffic_increment,
        )
    return result


def fig3_nasa(
    *,
    max_train_days: int = 7,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Figure 3 panels 1-2: the NASA-like trace, 1..7 training days."""
    return _fig3("nasa-like", max_train_days, seed, scale)


def fig3_ucb(
    *,
    max_train_days: int = 5,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Figure 3 panels 3-4: the UCB-like trace, 1..5 training days."""
    return _fig3("ucb-like", max_train_days, seed, scale)
