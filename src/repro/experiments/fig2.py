"""Figure 2: popular-document share of prefetch hits and path utilisation.

Left panel: the percentage of popular documents among the files hit from
prefetched data, versus training days — for the fixed-height 3-PPM, the
LRS-PPM and the popularity-based model.  Paper shape: at least 60 %
everywhere, the standard model lowest, PB-PPM at 70-75 %.

Right panel: the utilisation rate of root-to-leaf paths for predictions.
Paper shape: 3-PPM and LRS-PPM decrease rapidly with training days (3-PPM
below 20 %, LRS about 40 % at 7 days); PB-PPM stays far higher.
"""

from __future__ import annotations

from repro.experiments.lab import DEFAULT_SEED, get_lab
from repro.experiments.result import ExperimentResult

#: The three models of the Section 3.3 observation study.
FIG2_MODELS = ("standard3", "lrs", "pb")


def fig2_popular_share(
    *,
    profile: str = "nasa-like",
    max_train_days: int = 7,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Reproduce Figure 2 (left): popular share of prefetch hits vs days."""
    lab = get_lab(profile, max_train_days + 1, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="fig2-popular-share",
        title=(
            f"Figure 2 (left) — share of popular documents among prefetch "
            f"hits, {profile}"
        ),
        columns=["train_days", "model", "popular_share", "prefetch_hits"],
        notes=(
            "Paper shape: >= 60% for all models, standard lowest, PB-PPM "
            "70-75%."
        ),
    )
    for days in range(1, max_train_days + 1):
        for model_key in FIG2_MODELS:
            run = lab.run(model_key, days)
            result.add_row(
                train_days=days,
                model=model_key,
                popular_share=run.popular_share_of_prefetch_hits,
                prefetch_hits=run.prefetch_hits,
            )
    return result


def fig2_utilization(
    *,
    profile: str = "nasa-like",
    max_train_days: int = 7,
    seed: int = DEFAULT_SEED,
    scale: float | None = None,
) -> ExperimentResult:
    """Reproduce Figure 2 (right): path-utilisation rate vs days."""
    lab = get_lab(profile, max_train_days + 1, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="fig2-utilization",
        title=f"Figure 2 (right) — path utilisation for predictions, {profile}",
        columns=["train_days", "model", "path_utilization", "node_count"],
        notes=(
            "Paper shape: 3-PPM and LRS utilisation fall rapidly with days; "
            "PB-PPM stays the highest by a wide margin."
        ),
    )
    for days in range(1, max_train_days + 1):
        for model_key in FIG2_MODELS:
            run = lab.run(model_key, days)
            result.add_row(
                train_days=days,
                model=model_key,
                path_utilization=run.path_utilization,
                node_count=run.node_count,
            )
    return result
